//! The database layer: many FASTA records in one arena, sorted by length.
//!
//! A database search touches every record once per lane group, so the
//! store is optimized for streaming: all sequence bytes live in a single
//! contiguous arena (one allocation, no per-record pointer chasing) and
//! records are ordered by ascending length. Length ordering does two
//! things for the scheduler above: a contiguous *slab* of records has
//! near-uniform per-record cost (so work-stealing granules stay balanced
//! without size-aware splitting), and the per-query result tie-break
//! "lowest target index wins" becomes a fixed, documented order.
//!
//! Per-record metadata ([`RecordMeta`]) keeps the FASTA id and the
//! record's position in the *source file*, so results can always be
//! reported in the user's own terms.

use crate::BatchError;
use genomedsm_seq::fasta::{read_fasta_file, read_protein_fasta_file, FastaRecord, ProteinRecord};
use std::ops::Range;
use std::path::Path;

/// Metadata of one database record (the bytes live in the arena).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordMeta {
    /// FASTA header text (without `>`).
    pub id: String,
    /// 0-based position of the record in the source FASTA file, before
    /// length sorting.
    pub source_index: usize,
    offset: usize,
    len: usize,
}

impl RecordMeta {
    /// Sequence length in bases.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the record is empty (cannot happen for FASTA-loaded
    /// databases; the parser rejects empty records).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// An arena-packed, length-sorted store of target sequences.
#[derive(Debug, Clone, Default)]
pub struct SeqDatabase {
    arena: Vec<u8>,
    meta: Vec<RecordMeta>,
}

impl SeqDatabase {
    /// Builds a database from parsed records, sorting by ascending length
    /// (ties broken by source order, keeping the layout deterministic).
    pub fn from_records(records: Vec<FastaRecord>) -> Self {
        Self::from_named_seqs(
            records
                .into_iter()
                .map(|r| (r.id, r.seq.into_bytes()))
                .collect(),
        )
    }

    /// Builds a database from parsed protein records; same ordering rules
    /// as [`from_records`](Self::from_records). The store is
    /// alphabet-agnostic — only the scoring mode decides how the bytes are
    /// interpreted downstream.
    pub fn from_protein_records(records: Vec<ProteinRecord>) -> Self {
        Self::from_named_seqs(
            records
                .into_iter()
                .map(|r| (r.id, r.seq.into_bytes()))
                .collect(),
        )
    }

    /// The shared constructor: `(id, sequence bytes)` pairs into the
    /// length-sorted arena.
    fn from_named_seqs(records: Vec<(String, Vec<u8>)>) -> Self {
        let mut order: Vec<usize> = (0..records.len()).collect();
        order.sort_by_key(|&i| (records[i].1.len(), i));
        let total: usize = records.iter().map(|r| r.1.len()).sum();
        let mut arena = Vec::with_capacity(total);
        let mut meta = Vec::with_capacity(records.len());
        for &i in &order {
            let (id, seq) = &records[i];
            let offset = arena.len();
            arena.extend_from_slice(seq);
            meta.push(RecordMeta {
                id: id.clone(),
                source_index: i,
                offset,
                len: seq.len(),
            });
        }
        Self { arena, meta }
    }

    /// Loads a multi-record FASTA file into a database.
    ///
    /// # Errors
    /// Fails on unreadable or malformed FASTA ([`BatchError::Fasta`]) and
    /// on a file with zero records ([`BatchError::EmptyDatabase`]) — a
    /// search over nothing is always a caller mistake.
    pub fn load_fasta_file(path: impl AsRef<Path>) -> Result<Self, BatchError> {
        let path = path.as_ref();
        let records = read_fasta_file(path).map_err(|source| BatchError::Fasta {
            path: path.to_path_buf(),
            source,
        })?;
        if records.is_empty() {
            return Err(BatchError::EmptyDatabase {
                path: path.to_path_buf(),
            });
        }
        Ok(Self::from_records(records))
    }

    /// Loads a multi-record protein FASTA file into a database, with the
    /// same emptiness/parse error contract as
    /// [`load_fasta_file`](Self::load_fasta_file).
    pub fn load_protein_fasta_file(path: impl AsRef<Path>) -> Result<Self, BatchError> {
        let path = path.as_ref();
        let records = read_protein_fasta_file(path).map_err(|source| BatchError::Fasta {
            path: path.to_path_buf(),
            source,
        })?;
        if records.is_empty() {
            return Err(BatchError::EmptyDatabase {
                path: path.to_path_buf(),
            });
        }
        Ok(Self::from_protein_records(records))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Total bases across all records.
    pub fn total_bases(&self) -> usize {
        self.arena.len()
    }

    /// The bytes of record `i` (in length-sorted database order).
    pub fn seq(&self, i: usize) -> &[u8] {
        let m = &self.meta[i];
        &self.arena[m.offset..m.offset + m.len]
    }

    /// Metadata of record `i` (in length-sorted database order).
    pub fn meta(&self, i: usize) -> &RecordMeta {
        &self.meta[i]
    }

    /// Iterates `(database index, sequence)` over a slab of records.
    pub fn slab(&self, range: Range<usize>) -> impl Iterator<Item = (usize, &[u8])> {
        range.map(move |i| (i, self.seq(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_seq::DnaSeq;

    fn rec(id: &str, seq: &str) -> FastaRecord {
        FastaRecord {
            id: id.into(),
            seq: DnaSeq::new(seq).unwrap(),
        }
    }

    #[test]
    fn records_are_length_sorted_with_stable_ties() {
        let db = SeqDatabase::from_records(vec![
            rec("long", "ACGTACGTACGT"),
            rec("tie-b", "ACGT"),
            rec("tie-a", "TTTT"),
            rec("short", "AC"),
        ]);
        let ids: Vec<&str> = (0..db.len()).map(|i| db.meta(i).id.as_str()).collect();
        // Ascending length; the two 4-mers keep their file order.
        assert_eq!(ids, ["short", "tie-b", "tie-a", "long"]);
        assert_eq!(db.seq(0), b"AC");
        assert_eq!(db.seq(3), b"ACGTACGTACGT");
        assert_eq!(db.meta(1).source_index, 1);
        assert_eq!(db.meta(2).source_index, 2);
        assert_eq!(db.total_bases(), 22);
    }

    #[test]
    fn arena_is_contiguous_in_sorted_order() {
        let db = SeqDatabase::from_records(vec![rec("b", "GGG"), rec("a", "AA")]);
        assert_eq!(db.arena, b"AAGGG");
        let collected: Vec<(usize, &[u8])> = db.slab(0..db.len()).collect();
        assert_eq!(collected, vec![(0, &b"AA"[..]), (1, &b"GGG"[..])]);
    }

    #[test]
    fn empty_database_is_fine_in_memory() {
        let db = SeqDatabase::from_records(vec![]);
        assert!(db.is_empty());
        assert_eq!(db.total_bases(), 0);
    }

    #[test]
    fn protein_records_load_with_the_same_ordering_rules() {
        use genomedsm_seq::ProteinSeq;
        let db = SeqDatabase::from_protein_records(vec![
            ProteinRecord {
                id: "long".into(),
                seq: ProteinSeq::new("WQHKRWCEW").unwrap(),
            },
            ProteinRecord {
                id: "short".into(),
                seq: ProteinSeq::new("MK").unwrap(),
            },
        ]);
        assert_eq!(db.meta(0).id, "short");
        assert_eq!(db.seq(1), b"WQHKRWCEW");

        let dir = std::env::temp_dir().join("genomedsm_batch_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("prot.fa");
        std::fs::write(&path, ">a\nMKWQ\n>b\nWC\n").unwrap();
        let loaded = SeqDatabase::load_protein_fasta_file(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.seq(0), b"WC");
        // A protein-only residue fails through the DNA loader but loads
        // here; a gap character is a typed error in both.
        assert!(SeqDatabase::load_fasta_file(&path).is_err());
        std::fs::write(&path, ">a\nMK-WQ\n").unwrap();
        assert!(matches!(
            SeqDatabase::load_protein_fasta_file(&path),
            Err(BatchError::Fasta { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_fasta_file_round_trips_and_rejects_empty() {
        let dir = std::env::temp_dir().join("genomedsm_batch_db_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.fa");
        std::fs::write(&path, ">x\nACGTACGT\n>y\nTT\n").unwrap();
        let db = SeqDatabase::load_fasta_file(&path).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.meta(0).id, "y");
        let empty = dir.join("empty.fa");
        std::fs::write(&empty, "").unwrap();
        assert!(matches!(
            SeqDatabase::load_fasta_file(&empty),
            Err(BatchError::EmptyDatabase { .. })
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&empty).ok();
    }
}
