//! The batch engine: database search and pair-list scoring.
//!
//! [`BatchEngine::search`] is the serving entry point: every query against
//! every database record, top-k hits per query. The work unit is a
//! *(lane group × target slab)* job: one [`PackedProfile`] is built per
//! job and re-scored against a contiguous slab of records, so the profile
//! build (the launch overhead the per-pair path pays per record) amortizes
//! over the whole slab. Jobs flow through the work-stealing scheduler;
//! per-job partial top-ks merge in fixed job order, and the strict total
//! order on [`Hit`]s makes the final top-k independent of worker count
//! and interleaving.
//!
//! [`score_pairs`] is the drop-in for loops of single-pair kernel calls
//! (BlastN refinement windows, phase-2 style pair lists): pairs sharing an
//! identical target byte-string are lane-packed together; the rest run as
//! singles. Results come back in input order, bit-exact per pair.

use crate::db::SeqDatabase;
use crate::planner::{plan_lane_groups_fitting, LanePlan};
use crate::scheduler::{run_jobs, SchedulerConfig};
use crate::topk::{Hit, TopK};
use genomedsm_core::linear::{sw_score_linear, LinearSwResult};
use genomedsm_core::scoring::Scoring;
use genomedsm_core::submat::MatrixScoring;
use genomedsm_core::sw_score_profile;
use genomedsm_kernels::{
    effective_lanes, fits_i16_affine_query, fits_i16_query, score_batch, score_batch_packed,
    score_batch_packed_affine, Isa, KernelChoice, PackedAffineProfile, PackedProfile,
};
use std::collections::HashMap;
use std::ops::Range;

/// Which alignment arithmetic a search runs.
///
/// `Dna` is the original linear-gap path over [`Scoring`] (the config's
/// `scoring` field); `Protein` switches every layer — planner admission,
/// packed kernels, scalar spill, and the `--check` oracle — to the
/// affine-gap (Gotoh) recurrence over a substitution matrix. The variant
/// carries the full scoring scheme so a [`BatchConfig`] remains one plain
/// `Copy` value that completely determines the search arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
// The 1.2 kB matrix lives inline by design: boxing it would cost `Copy`,
// and configs are copied, not stored in bulk.
#[allow(clippy::large_enum_variant)]
pub enum ScoreMode {
    /// Linear-gap DNA scoring via the config's [`Scoring`].
    #[default]
    Dna,
    /// Affine-gap protein scoring via a substitution matrix.
    Protein(MatrixScoring),
}

/// Tuning knobs of a batch search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Kernel selection, as everywhere else in the workspace.
    pub kernel: KernelChoice,
    /// Column scoring scheme (the DNA path; ignored in protein mode).
    pub scoring: Scoring,
    /// Alignment arithmetic: linear-gap DNA or affine-gap protein.
    pub mode: ScoreMode,
    /// Hits to keep per query.
    pub top_k: usize,
    /// Scheduler shape (workers + in-flight window).
    pub scheduler: SchedulerConfig,
    /// Database records per job. `0` picks a slab that yields a few jobs
    /// per worker per lane group.
    pub slab: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            kernel: KernelChoice::Auto,
            scoring: Scoring::paper(),
            mode: ScoreMode::Dna,
            top_k: 10,
            scheduler: SchedulerConfig::default(),
            slab: 0,
        }
    }
}

/// Work- and shape-counters of one search, for benches and logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// DP cells computed if every (query, target) pair ran exactly:
    /// `Σ |q| × |t|`. GCUPS = `cells / seconds / 1e9`.
    pub cells: u64,
    /// Lane groups the planner formed.
    pub lane_groups: usize,
    /// Queries that ran on the scalar oracle instead of a packed lane.
    pub scalar_queries: usize,
    /// Scheduler jobs executed.
    pub jobs: usize,
    /// Padding rows accepted by the lane plan (see
    /// [`crate::planner::LanePlan::padding_rows`]).
    pub padding_rows: usize,
}

/// Everything a search returns.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per query (input order): up to `top_k` hits, best first.
    pub hits: Vec<Vec<Hit>>,
    /// Work counters.
    pub stats: BatchStats,
}

/// One scheduler job: a set of queries against a slab of records.
struct Job {
    /// Caller query indices; packed into lanes iff `packed`.
    queries: Vec<usize>,
    targets: Range<usize>,
    packed: bool,
}

/// The multi-query database search engine.
#[derive(Debug, Clone, Default)]
pub struct BatchEngine {
    /// The engine's configuration (public: it is plain data).
    pub config: BatchConfig,
}

impl BatchEngine {
    /// An engine with the given configuration.
    pub fn new(config: BatchConfig) -> Self {
        Self { config }
    }

    /// Scores every query against every database record, returning the
    /// top-k hits per query (only strictly positive scores are hits).
    ///
    /// Output is deterministic: the same inputs yield the same hits for
    /// every worker count and for both lane-packed and scalar execution
    /// (the kernels are bit-exact against each other).
    pub fn search(&self, db: &SeqDatabase, queries: &[&[u8]]) -> BatchOutcome {
        let mut hits: Vec<Vec<Hit>> = Vec::with_capacity(queries.len());
        let stats = self.search_streaming(db, queries, |q, h| {
            debug_assert_eq!(q, hits.len(), "streaming emission out of order");
            hits.push(h);
        });
        BatchOutcome { hits, stats }
    }

    /// [`search`](Self::search) with incremental delivery: `on_query(q,
    /// hits)` fires once per query, **in ascending query index order**,
    /// as soon as that query's top-k can no longer change.
    ///
    /// A query's hits are final once every job touching its lane group
    /// (or its scalar spill) has passed the scheduler's strictly in-order
    /// merge, so each emitted list is already the exact final answer —
    /// the stream of emissions is a growing prefix of the full result,
    /// which is what lets a server forward partial responses that never
    /// need correction. Emission order and content are deterministic for
    /// every worker count (the merge is in fixed job order and the hit
    /// order is a strict total order).
    pub fn search_streaming(
        &self,
        db: &SeqDatabase,
        queries: &[&[u8]],
        mut on_query: impl FnMut(usize, Vec<Hit>),
    ) -> BatchStats {
        let cfg = &self.config;
        let mut stats = BatchStats {
            cells: cell_count(db, queries),
            ..BatchStats::default()
        };
        if queries.is_empty() {
            return stats;
        }
        if db.is_empty() {
            for q in 0..queries.len() {
                on_query(q, Vec::new());
            }
            return stats;
        }
        let lanes = effective_lanes(cfg.kernel);
        let plan = match &cfg.mode {
            ScoreMode::Dna => {
                plan_lane_groups_fitting(queries, lanes, |len| fits_i16_query(len, &cfg.scoring))
            }
            ScoreMode::Protein(ms) => {
                plan_lane_groups_fitting(queries, lanes, |len| fits_i16_affine_query(len, ms))
            }
        };
        stats.lane_groups = plan.groups.len();
        stats.scalar_queries = plan.scalar.len();
        stats.padding_rows = plan.padding_rows;
        let (workers, _) = cfg.scheduler.resolved(usize::MAX);
        let slab = self.slab_size(db.len(), &plan, workers);
        let slabs = db.len().div_ceil(slab);
        // Work units in job-layout order: packed groups, then scalar
        // spill singletons. Jobs are unit-major × slab (build_jobs), so
        // job j belongs to unit j / slabs and a unit is complete exactly
        // when its last job, (unit + 1) * slabs - 1, merges.
        let units: Vec<Vec<usize>> = plan
            .groups
            .iter()
            .cloned()
            .chain(plan.scalar.iter().map(|&q| vec![q]))
            .collect();
        let jobs = build_jobs(&plan, db.len(), slab);
        stats.jobs = jobs.len();

        let isa = Isa::best_available();
        let mut best: Vec<TopK> = (0..queries.len()).map(|_| TopK::new(cfg.top_k)).collect();
        // Reorder buffer: units finalize in unit order, but the contract
        // is ascending query order — the same cursor-and-buffer scheme as
        // the scheduler's merge, one level up.
        let mut finalized: Vec<Option<Vec<Hit>>> = (0..queries.len()).map(|_| None).collect();
        let mut cursor = 0usize;
        run_jobs(
            jobs,
            &cfg.scheduler,
            |_, job| exec_job(&job, db, queries, cfg, isa),
            |j, partials: Vec<(usize, TopK)>| {
                for (q, tk) in partials {
                    best[q].merge(tk);
                }
                if (j + 1) % slabs == 0 {
                    for &q in &units[j / slabs] {
                        let done = std::mem::replace(&mut best[q], TopK::new(0));
                        finalized[q] = Some(done.into_sorted());
                    }
                    while cursor < finalized.len() {
                        match finalized[cursor].take() {
                            Some(hits) => {
                                on_query(cursor, hits);
                                cursor += 1;
                            }
                            None => break,
                        }
                    }
                }
            },
        );
        debug_assert_eq!(cursor, queries.len(), "a query never finalized");
        stats
    }

    /// Records per job: aim for several jobs per worker within each lane
    /// group so stealing has granules to balance, without collapsing to
    /// per-record jobs (which would re-pay the profile build everywhere).
    fn slab_size(&self, records: usize, plan: &LanePlan, workers: usize) -> usize {
        if self.config.slab > 0 {
            return self.config.slab;
        }
        let groups = (plan.groups.len() + plan.scalar.len()).max(1);
        let target_jobs = (workers * 4).div_ceil(groups).max(2);
        records.div_ceil(target_jobs).max(1)
    }
}

/// Total exact-DP cells of the full cross product.
fn cell_count(db: &SeqDatabase, queries: &[&[u8]]) -> u64 {
    let qsum: u64 = queries.iter().map(|q| q.len() as u64).sum();
    qsum * db.total_bases() as u64
}

/// Jobs in a fixed, deterministic order: packed groups first (each ×
/// every slab), then scalar spill queries (each × every slab).
fn build_jobs(plan: &LanePlan, records: usize, slab: usize) -> Vec<Job> {
    let slabs: Vec<Range<usize>> = (0..records.div_ceil(slab))
        .map(|s| s * slab..((s + 1) * slab).min(records))
        .collect();
    let mut jobs = Vec::with_capacity((plan.groups.len() + plan.scalar.len()) * slabs.len());
    for group in &plan.groups {
        for slab in &slabs {
            jobs.push(Job {
                queries: group.clone(),
                targets: slab.clone(),
                packed: true,
            });
        }
    }
    for &q in &plan.scalar {
        for slab in &slabs {
            jobs.push(Job {
                queries: vec![q],
                targets: slab.clone(),
                packed: false,
            });
        }
    }
    jobs
}

/// Runs one job: profile built once, scored against every slab record.
fn exec_job(
    job: &Job,
    db: &SeqDatabase,
    queries: &[&[u8]],
    cfg: &BatchConfig,
    isa: Isa,
) -> Vec<(usize, TopK)> {
    let mut collectors: Vec<(usize, TopK)> = job
        .queries
        .iter()
        .map(|&q| (q, TopK::new(cfg.top_k)))
        .collect();
    match &cfg.mode {
        ScoreMode::Dna => exec_job_dna(job, db, queries, &cfg.scoring, isa, &mut collectors),
        ScoreMode::Protein(ms) => exec_job_protein(job, db, queries, ms, isa, &mut collectors),
    }
    collectors
}

/// The linear-gap DNA execution path of one job.
fn exec_job_dna(
    job: &Job,
    db: &SeqDatabase,
    queries: &[&[u8]],
    scoring: &Scoring,
    isa: Isa,
    collectors: &mut [(usize, TopK)],
) {
    let packed_prof = if job.packed {
        let qs: Vec<&[u8]> = job.queries.iter().map(|&q| queries[q]).collect();
        PackedProfile::new(&qs, scoring, isa)
    } else {
        None
    };
    match packed_prof {
        Some(mut prof) => {
            for (t, target) in db.slab(job.targets.clone()) {
                for (lane, r) in score_batch_packed(&mut prof, target, 0)
                    .into_iter()
                    .enumerate()
                {
                    offer(&mut collectors[lane].1, t, &r);
                }
            }
        }
        None => {
            // Scalar spill — or a pack the kernel rejected (cannot happen
            // for planner-admitted groups, but fall back rather than trust).
            for (t, target) in db.slab(job.targets.clone()) {
                for (lane, &q) in job.queries.iter().enumerate() {
                    let r = sw_score_linear(queries[q], target, scoring, 0);
                    offer(&mut collectors[lane].1, t, &r);
                }
            }
        }
    }
}

/// The affine-gap protein execution path of one job: same shape as the
/// DNA path with the Gotoh packed kernel and the scalar Gotoh oracle.
fn exec_job_protein(
    job: &Job,
    db: &SeqDatabase,
    queries: &[&[u8]],
    ms: &MatrixScoring,
    isa: Isa,
    collectors: &mut [(usize, TopK)],
) {
    let packed_prof = if job.packed {
        let qs: Vec<&[u8]> = job.queries.iter().map(|&q| queries[q]).collect();
        PackedAffineProfile::new(&qs, ms, isa)
    } else {
        None
    };
    match packed_prof {
        Some(mut prof) => {
            for (t, target) in db.slab(job.targets.clone()) {
                for (lane, r) in score_batch_packed_affine(&mut prof, target, 0)
                    .into_iter()
                    .enumerate()
                {
                    offer(&mut collectors[lane].1, t, &r);
                }
            }
        }
        None => {
            for (t, target) in db.slab(job.targets.clone()) {
                for (lane, &q) in job.queries.iter().enumerate() {
                    let r = sw_score_profile(queries[q], target, ms, 0);
                    offer(&mut collectors[lane].1, t, &r);
                }
            }
        }
    }
}

/// Offers one pair result to a collector (shared with the prefiltered
/// driver so "what counts as a hit" has a single definition).
pub(crate) fn offer(tk: &mut TopK, target: usize, r: &LinearSwResult) {
    if r.best_score > 0 {
        tk.push(Hit {
            score: r.best_score,
            target,
            end: r.best_end,
        });
    }
}

/// Scores a list of (query, target) pairs, returning one exact
/// [`LinearSwResult`] per pair in input order — the batch drop-in for a
/// loop of single-pair kernel calls.
///
/// Pairs sharing a byte-identical target are grouped and lane-packed (a
/// BlastN run refining many windows of the same subject, phase-2 regions
/// against a common reference); remaining pairs run one query per
/// invocation through [`score_batch`], which still lane-packs nothing but
/// keeps the exact single-pair semantics. Each target group is one
/// scheduler job.
pub fn score_pairs(
    kernel: KernelChoice,
    pairs: &[(&[u8], &[u8])],
    scoring: &Scoring,
    threshold: i32,
    scheduler: &SchedulerConfig,
) -> Vec<LinearSwResult> {
    // Group pair indices by identical target bytes, first-seen order.
    let mut group_of: HashMap<&[u8], usize> = HashMap::new();
    let mut groups: Vec<(&[u8], Vec<usize>)> = Vec::new();
    for (i, &(_, t)) in pairs.iter().enumerate() {
        match group_of.get(t) {
            Some(&g) => groups[g].1.push(i),
            None => {
                group_of.insert(t, groups.len());
                groups.push((t, vec![i]));
            }
        }
    }
    let zero = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: 0,
    };
    let mut out = vec![zero; pairs.len()];
    run_jobs(
        groups,
        scheduler,
        |_, (target, members): (&[u8], Vec<usize>)| {
            let qs: Vec<&[u8]> = members.iter().map(|&i| pairs[i].0).collect();
            let results = score_batch(kernel, &qs, target, scoring, threshold);
            members.into_iter().zip(results).collect::<Vec<_>>()
        },
        |_, scored| {
            for (i, r) in scored {
                out[i] = r;
            }
        },
    );
    out
}

/// The sequential per-pair reference answer: every query scored against
/// every record with the scalar oracle [`sw_score_linear`], identical
/// top-k bookkeeping to the engine.
///
/// This is the `--check` oracle of `genomedsm batch` and the reference
/// the engine's own tests compare against: [`BatchEngine::search`] must
/// equal it byte for byte on every kernel choice and worker count. It is
/// deliberately the dumbest possible implementation — no lane packing,
/// no slabs, no scheduler — so a disagreement always indicts the engine.
pub fn oracle_search(
    db: &SeqDatabase,
    queries: &[&[u8]],
    scoring: &Scoring,
    top_k: usize,
) -> Vec<Vec<Hit>> {
    oracle_search_mode(db, queries, &ScoreMode::Dna, scoring, top_k)
}

/// [`oracle_search`] generalized over the scoring mode: the scalar
/// per-pair reference for whichever arithmetic the engine ran — linear
/// [`sw_score_linear`] for DNA, the scalar Gotoh [`sw_score_profile`] for
/// protein. Still deliberately the dumbest possible implementation.
pub fn oracle_search_mode(
    db: &SeqDatabase,
    queries: &[&[u8]],
    mode: &ScoreMode,
    scoring: &Scoring,
    top_k: usize,
) -> Vec<Vec<Hit>> {
    queries
        .iter()
        .map(|q| {
            let mut tk = TopK::new(top_k);
            for t in 0..db.len() {
                let r = match mode {
                    ScoreMode::Dna => sw_score_linear(q, db.seq(t), scoring, 0),
                    ScoreMode::Protein(ms) => sw_score_profile(q, db.seq(t), ms, 0),
                };
                offer(&mut tk, t, &r);
            }
            tk.into_sorted()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_kernels::kernel_for;
    use genomedsm_seq::fasta::FastaRecord;
    use genomedsm_seq::{random_dna, DnaSeq};

    const SC: Scoring = Scoring::paper();

    fn test_db(n: usize, len: usize, seed: u64) -> SeqDatabase {
        let records = (0..n)
            .map(|i| FastaRecord {
                id: format!("rec{i}"),
                seq: random_dna(len / 2 + (i * 37) % len.max(1), seed + i as u64),
            })
            .collect();
        SeqDatabase::from_records(records)
    }

    fn test_queries(n: usize, len: usize, seed: u64) -> Vec<DnaSeq> {
        (0..n)
            .map(|i| random_dna(len / 3 + (i * 11) % len.max(1), seed ^ (i as u64) << 4))
            .collect()
    }

    /// The sequential single-pair reference the engine must equal.
    fn brute_force(db: &SeqDatabase, queries: &[&[u8]], k: usize) -> Vec<Vec<Hit>> {
        oracle_search(db, queries, &SC, k)
    }

    #[test]
    fn search_matches_brute_force_for_all_kernels() {
        let db = test_db(23, 60, 7);
        let queries = test_queries(19, 45, 99);
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_bytes()).collect();
        let want = brute_force(&db, &refs, 5);
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let engine = BatchEngine::new(BatchConfig {
                kernel,
                top_k: 5,
                scheduler: SchedulerConfig {
                    workers: 3,
                    window: 2,
                },
                ..BatchConfig::default()
            });
            let got = engine.search(&db, &refs);
            assert_eq!(got.hits, want, "kernel {kernel}");
            assert!(got.stats.cells > 0);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let db = test_db(31, 80, 3);
        let queries = test_queries(27, 50, 5);
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_bytes()).collect();
        let runs: Vec<Vec<Vec<Hit>>> = [1usize, 2, 5, 8]
            .iter()
            .map(|&workers| {
                BatchEngine::new(BatchConfig {
                    top_k: 4,
                    scheduler: SchedulerConfig { workers, window: 3 },
                    slab: 4,
                    ..BatchConfig::default()
                })
                .search(&db, &refs)
                .hits
            })
            .collect();
        for r in &runs[1..] {
            assert_eq!(r, &runs[0]);
        }
    }

    #[test]
    fn empty_inputs_yield_empty_hit_lists() {
        let db = test_db(4, 30, 1);
        let engine = BatchEngine::default();
        assert!(engine.search(&db, &[]).hits.is_empty());
        let q: Vec<&[u8]> = vec![b"ACGT"];
        let empty = SeqDatabase::from_records(vec![]);
        assert_eq!(engine.search(&empty, &q).hits, vec![Vec::<Hit>::new()]);
    }

    #[test]
    fn mixed_degenerate_queries_are_exact() {
        let db = test_db(9, 40, 11);
        let long = vec![b'A'; 40_000];
        let queries: Vec<&[u8]> = vec![b"", b"A", &long, b"GATTACA"];
        let engine = BatchEngine::new(BatchConfig {
            top_k: 3,
            scheduler: SchedulerConfig {
                workers: 4,
                window: 0,
            },
            ..BatchConfig::default()
        });
        assert_eq!(
            engine.search(&db, &queries).hits,
            brute_force(&db, &queries, 3)
        );
    }

    #[test]
    fn streaming_emits_final_answers_in_ascending_query_order() {
        let db = test_db(17, 70, 21);
        let queries = test_queries(23, 40, 77);
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_bytes()).collect();
        let want = brute_force(&db, &refs, 4);
        for workers in [1usize, 3, 6] {
            let engine = BatchEngine::new(BatchConfig {
                top_k: 4,
                scheduler: SchedulerConfig { workers, window: 2 },
                slab: 5,
                ..BatchConfig::default()
            });
            let mut seen: Vec<(usize, Vec<Hit>)> = Vec::new();
            engine.search_streaming(&db, &refs, |q, hits| seen.push((q, hits)));
            // One emission per query, strictly ascending, each already final.
            assert_eq!(seen.len(), refs.len(), "workers {workers}");
            for (i, (q, hits)) in seen.iter().enumerate() {
                assert_eq!(*q, i);
                assert_eq!(hits, &want[i], "workers {workers} query {i}");
            }
        }
    }

    #[test]
    fn score_pairs_matches_per_pair_kernel_calls() {
        let targets: Vec<DnaSeq> = (0..4).map(|i| random_dna(70, 50 + i)).collect();
        let queries = test_queries(13, 35, 17);
        // Repeat targets so grouping actually packs lanes.
        let pairs: Vec<(&[u8], &[u8])> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (q.as_bytes(), targets[i % targets.len()].as_bytes()))
            .collect();
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            for workers in [1, 4] {
                let got = score_pairs(
                    kernel,
                    &pairs,
                    &SC,
                    2,
                    &SchedulerConfig { workers, window: 2 },
                );
                let want: Vec<LinearSwResult> = pairs
                    .iter()
                    .map(|&(q, t)| kernel_for(kernel).score(q, t, &SC, 2))
                    .collect();
                assert_eq!(got, want, "kernel {kernel} workers {workers}");
            }
        }
    }

    #[test]
    fn protein_search_matches_gotoh_oracle_for_all_kernels() {
        use genomedsm_seq::random_protein;
        let ms = MatrixScoring::blosum62();
        let mode = ScoreMode::Protein(ms);
        let records: Vec<genomedsm_seq::ProteinRecord> = (0..21)
            .map(|i| genomedsm_seq::ProteinRecord {
                id: format!("p{i}"),
                seq: random_protein(30 + (i * 13) % 50, 400 + i as u64),
            })
            .collect();
        let db = SeqDatabase::from_protein_records(records);
        let queries: Vec<genomedsm_seq::ProteinSeq> = (0..17)
            .map(|i| random_protein(10 + (i * 7) % 40, 900 + i as u64))
            .collect();
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_bytes()).collect();
        let want = oracle_search_mode(&db, &refs, &mode, &SC, 5);
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            for workers in [1usize, 4] {
                let engine = BatchEngine::new(BatchConfig {
                    kernel,
                    mode,
                    top_k: 5,
                    scheduler: SchedulerConfig { workers, window: 2 },
                    slab: 4,
                    ..BatchConfig::default()
                });
                let got = engine.search(&db, &refs);
                assert_eq!(got.hits, want, "kernel {kernel} workers {workers}");
            }
        }
    }

    #[test]
    fn protein_mode_spills_oversized_queries_exactly() {
        // A query past the BLOSUM62 i16 envelope (min(m,·)·11 > 32 000)
        // must run on the scalar Gotoh path and still match the oracle.
        let ms = MatrixScoring::blosum62();
        let mode = ScoreMode::Protein(ms);
        let records: Vec<genomedsm_seq::ProteinRecord> = (0..4)
            .map(|i| genomedsm_seq::ProteinRecord {
                id: format!("p{i}"),
                seq: genomedsm_seq::random_protein(60, i as u64),
            })
            .collect();
        let db = SeqDatabase::from_protein_records(records);
        let huge = vec![b'W'; 3000];
        let queries: Vec<&[u8]> = vec![&huge, b"WQHKRWCEW", b""];
        let want = oracle_search_mode(&db, &queries, &mode, &SC, 3);
        let engine = BatchEngine::new(BatchConfig {
            mode,
            top_k: 3,
            ..BatchConfig::default()
        });
        let got = engine.search(&db, &queries);
        assert_eq!(got.hits, want);
        assert!(got.stats.scalar_queries >= 1);
    }

    #[test]
    fn score_pairs_empty_list() {
        assert!(
            score_pairs(KernelChoice::Auto, &[], &SC, 0, &SchedulerConfig::default()).is_empty()
        );
    }
}
