//! Per-query top-k result heaps with a strict total order.
//!
//! Determinism demands more than "keep the k best scores": with ties, the
//! *set* kept must not depend on arrival order. [`Hit`]'s ordering is
//! total — score first, then lower target index, then lower end position —
//! and every (query, target) pair contributes at most one hit, so no two
//! distinct hits ever compare equal. The k greatest hits under a strict
//! total order are a unique set, which makes [`TopK`] insertion-order
//! independent, and top-k of a union equal to top-k of per-part top-ks —
//! exactly what the scheduler's partial-result merge relies on.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One database hit of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Local alignment score (always > 0; zero-score pairs produce no hit).
    pub score: i32,
    /// Database record index (length-sorted database order).
    pub target: usize,
    /// End cell of the best local alignment, 1-based (query, target)
    /// positions, with the kernel's row-major-first tie-break.
    pub end: (usize, usize),
}

impl Ord for Hit {
    /// Greater = better: higher score, then lower target index, then lower
    /// (row-major) end position.
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .cmp(&other.score)
            .then_with(|| other.target.cmp(&self.target))
            .then_with(|| other.end.cmp(&self.end))
    }
}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A bounded best-k collector over [`Hit`]s.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Min-heap of the current best k: the root is the worst kept hit, the
    // one a better candidate evicts.
    heap: BinaryHeap<Reverse<Hit>>,
}

impl TopK {
    /// An empty collector keeping at most `k` hits.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// Offers a hit; it is kept iff it is among the k best seen so far.
    pub fn push(&mut self, hit: Hit) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse(hit));
        } else if self.heap.peek().is_some_and(|min| hit > min.0) {
            self.heap.pop();
            self.heap.push(Reverse(hit));
        }
    }

    /// Absorbs another collector's hits.
    pub fn merge(&mut self, other: TopK) {
        for Reverse(h) in other.heap {
            self.push(h);
        }
    }

    /// Number of hits currently kept.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// The worst hit currently kept — the one a better candidate would
    /// evict. `None` while empty. When the collector is full, a candidate
    /// strictly below this hit (in particular: any hit whose score is
    /// strictly below `worst().score`) can never enter, which is the
    /// pruning test of the prefiltered search driver.
    pub fn worst(&self) -> Option<&Hit> {
        self.heap.peek().map(|Reverse(h)| h)
    }

    /// Whether no hit has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The kept hits, best first.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut v: Vec<Hit> = self.heap.into_iter().map(|Reverse(h)| h).collect();
        v.sort_by(|a, b| b.cmp(a));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(score: i32, target: usize) -> Hit {
        Hit {
            score,
            target,
            end: (1, 1),
        }
    }

    #[test]
    fn keeps_the_k_best_in_order() {
        let mut tk = TopK::new(3);
        for (s, t) in [(5, 0), (9, 1), (1, 2), (7, 3), (3, 4)] {
            tk.push(hit(s, t));
        }
        let got = tk.into_sorted();
        assert_eq!(
            got.iter().map(|h| (h.score, h.target)).collect::<Vec<_>>(),
            vec![(9, 1), (7, 3), (5, 0)]
        );
    }

    #[test]
    fn ties_break_toward_lower_target_then_lower_end() {
        let a = Hit {
            score: 5,
            target: 2,
            end: (1, 1),
        };
        let b = Hit {
            score: 5,
            target: 1,
            end: (9, 9),
        };
        let c = Hit {
            score: 5,
            target: 1,
            end: (1, 2),
        };
        assert!(b > a, "lower target beats lower end");
        assert!(c > b, "same target: lower end wins");
        let mut tk = TopK::new(2);
        for h in [a, b, c] {
            tk.push(h);
        }
        assert_eq!(tk.into_sorted(), vec![c, b]);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let hits: Vec<Hit> = (0..20).map(|i| hit(((i * 13) % 7) as i32, i)).collect();
        let mut forward = TopK::new(5);
        let mut backward = TopK::new(5);
        for &h in &hits {
            forward.push(h);
        }
        for &h in hits.iter().rev() {
            backward.push(h);
        }
        assert_eq!(forward.into_sorted(), backward.into_sorted());
    }

    #[test]
    fn merge_equals_single_collector() {
        let hits: Vec<Hit> = (0..30).map(|i| hit(((i * 31) % 11) as i32, i)).collect();
        let mut whole = TopK::new(4);
        for &h in &hits {
            whole.push(h);
        }
        let mut left = TopK::new(4);
        let mut right = TopK::new(4);
        for &h in &hits[..17] {
            left.push(h);
        }
        for &h in &hits[17..] {
            right.push(h);
        }
        left.merge(right);
        assert_eq!(left.into_sorted(), whole.into_sorted());
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut tk = TopK::new(0);
        tk.push(hit(100, 0));
        assert!(tk.is_empty());
    }
}
