//! The engine-core entry point shared by every front-end.
//!
//! `genomedsm batch`, `genomedsm serve`, and the bench harness all used
//! to (or would have to) re-assemble the same pipeline by hand: load the
//! database and queries, build a [`BatchEngine`], run the search, and
//! optionally re-derive the answer with the sequential oracle. This
//! module is that pipeline, written once:
//!
//! * [`load_inputs`] — FASTA database + query file into a
//!   [`SearchInputs`], with the same typed errors everywhere;
//! * [`execute`] — one streaming search, delivering each query's final
//!   hits in ascending query order *and* returning the collected
//!   [`BatchOutcome`], so callers that print incrementally (the CLI, the
//!   server) and callers that want the whole answer (benches, tests)
//!   share one code path;
//! * [`verify_against_oracle`] — the `--check` contract: compare a
//!   result against [`crate::engine::oracle_search_mode`] and name the
//!   first divergent query.
//!
//! Keeping the front-ends on this path is what makes "cache hit equals
//! recompute" and "`--check` preserved bit-identically" single theorems
//! instead of per-binary claims.

use crate::db::SeqDatabase;
use crate::engine::{oracle_search_mode, BatchEngine, BatchOutcome};
use crate::topk::Hit;
use crate::BatchError;
use std::path::Path;

/// A loaded search problem: the database plus the owned query bytes.
#[derive(Debug, Clone)]
pub struct SearchInputs {
    /// The length-sorted record arena.
    pub db: SeqDatabase,
    /// Query sequences, input order.
    pub queries: Vec<Vec<u8>>,
}

impl SearchInputs {
    /// Borrowed views of the queries, as the engine consumes them.
    pub fn query_refs(&self) -> Vec<&[u8]> {
        self.queries.iter().map(Vec::as_slice).collect()
    }
}

/// Loads the database FASTA and the query FASTA.
///
/// # Errors
///
/// [`BatchError`] if either file is unreadable, malformed, or empty.
pub fn load_inputs(
    db_path: impl AsRef<Path>,
    query_path: impl AsRef<Path>,
) -> Result<SearchInputs, BatchError> {
    let db = SeqDatabase::load_fasta_file(db_path)?;
    let queries = crate::load_query_file(query_path)?;
    Ok(SearchInputs { db, queries })
}

/// [`load_inputs`] for protein FASTA files: the full IUPAC amino-acid
/// alphabet with the canonical residue folding, typed
/// `InvalidResidue` errors, and no DNA ambiguity mapping.
///
/// # Errors
///
/// [`BatchError`] if either file is unreadable, malformed, or empty.
pub fn load_protein_inputs(
    db_path: impl AsRef<Path>,
    query_path: impl AsRef<Path>,
) -> Result<SearchInputs, BatchError> {
    let db = SeqDatabase::load_protein_fasta_file(db_path)?;
    let queries = crate::load_protein_query_file(query_path)?;
    Ok(SearchInputs { db, queries })
}

/// Runs one search, streaming each query's **final** hit list (ascending
/// query order) through `on_query` and returning the collected outcome.
///
/// The emissions are exact prefixes of `outcome.hits`: a caller that
/// forwards them (the server's partial responses, the CLI's progressive
/// print) never has to correct anything it already sent.
pub fn execute(
    engine: &BatchEngine,
    db: &SeqDatabase,
    queries: &[&[u8]],
    mut on_query: impl FnMut(usize, &[Hit]),
) -> BatchOutcome {
    let mut hits: Vec<Vec<Hit>> = Vec::with_capacity(queries.len());
    let stats = engine.search_streaming(db, queries, |q, h| {
        on_query(q, &h);
        debug_assert_eq!(q, hits.len(), "streaming emission out of order");
        hits.push(h);
    });
    BatchOutcome { hits, stats }
}

/// Checks a search result against the sequential per-pair oracle of the
/// engine's scoring mode — `sw_score_linear` for DNA, the scalar Gotoh
/// `sw_score_profile` for protein.
///
/// Returns `Ok(())` when every query's hit list is byte-identical to
/// [`oracle_search_mode`]'s; otherwise the index of the first query whose
/// hits diverge (the `--check` failure the CLI reports).
///
/// # Errors
///
/// The index of the first divergent query.
pub fn verify_against_oracle(
    engine: &BatchEngine,
    db: &SeqDatabase,
    queries: &[&[u8]],
    hits: &[Vec<Hit>],
) -> Result<(), usize> {
    let want = oracle_search_mode(
        db,
        queries,
        &engine.config.mode,
        &engine.config.scoring,
        engine.config.top_k,
    );
    if hits.len() != want.len() {
        return Err(hits.len().min(want.len()));
    }
    match hits.iter().zip(&want).position(|(got, want)| got != want) {
        Some(q) => Err(q),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{oracle_search, BatchConfig};
    use crate::scheduler::SchedulerConfig;
    use genomedsm_seq::fasta::{write_fasta_file, FastaRecord};
    use genomedsm_seq::random_dna;

    fn fixture_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("genomedsm-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_records(path: &Path, n: usize, len: usize, seed: u64) {
        let records: Vec<FastaRecord> = (0..n)
            .map(|i| FastaRecord {
                id: format!("r{i}"),
                seq: random_dna(len + i, seed + i as u64),
            })
            .collect();
        write_fasta_file(path, &records).unwrap();
    }

    #[test]
    fn load_execute_verify_roundtrip() {
        let dir = fixture_dir();
        let db_path = dir.join("db.fa");
        let q_path = dir.join("q.fa");
        write_records(&db_path, 8, 50, 11);
        write_records(&q_path, 5, 30, 99);
        let inputs = load_inputs(&db_path, &q_path).unwrap();
        assert_eq!(inputs.db.len(), 8);
        assert_eq!(inputs.queries.len(), 5);

        let engine = BatchEngine::new(BatchConfig {
            top_k: 3,
            scheduler: SchedulerConfig {
                workers: 2,
                window: 2,
            },
            ..BatchConfig::default()
        });
        let refs = inputs.query_refs();
        let want = oracle_search(
            &inputs.db,
            &refs,
            &engine.config.scoring,
            engine.config.top_k,
        );
        let mut streamed = 0usize;
        let outcome = execute(&engine, &inputs.db, &refs, |q, hits| {
            assert_eq!(q, streamed);
            assert_eq!(hits, &want[q][..], "streamed answer not final");
            streamed += 1;
        });
        assert_eq!(streamed, refs.len());
        assert_eq!(outcome.hits, want);
        assert_eq!(
            verify_against_oracle(&engine, &inputs.db, &refs, &outcome.hits),
            Ok(())
        );
        std::fs::remove_file(&db_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    #[test]
    fn protein_load_execute_verify_roundtrip() {
        use crate::engine::ScoreMode;
        use genomedsm_core::submat::MatrixScoring;
        use genomedsm_seq::fasta::{write_protein_fasta_file, ProteinRecord};
        use genomedsm_seq::random_protein;
        let dir = fixture_dir();
        let db_path = dir.join("pdb.fa");
        let q_path = dir.join("pq.fa");
        let recs = |n: usize, len: usize, seed: u64| -> Vec<ProteinRecord> {
            (0..n)
                .map(|i| ProteinRecord {
                    id: format!("p{i}"),
                    seq: random_protein(len + i, seed + i as u64),
                })
                .collect()
        };
        write_protein_fasta_file(&db_path, &recs(7, 40, 31)).unwrap();
        write_protein_fasta_file(&q_path, &recs(4, 22, 91)).unwrap();
        let inputs = load_protein_inputs(&db_path, &q_path).unwrap();
        let engine = BatchEngine::new(BatchConfig {
            mode: ScoreMode::Protein(MatrixScoring::blosum62()),
            top_k: 3,
            ..BatchConfig::default()
        });
        let refs = inputs.query_refs();
        let outcome = execute(&engine, &inputs.db, &refs, |_, _| {});
        assert_eq!(
            verify_against_oracle(&engine, &inputs.db, &refs, &outcome.hits),
            Ok(())
        );
        std::fs::remove_file(&db_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    #[test]
    fn verify_flags_first_divergent_query() {
        let dir = fixture_dir();
        let db_path = dir.join("db2.fa");
        let q_path = dir.join("q2.fa");
        write_records(&db_path, 6, 40, 3);
        write_records(&q_path, 4, 25, 5);
        let inputs = load_inputs(&db_path, &q_path).unwrap();
        let engine = BatchEngine::default();
        let refs = inputs.query_refs();
        let mut hits = engine.search(&inputs.db, &refs).hits;
        assert_eq!(
            verify_against_oracle(&engine, &inputs.db, &refs, &hits),
            Ok(())
        );
        // Corrupt query 2's answer: verify must name exactly that index.
        hits[2].push(Hit {
            score: 1,
            target: 0,
            end: (0, 0),
        });
        assert_eq!(
            verify_against_oracle(&engine, &inputs.db, &refs, &hits),
            Err(2)
        );
        std::fs::remove_file(&db_path).ok();
        std::fs::remove_file(&q_path).ok();
    }

    #[test]
    fn load_inputs_propagates_missing_file() {
        let err = load_inputs("/nonexistent/db.fa", "/nonexistent/q.fa");
        assert!(err.is_err());
    }
}
