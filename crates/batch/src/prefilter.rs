//! The prefiltered protein search driver: composition bounds before DP.
//!
//! [`prefiltered_search`] runs the same top-k database search as
//! [`crate::engine::oracle_search_mode`] in protein mode, but consults the
//! ALAE-style composition index (`genomedsm-index`) before every DP
//! launch. Records are scanned in **descending bound order** (ties by
//! ascending record index), and a record is pruned without scoring when
//!
//! * its bound is `< 1` — no positive-scoring alignment is possible, so
//!   the record can never produce a hit at all; or
//! * the query's top-k is full **and** the bound is strictly below the
//!   k-th (worst kept) score. Strictness matters: a record whose bound
//!   *equals* the k-th score could still yield an equal-score hit at a
//!   lower target index, which the [`crate::topk::Hit`] order ranks above
//!   the current k-th — pruning it would change the answer.
//!
//! Because bounds never undershoot the true score (the exactness property
//! `genomedsm-index` proves and tests), neither rule can drop a record
//! that belongs in the final top-k: the result is **bit-identical** to
//! the unfiltered search, only cheaper. Scanning best-bound-first is what
//! makes the second rule effective — the top-k fills with high scores
//! early, so the cutoff rises as fast as possible.
//!
//! The driver is sequential per query (the per-record kernel calls are
//! where the time goes, and pruning decisions are inherently ordered);
//! parallel callers run queries, not records, in parallel.

use crate::db::SeqDatabase;
use crate::engine::offer;
use crate::topk::{Hit, TopK};
use genomedsm_core::submat::MatrixScoring;
use genomedsm_index::{PrefilterStats, ProteinIndex, QueryBound};
use genomedsm_kernels::{kernel_for, KernelChoice};

/// One prefiltered top-k protein search: every query against every
/// record, with index-pruned DP. Returns per-query hit lists (input
/// order, best hit first — exactly [`crate::engine::oracle_search_mode`]'s
/// protein answer) plus the aggregate pruning counters.
///
/// `index` must have been built over this database's records in database
/// order ([`build_index`] does exactly that); the function only sees
/// composition counts, so a stale index silently degrades to wrong
/// answers — keep the pair together.
pub fn prefiltered_search(
    db: &SeqDatabase,
    index: &ProteinIndex,
    queries: &[&[u8]],
    ms: &MatrixScoring,
    kernel: KernelChoice,
    top_k: usize,
) -> (Vec<Vec<Hit>>, PrefilterStats) {
    debug_assert_eq!(index.len(), db.len(), "index built over a different db");
    let k = kernel_for(kernel);
    let mut stats = PrefilterStats::default();
    let hits = queries
        .iter()
        .map(|q| {
            let qb = QueryBound::new(q, ms);
            let mut tk = TopK::new(top_k);
            for (t, bound) in index.scan_order(&qb) {
                // Bounds are non-increasing down the scan, so the first
                // prune decides every remaining record too — stop outright.
                let cutoff_hit = top_k == 0
                    || (tk.len() == top_k
                        && tk.worst().is_some_and(|w| bound < i64::from(w.score)));
                if bound < 1 || cutoff_hit {
                    break;
                }
                stats.scored += 1;
                let r = k.score_affine(q, db.seq(t), ms, 0);
                offer(&mut tk, t, &r);
            }
            tk.into_sorted()
        })
        .collect();
    // Every record's bound was (at least implicitly) evaluated; whatever
    // was not scored was pruned.
    stats.evaluated = queries.len() * db.len();
    stats.pruned = stats.evaluated - stats.scored;
    (hits, stats)
}

/// Builds the composition index over a database, in database record
/// order — the pairing [`prefiltered_search`] requires.
pub fn build_index(db: &SeqDatabase) -> ProteinIndex {
    ProteinIndex::build((0..db.len()).map(|i| db.seq(i)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{oracle_search_mode, ScoreMode};
    use genomedsm_core::scoring::Scoring;
    use genomedsm_core::submat::SubstMatrix;
    use genomedsm_seq::{random_protein, ProteinRecord};

    fn protein_db(n: usize, base_len: usize, seed: u64) -> SeqDatabase {
        let records: Vec<ProteinRecord> = (0..n)
            .map(|i| ProteinRecord {
                id: format!("p{i}"),
                seq: random_protein(base_len / 2 + (i * 17) % base_len.max(1), seed + i as u64),
            })
            .collect();
        SeqDatabase::from_protein_records(records)
    }

    fn check_identical(db: &SeqDatabase, queries: &[&[u8]], ms: &MatrixScoring, top_k: usize) {
        let index = build_index(db);
        let want = oracle_search_mode(
            db,
            queries,
            &ScoreMode::Protein(*ms),
            &Scoring::paper(),
            top_k,
        );
        for kernel in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let (got, stats) = prefiltered_search(db, &index, queries, ms, kernel, top_k);
            assert_eq!(got, want, "prefilter changed the top-k ({kernel})");
            assert_eq!(stats.evaluated, queries.len() * db.len());
            assert_eq!(stats.pruned + stats.scored, stats.evaluated);
        }
    }

    #[test]
    fn prefiltered_top_k_is_bit_identical_to_the_full_scan() {
        let db = protein_db(40, 60, 5);
        let queries: Vec<genomedsm_seq::ProteinSeq> =
            (0..9).map(|i| random_protein(25, 700 + i)).collect();
        let refs: Vec<&[u8]> = queries.iter().map(|q| q.as_bytes()).collect();
        let ms = MatrixScoring::blosum62();
        for top_k in [0usize, 1, 3, 10, 1000] {
            check_identical(&db, &refs, &ms, top_k);
        }
    }

    #[test]
    fn prefilter_exactness_survives_planted_near_duplicates() {
        // Ties are the dangerous case: duplicate records produce
        // equal-score hits whose order depends only on target index. The
        // strict `<` cutoff must keep all of them alive until scored.
        let q = random_protein(40, 1);
        let mut records: Vec<ProteinRecord> = (0..6)
            .map(|i| ProteinRecord {
                id: format!("dup{i}"),
                seq: q.clone(),
            })
            .collect();
        for i in 0..10 {
            records.push(ProteinRecord {
                id: format!("noise{i}"),
                seq: random_protein(40, 100 + i),
            });
        }
        let db = SeqDatabase::from_protein_records(records);
        let refs: Vec<&[u8]> = vec![q.as_bytes()];
        // k smaller than the duplicate count: exactly the first k copies
        // (by target index) must win.
        check_identical(&db, &refs, &MatrixScoring::blosum62(), 3);
    }

    #[test]
    fn prefilter_exactness_on_pam250_and_degenerate_queries() {
        let db = protein_db(25, 40, 77);
        let long = vec![b'W'; 3000]; // past the i16 envelope: scalar spill
        let queries: Vec<&[u8]> = vec![b"", b"W", &long, b"WQHKRWCEW"];
        let ms = MatrixScoring::new(SubstMatrix::pam250(), -10, -2);
        check_identical(&db, &queries, &ms, 4);
    }

    #[test]
    fn disjoint_composition_actually_prunes() {
        // Poly-W queries against a poly-P database: every bound is 0, so
        // the driver must prune everything without a single DP launch.
        let records: Vec<ProteinRecord> = (0..12)
            .map(|i| ProteinRecord {
                id: format!("p{i}"),
                seq: genomedsm_seq::ProteinSeq::new("P".repeat(30 + i)).unwrap(),
            })
            .collect();
        let db = SeqDatabase::from_protein_records(records);
        let index = build_index(&db);
        let q = vec![b'W'; 25];
        let refs: Vec<&[u8]> = vec![&q];
        let ms = MatrixScoring::blosum62();
        let (hits, stats) = prefiltered_search(&db, &index, &refs, &ms, KernelChoice::Auto, 5);
        assert!(hits[0].is_empty());
        assert_eq!(stats.scored, 0);
        assert_eq!(stats.pruned, 12);
        assert!((stats.pruning_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_database_and_empty_queries() {
        let db = SeqDatabase::from_protein_records(vec![]);
        let index = build_index(&db);
        let ms = MatrixScoring::blosum62();
        let (hits, stats) = prefiltered_search(&db, &index, &[b"WCE"], &ms, KernelChoice::Auto, 5);
        assert_eq!(hits, vec![Vec::<Hit>::new()]);
        assert_eq!(stats.evaluated, 0);
        let (hits, _) = prefiltered_search(&db, &index, &[], &ms, KernelChoice::Auto, 5);
        assert!(hits.is_empty());
    }
}
