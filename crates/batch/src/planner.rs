//! The batch planner: binning queries into lane groups.
//!
//! A packed kernel invocation costs `max(len of packed queries) × |target|`
//! vector rows — every lane rides along for the longest member's rows, so
//! mixed-length groups burn lanes on padding. Minimizing total cost is a
//! bin-packing problem with a clean greedy optimum: sort queries by
//! descending length and cut the sorted list into consecutive chunks of
//! `lanes`. Any other assignment of the same queries into groups of ≤
//! `lanes` has a sum of per-group maxima at least as large (exchange
//! argument: the k-th largest group maximum is at least the k-th element
//! of the sorted sequence sampled every `lanes` positions).
//!
//! Queries outside the i16 envelope ([`fits_i16_query`]) cannot be packed
//! exactly and are spilled to the scalar list; the engine runs them through
//! the scalar oracle so results stay bit-exact.

use genomedsm_core::scoring::Scoring;
use genomedsm_kernels::fits_i16_query;

/// The planner's output: packed lane groups plus the scalar spill list.
///
/// Indices refer to the caller's query slice. Group membership and order
/// are deterministic functions of the query lengths alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LanePlan {
    /// Query-index groups, each at most `lanes` wide, internally sorted by
    /// descending length (ties by ascending index).
    pub groups: Vec<Vec<usize>>,
    /// Queries that must run on the scalar kernel.
    pub scalar: Vec<usize>,
    /// Cells of padding the grouping accepts: `Σ_groups (max_len −
    /// member_len)` summed over members, in query rows (multiply by target
    /// length for DP cells). Benchmarks report this as packing efficiency.
    pub padding_rows: usize,
}

/// Bins `queries` into lane groups of width `lanes`, admitting a query to
/// lane packing iff `fits(len)` holds (the i16-envelope predicate of the
/// scoring mode in use: [`fits_i16_query`] for DNA,
/// [`genomedsm_kernels::fits_i16_affine_query`] for protein).
///
/// `lanes <= 1` means the caller has no packed kernel (scalar choice or no
/// SIMD); everything spills to the scalar list.
pub fn plan_lane_groups_fitting(
    queries: &[&[u8]],
    lanes: usize,
    fits: impl Fn(usize) -> bool,
) -> LanePlan {
    if lanes <= 1 {
        return LanePlan {
            groups: Vec::new(),
            scalar: (0..queries.len()).collect(),
            padding_rows: 0,
        };
    }
    let (mut packable, scalar): (Vec<usize>, Vec<usize>) =
        (0..queries.len()).partition(|&i| fits(queries[i].len()));
    // Descending length; ascending index on ties keeps the plan stable.
    packable.sort_by_key(|&i| (std::cmp::Reverse(queries[i].len()), i));
    let mut groups = Vec::with_capacity(packable.len().div_ceil(lanes));
    let mut padding_rows = 0usize;
    for chunk in packable.chunks(lanes) {
        let max = queries[chunk[0]].len();
        padding_rows += chunk.iter().map(|&i| max - queries[i].len()).sum::<usize>();
        groups.push(chunk.to_vec());
    }
    LanePlan {
        groups,
        scalar,
        padding_rows,
    }
}

/// [`plan_lane_groups_fitting`] with the DNA (linear-gap) envelope.
pub fn plan_lane_groups(queries: &[&[u8]], lanes: usize, scoring: &Scoring) -> LanePlan {
    plan_lane_groups_fitting(queries, lanes, |len| fits_i16_query(len, scoring))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn groups_are_descending_length_chunks() {
        let qs: Vec<Vec<u8>> = [3usize, 9, 1, 7, 5, 2, 8]
            .iter()
            .map(|&n| vec![b'A'; n])
            .collect();
        let refs: Vec<&[u8]> = qs.iter().map(|q| q.as_slice()).collect();
        let plan = plan_lane_groups(&refs, 4, &SC);
        // Lengths sorted desc: 9(i1) 8(i6) 7(i3) 5(i4) | 3(i0) 2(i5) 1(i2)
        assert_eq!(plan.groups, vec![vec![1, 6, 3, 4], vec![0, 5, 2]]);
        assert!(plan.scalar.is_empty());
        // Padding: group 1: (9-9)+(9-8)+(9-7)+(9-5)=7; group 2: 0+1+2=3.
        assert_eq!(plan.padding_rows, 10);
    }

    #[test]
    fn oversized_queries_spill_to_scalar() {
        let long = vec![b'A'; 40_000];
        let short = vec![b'C'; 10];
        let refs: Vec<&[u8]> = vec![&long, &short];
        let plan = plan_lane_groups(&refs, 8, &SC);
        assert_eq!(plan.scalar, vec![0]);
        assert_eq!(plan.groups, vec![vec![1]]);
    }

    #[test]
    fn lane_width_one_means_all_scalar() {
        let refs: Vec<&[u8]> = vec![b"ACGT", b"GG"];
        let plan = plan_lane_groups(&refs, 1, &SC);
        assert!(plan.groups.is_empty());
        assert_eq!(plan.scalar, vec![0, 1]);
    }

    #[test]
    fn empty_query_set_plans_to_nothing() {
        let plan = plan_lane_groups(&[], 8, &SC);
        assert!(plan.groups.is_empty() && plan.scalar.is_empty());
    }

    #[test]
    fn plan_is_deterministic() {
        let qs: Vec<Vec<u8>> = (0..50).map(|i| vec![b'G'; (i * 7) % 23 + 1]).collect();
        let refs: Vec<&[u8]> = qs.iter().map(|q| q.as_slice()).collect();
        assert_eq!(
            plan_lane_groups(&refs, 16, &SC),
            plan_lane_groups(&refs, 16, &SC)
        );
    }
}
