//! Multi-query batch alignment: database search as a first-class workload.
//!
//! The per-pair kernel path (`genomedsm-kernels`) is fast *per launch*;
//! a database search of thousands of small queries dies by a thousand
//! launches — profile builds, state allocation, and one mostly-idle SIMD
//! register file per pair. This crate turns the workload sideways, the way
//! DSA and SWIPE do (see PAPERS.md): pack a **different query into every
//! i16 lane**, score the whole pack against each database record, and keep
//! per-query top-k hits.
//!
//! Four layers, bottom up:
//!
//! * [`db`] — [`SeqDatabase`]: multi-record FASTA loading into one
//!   length-sorted arena with per-record metadata.
//! * [`planner`] — [`plan_lane_groups`]: greedy length-binning of queries
//!   into lane groups sized to the active ISA width (provably minimal
//!   padding for chunked groups).
//! * [`scheduler`] — [`run_jobs`]: FIFO work stealing with windowed
//!   backpressure and a strictly in-order merge, so results are
//!   deterministic for any worker count.
//! * [`engine`] — [`BatchEngine::search`] (top-k database search over
//!   *(lane group × target slab)* jobs) and [`score_pairs`] (the batch
//!   drop-in for loops of single-pair kernel calls).
//!
//! Everything is bit-exact against the scalar single-pair oracle
//! (`sw_score_linear`): lane packing, scheduling, and top-k selection are
//! pure reorganizations of the same arithmetic.

#![warn(missing_docs)]

pub mod db;
pub mod engine;
pub mod planner;
pub mod prefilter;
pub mod run;
pub mod scheduler;
pub mod topk;

pub use db::{RecordMeta, SeqDatabase};
pub use engine::{
    oracle_search, oracle_search_mode, score_pairs, BatchConfig, BatchEngine, BatchOutcome,
    BatchStats, ScoreMode,
};
pub use planner::{plan_lane_groups, plan_lane_groups_fitting, LanePlan};
pub use prefilter::{build_index, prefiltered_search};
pub use run::{execute, load_inputs, load_protein_inputs, verify_against_oracle, SearchInputs};
pub use scheduler::{run_jobs, SchedulerConfig};
pub use topk::{Hit, TopK};

use genomedsm_seq::fasta::FastaError;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// Typed error of the batch subsystem (loading and configuration; the
/// search itself is infallible by construction).
#[derive(Debug)]
pub enum BatchError {
    /// An I/O operation failed; `context` names the file and operation.
    Io {
        /// What was being done.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A FASTA file failed to parse.
    Fasta {
        /// The offending file.
        path: PathBuf,
        /// The parse error.
        source: FastaError,
    },
    /// A database file contained no records.
    EmptyDatabase {
        /// The offending file.
        path: PathBuf,
    },
    /// An invalid configuration value.
    BadConfig(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { context, source } => write!(f, "{context}: {source}"),
            BatchError::Fasta { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            BatchError::EmptyDatabase { path } => {
                write!(f, "{}: database has no records", path.display())
            }
            BatchError::BadConfig(what) => write!(f, "bad config: {what}"),
        }
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BatchError::Io { source, .. } => Some(source),
            BatchError::Fasta { source, .. } => Some(source),
            BatchError::EmptyDatabase { .. } | BatchError::BadConfig(_) => None,
        }
    }
}

impl BatchError {
    /// Wraps an `io::Error` with a context string.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        BatchError::Io {
            context: context.into(),
            source,
        }
    }
}

/// Loads a multi-record FASTA query file (rejects an empty file — a
/// search with zero queries is always a caller mistake).
pub fn load_query_file(path: impl AsRef<std::path::Path>) -> Result<Vec<Vec<u8>>, BatchError> {
    let path = path.as_ref();
    let records =
        genomedsm_seq::fasta::read_fasta_file(path).map_err(|source| BatchError::Fasta {
            path: path.to_path_buf(),
            source,
        })?;
    if records.is_empty() {
        return Err(BatchError::EmptyDatabase {
            path: path.to_path_buf(),
        });
    }
    Ok(records.into_iter().map(|r| r.seq.into_bytes()).collect())
}

/// Loads a multi-record protein FASTA query file (same emptiness contract
/// as [`load_query_file`]).
pub fn load_protein_query_file(
    path: impl AsRef<std::path::Path>,
) -> Result<Vec<Vec<u8>>, BatchError> {
    let path = path.as_ref();
    let records = genomedsm_seq::fasta::read_protein_fasta_file(path).map_err(|source| {
        BatchError::Fasta {
            path: path.to_path_buf(),
            source,
        }
    })?;
    if records.is_empty() {
        return Err(BatchError::EmptyDatabase {
            path: path.to_path_buf(),
        });
    }
    Ok(records.into_iter().map(|r| r.seq.into_bytes()).collect())
}
