//! Ungapped X-drop extension of a word hit.

use genomedsm_core::{LocalRegion, Scoring};

/// Extends an exact word hit of length `k` at `(i, j)` left and right
/// along the diagonal, stopping each direction once the running score
/// falls `x_drop` below the best seen. Returns the trimmed-to-best HSP.
pub fn extend_ungapped(
    s: &[u8],
    t: &[u8],
    i: usize,
    j: usize,
    k: usize,
    scoring: &Scoring,
    x_drop: i32,
) -> LocalRegion {
    debug_assert_eq!(&s[i..i + k], &t[j..j + k], "seed must be an exact hit");
    let seed_score = k as i32 * scoring.matches;

    // Right extension.
    let mut best_right = 0;
    let mut best_right_len = 0usize;
    let mut run = 0;
    let mut l = 0usize;
    while i + k + l < s.len() && j + k + l < t.len() {
        run += scoring.subst(s[i + k + l], t[j + k + l]);
        l += 1;
        if run > best_right {
            best_right = run;
            best_right_len = l;
        }
        if run <= best_right - x_drop {
            break;
        }
    }

    // Left extension.
    let mut best_left = 0;
    let mut best_left_len = 0usize;
    run = 0;
    l = 0;
    while l < i && l < j {
        run += scoring.subst(s[i - 1 - l], t[j - 1 - l]);
        l += 1;
        if run > best_left {
            best_left = run;
            best_left_len = l;
        }
        if run <= best_left - x_drop {
            break;
        }
    }

    LocalRegion {
        s_begin: i - best_left_len,
        s_end: i + k + best_right_len,
        t_begin: j - best_left_len,
        t_end: j + k + best_right_len,
        score: seed_score + best_left + best_right,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    #[test]
    fn seed_alone_when_no_extension_possible() {
        let s = b"AAAACGTACCCC";
        let t = b"GGGGCGTAGGGG";
        // Exact 4-mer CGTA at s[4], t[4].
        let h = extend_ungapped(s, t, 4, 4, 4, &SC, 5);
        assert_eq!(h.score, 4);
        assert_eq!((h.s_begin, h.s_end), (4, 8));
    }

    #[test]
    fn extends_through_single_mismatch() {
        let s = b"TTTGATTACAXGATTACATTT".map(|c| if c == b'X' { b'C' } else { c });
        let t = b"GGGGATTACAYGATTACAGGG".map(|c| if c == b'Y' { b'A' } else { c });
        // Seed on the first GATTACA (7-mer at s[3], t[3]).
        let h = extend_ungapped(&s, &t, 3, 3, 7, &SC, 12);
        // Extension crosses the mismatch column and takes the second
        // GATTACA: 14 matches + 1 mismatch = 13.
        assert_eq!(h.score, 13);
        assert_eq!(h.s_end, 18);
    }

    #[test]
    fn x_drop_stops_extension() {
        let mut s = vec![b'A'; 40];
        let mut t = vec![b'C'; 40];
        s[10..18].copy_from_slice(b"GATTACAG");
        t[10..18].copy_from_slice(b"GATTACAG");
        // Around the repeat everything mismatches; with a small x_drop the
        // extension stays tight.
        let h = extend_ungapped(&s, &t, 10, 10, 8, &SC, 3);
        assert_eq!((h.s_begin, h.s_end), (10, 18));
        assert_eq!(h.score, 8);
    }

    #[test]
    fn left_extension_works() {
        let s = b"GATTACAGGGG";
        let t = b"GATTACATTTT";
        // Seed at the tail of the shared prefix: 4-mer TACA at s[3], t[3].
        let h = extend_ungapped(s, t, 3, 3, 4, &SC, 10);
        assert_eq!(h.s_begin, 0);
        assert_eq!(h.score, 7);
    }

    #[test]
    fn extension_at_sequence_edges() {
        let s = b"ACGT";
        let t = b"ACGT";
        let h = extend_ungapped(s, t, 0, 0, 4, &SC, 5);
        assert_eq!(h.score, 4);
        assert_eq!((h.s_begin, h.s_end, h.t_begin, h.t_end), (0, 4, 0, 4));
    }
}
