//! HSP post-processing: containment dedup and score ordering.

use genomedsm_core::LocalRegion;

/// Sorts HSPs by descending score and removes any HSP contained (in both
/// projections) in a better or equal one already kept.
pub fn dedup_hsps(mut hsps: Vec<LocalRegion>) -> Vec<LocalRegion> {
    hsps.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then(a.s_begin.cmp(&b.s_begin))
            .then(a.t_begin.cmp(&b.t_begin))
            .then(a.s_end.cmp(&b.s_end))
    });
    let mut kept: Vec<LocalRegion> = Vec::with_capacity(hsps.len());
    for h in hsps {
        if !kept.iter().any(|k| k.contains(&h)) {
            kept.push(h);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hsp(sb: usize, se: usize, tb: usize, te: usize, score: i32) -> LocalRegion {
        LocalRegion {
            s_begin: sb,
            s_end: se,
            t_begin: tb,
            t_end: te,
            score,
        }
    }

    #[test]
    fn keeps_best_first() {
        let out = dedup_hsps(vec![hsp(0, 5, 0, 5, 3), hsp(10, 30, 10, 30, 9)]);
        assert_eq!(out[0].score, 9);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn removes_contained() {
        let out = dedup_hsps(vec![hsp(0, 50, 0, 50, 20), hsp(5, 15, 5, 15, 8)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].score, 20);
    }

    #[test]
    fn exact_duplicates_collapse() {
        let h = hsp(3, 9, 3, 9, 5);
        assert_eq!(dedup_hsps(vec![h, h, h]).len(), 1);
    }

    #[test]
    fn overlapping_but_not_contained_survive() {
        let out = dedup_hsps(vec![hsp(0, 20, 0, 20, 7), hsp(10, 30, 10, 30, 7)]);
        assert_eq!(out.len(), 2);
    }
}
