//! A BlastN-like seed-and-extend heuristic local aligner.
//!
//! Table 2 of the paper compares GenomeDSM's output against NCBI BlastN on
//! two 50 kBP mitochondrial genomes and observes that "the results obtained
//! by both programs are very close but not the same", both being
//! heuristics with different parameters. The NCBI binary is not available
//! here, so this crate implements the same algorithmic family from
//! scratch:
//!
//! 1. **Seeding** — index every `word_size`-mer of `t`
//!    ([`kmer::KmerIndex`]), then stream the `word_size`-mers of `s` and
//!    look up exact matches (the classic BLAST word hit).
//! 2. **Ungapped extension** — extend each hit left and right along the
//!    diagonal with an X-drop rule ([`extend::extend_ungapped`]).
//! 3. **Gapped refinement** — re-align promising HSPs with a banded
//!    Needleman–Wunsch over the extended window
//!    ([`genomedsm_core::nw::nw_banded`]).
//! 4. **Filtering** — deduplicate per diagonal, drop HSPs below
//!    `min_score`, sort by score.
//!
//! The output type is the same [`LocalRegion`] the GenomeDSM strategies
//! produce, so the Table 2 comparison is a direct coordinate diff.

#![warn(missing_docs)]

pub mod extend;
pub mod filter;
pub mod hsp;
pub mod kmer;
pub mod stats;

use genomedsm_core::{LocalRegion, Scoring};
use std::fmt;

pub use extend::extend_ungapped;
pub use filter::{dust_mask, dust_score, DustParams};
pub use hsp::dedup_hsps;
pub use kmer::KmerIndex;
pub use stats::KarlinAltschul;

/// Typed error of the BlastN-like searcher (same conventions as the
/// strategies' `StrategyError`: a contextual message per variant, `Display`
/// + `Error` impls, and a `Result` alias).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlastError {
    /// A parameter combination the search cannot run with.
    BadParams(String),
    /// An input sequence contained a byte outside `{A,C,G,T}`.
    InvalidBase {
        /// Which input: `"query"` or `"subject"`.
        which: &'static str,
        /// Byte offset of the first offending character.
        position: usize,
        /// The offending byte.
        byte: u8,
    },
}

impl fmt::Display for BlastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlastError::BadParams(what) => write!(f, "bad blast parameters: {what}"),
            BlastError::InvalidBase {
                which,
                position,
                byte,
            } => write!(
                f,
                "{which} has invalid base 0x{byte:02x} at position {position}"
            ),
        }
    }
}

impl std::error::Error for BlastError {}

/// Convenience alias used by the search entry points.
pub type BlastResult<T> = Result<T, BlastError>;

/// Rejects bytes outside `{A,C,G,T}` before they can reach the 2-bit
/// k-mer encoder or the DUST scorer, whose panics would otherwise be the
/// first to notice.
fn validate_bases(which: &'static str, seq: &[u8]) -> BlastResult<()> {
    match seq
        .iter()
        .position(|&b| !matches!(b, b'A' | b'C' | b'G' | b'T'))
    {
        None => Ok(()),
        Some(position) => Err(BlastError::InvalidBase {
            which,
            position,
            byte: seq[position],
        }),
    }
}

/// Parameters of the BlastN-like search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlastParams {
    /// Exact-match seed length (NCBI blastn default: 11).
    pub word_size: usize,
    /// Stop extending once the running score drops this far below the
    /// best seen (the X-drop).
    pub x_drop: i32,
    /// Report HSPs scoring at least this much.
    pub min_score: i32,
    /// Band half-width for the gapped refinement pass.
    pub band: usize,
    /// Two-hit seeding (BLAST 2.0): require a second non-overlapping word
    /// hit on the same diagonal within this distance before extending.
    /// `None` = classic one-hit seeding.
    pub two_hit_window: Option<usize>,
    /// DUST-style low-complexity masking of the query (`None` = off).
    pub dust: Option<filter::DustParams>,
    /// Column scoring scheme (defaults to the paper's +1/−1/−2).
    pub scoring: Scoring,
    /// Score kernel for the gapped-refinement re-score of each HSP window
    /// (striped SIMD when available and applicable, scalar otherwise).
    pub kernel: genomedsm_kernels::KernelChoice,
}

impl Default for BlastParams {
    fn default() -> Self {
        Self {
            word_size: 11,
            x_drop: 12,
            min_score: 20,
            band: 16,
            two_hit_window: None,
            dust: None,
            scoring: Scoring::paper(),
            kernel: genomedsm_kernels::KernelChoice::Auto,
        }
    }
}

/// The seed-and-extend searcher.
#[derive(Debug, Clone)]
pub struct BlastN {
    /// Search parameters.
    pub params: BlastParams,
}

impl BlastN {
    /// Creates a searcher with the given parameters.
    ///
    /// # Errors
    /// Returns [`BlastError::BadParams`] for a word size outside the 2-bit
    /// packer's `4..=31` range or a non-positive X-drop.
    pub fn new(params: BlastParams) -> BlastResult<Self> {
        if params.word_size < 4 {
            return Err(BlastError::BadParams(format!(
                "word size {} too small to seed (need >= 4)",
                params.word_size
            )));
        }
        if params.word_size > 31 {
            return Err(BlastError::BadParams(format!(
                "word size {} exceeds the 2-bit packer's limit of 31",
                params.word_size
            )));
        }
        if params.x_drop <= 0 {
            return Err(BlastError::BadParams(format!(
                "x_drop must be positive, got {}",
                params.x_drop
            )));
        }
        Ok(Self { params })
    }

    /// Searches for local alignments of `s` against `t`, returning HSP
    /// coordinates sorted by descending score.
    ///
    /// # Errors
    /// Returns [`BlastError::InvalidBase`] if either input contains a byte
    /// outside `{A,C,G,T}` (FASTA inputs parsed by `genomedsm-seq` are
    /// always clean; this guards hand-built byte slices).
    pub fn search(&self, s: &[u8], t: &[u8]) -> BlastResult<Vec<LocalRegion>> {
        let p = &self.params;
        validate_bases("query", s)?;
        validate_bases("subject", t)?;
        if s.len() < p.word_size || t.len() < p.word_size {
            return Ok(Vec::new());
        }
        let index = KmerIndex::build(t, p.word_size);
        let mask = p.dust.map(|dp| filter::dust_mask(s, &dp));
        // Per-diagonal high-water mark: skip word hits already covered by
        // an extension on the same diagonal (BLAST's hit culling).
        let mut diag_reach: std::collections::HashMap<i64, usize> =
            std::collections::HashMap::new();
        // Two-hit seeding: remember the last unextended hit per diagonal.
        let mut diag_last_hit: std::collections::HashMap<i64, usize> =
            std::collections::HashMap::new();
        let mut hsps: Vec<LocalRegion> = Vec::new();

        for (i, word) in kmer::kmers(s, p.word_size) {
            if let Some(mask) = &mask {
                // Skip seeds starting in masked (low-complexity) query.
                if mask[i] {
                    continue;
                }
            }
            for &j in index.lookup(word) {
                let j = j as usize;
                let diag = i as i64 - j as i64;
                if diag_reach.get(&diag).is_some_and(|&reach| i < reach) {
                    continue;
                }
                if let Some(window) = p.two_hit_window {
                    // BLAST 2.0: extend only when a second non-overlapping
                    // hit lands on the diagonal within the window.
                    match diag_last_hit.get(&diag) {
                        Some(&prev) if i > prev + p.word_size - 1 && i - prev <= window => {}
                        _ => {
                            diag_last_hit.insert(diag, i);
                            continue;
                        }
                    }
                }
                let hsp = extend::extend_ungapped(s, t, i, j, p.word_size, &p.scoring, p.x_drop);
                diag_reach.insert(diag, hsp.s_end);
                if hsp.score >= p.min_score {
                    hsps.push(hsp);
                }
            }
        }
        let hsps = self.refine_gapped_batch(s, t, hsps);
        let mut out = dedup_hsps(hsps);
        out.retain(|h| h.score >= p.min_score);
        Ok(out)
    }

    /// Re-scores ungapped HSPs over their windows, keeping per HSP the best
    /// of the ungapped score, a banded global alignment (gapped alignment
    /// can only help if the window truly contains indels), and an exact
    /// local SW score. The local score dominates both others (it may skip
    /// the window's rim and is never banded), so on SIMD hardware this is
    /// both the tightest and the cheapest bound per cell.
    ///
    /// The SW re-scores for *all* windows go through one
    /// [`genomedsm_batch::score_pairs`] call instead of per-window kernel
    /// launches: windows over a byte-identical subject slice share a lane
    /// pack, and singles keep the exact single-pair path.
    fn refine_gapped_batch(&self, s: &[u8], t: &[u8], hsps: Vec<LocalRegion>) -> Vec<LocalRegion> {
        let p = &self.params;
        let pairs: Vec<(&[u8], &[u8])> = hsps
            .iter()
            .map(|h| (&s[h.s_begin..h.s_end], &t[h.t_begin..h.t_end]))
            .collect();
        // One worker: BlastN searches often already run one-per-thread
        // (phase-1 strategies, benches), so refinement stays inline.
        let scheduler = genomedsm_batch::SchedulerConfig {
            workers: 1,
            window: 1,
        };
        let locals = genomedsm_batch::score_pairs(p.kernel, &pairs, &p.scoring, 0, &scheduler);
        hsps.into_iter()
            .zip(locals)
            .map(|(mut best, local)| {
                let sub_s = &s[best.s_begin..best.s_end];
                let sub_t = &t[best.t_begin..best.t_end];
                if let Some(g) = genomedsm_core::nw::nw_banded(sub_s, sub_t, &p.scoring, p.band) {
                    best.score = best.score.max(g.score);
                }
                best.score = best.score.max(local.best_score);
                best
            })
            .collect()
    }
}

impl Default for BlastN {
    fn default() -> Self {
        Self::new(BlastParams::default()).expect("default parameters are valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    #[test]
    fn finds_a_planted_exact_repeat() {
        let mut s = vec![b'A'; 200];
        let mut t = vec![b'C'; 200];
        let repeat = b"GATTACAGATTACAGATTACAGATTACA"; // 28 bp
        s[50..50 + repeat.len()].copy_from_slice(repeat);
        t[120..120 + repeat.len()].copy_from_slice(repeat);
        let hits = BlastN::default().search(&s, &t).unwrap();
        assert!(!hits.is_empty());
        let best = &hits[0];
        assert!(best.score >= 20, "score {}", best.score);
        assert!(best.s_begin >= 45 && best.s_end <= 85);
        assert!(best.t_begin >= 115 && best.t_end <= 155);
    }

    #[test]
    fn no_hits_between_unrelated_homopolymers() {
        let s = vec![b'A'; 300];
        let t = vec![b'C'; 300];
        assert!(BlastN::default().search(&s, &t).unwrap().is_empty());
    }

    #[test]
    fn too_short_inputs_yield_nothing() {
        assert!(BlastN::default()
            .search(b"ACGT", b"ACGTACGTACGTACG")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn finds_planted_homology_with_mutations() {
        let plan = HomologyPlan {
            region_count: 4,
            region_len_mean: 250,
            region_len_jitter: 30,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, truth) = planted_pair(8_000, 8_000, &plan, 77);
        let hits = BlastN::default().search(&s, &t).unwrap();
        // Every planted region should be hit by at least one HSP whose
        // t-interval overlaps it.
        for region in &truth {
            let covered = hits
                .iter()
                .any(|h| h.t_begin < region.t_end && region.t_start < h.t_end);
            assert!(covered, "planted region {region:?} not found");
        }
    }

    #[test]
    fn results_sorted_by_score() {
        let plan = HomologyPlan {
            region_count: 6,
            region_len_mean: 150,
            region_len_jitter: 60,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, _) = planted_pair(6_000, 6_000, &plan, 3);
        let hits = BlastN::default().search(&s, &t).unwrap();
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn two_hit_seeding_still_finds_long_homology() {
        let plan = HomologyPlan {
            region_count: 3,
            region_len_mean: 300,
            region_len_jitter: 20,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, truth) = planted_pair(6_000, 6_000, &plan, 91);
        let blast = BlastN::new(BlastParams {
            two_hit_window: Some(40),
            ..Default::default()
        })
        .unwrap();
        let hits = blast.search(&s, &t).unwrap();
        for region in &truth {
            let covered = hits
                .iter()
                .any(|h| h.t_begin < region.t_end && region.t_start < h.t_end);
            assert!(covered, "two-hit seeding missed {region:?}");
        }
        // And it prunes spurious one-off seeds: no more HSPs than one-hit.
        let one_hit = BlastN::default().search(&s, &t).unwrap();
        assert!(hits.len() <= one_hit.len());
    }

    #[test]
    fn dust_masking_suppresses_homopolymer_hits() {
        // Both sequences share a 60-bp poly-A run (biologically
        // meaningless); with DUST on, it is not reported.
        let mut x: u64 = 5;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut s: Vec<u8> = (0..500).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        let mut t: Vec<u8> = (0..500).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        for b in s[100..160].iter_mut() {
            *b = b'A';
        }
        for b in t[300..360].iter_mut() {
            *b = b'A';
        }
        let unmasked = BlastN::default().search(&s, &t).unwrap();
        assert!(
            unmasked.iter().any(|h| h.s_begin >= 90 && h.s_end <= 170),
            "poly-A should hit without DUST"
        );
        let masked = BlastN::new(BlastParams {
            dust: Some(filter::DustParams::default()),
            ..Default::default()
        })
        .unwrap()
        .search(&s, &t)
        .unwrap();
        assert!(
            !masked.iter().any(|h| h.s_begin >= 90 && h.s_end <= 170),
            "poly-A must be masked: {masked:?}"
        );
    }

    #[test]
    fn kernel_choices_give_identical_results() {
        use genomedsm_kernels::KernelChoice;
        let plan = HomologyPlan {
            region_count: 5,
            region_len_mean: 180,
            region_len_jitter: 40,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (s, t, _) = planted_pair(5_000, 5_000, &plan, 12);
        let runs: Vec<_> = [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto]
            .into_iter()
            .map(|kernel| {
                BlastN::new(BlastParams {
                    kernel,
                    ..Default::default()
                })
                .unwrap()
                .search(&s, &t)
                .unwrap()
            })
            .collect();
        assert_eq!(runs[0], runs[1], "scalar vs simd");
        assert_eq!(runs[0], runs[2], "scalar vs auto");
        assert!(!runs[0].is_empty());
    }

    #[test]
    fn rejects_bad_parameters_with_typed_errors() {
        for (params, needle) in [
            (
                BlastParams {
                    word_size: 2,
                    ..Default::default()
                },
                "word size",
            ),
            (
                BlastParams {
                    word_size: 40,
                    ..Default::default()
                },
                "2-bit packer",
            ),
            (
                BlastParams {
                    x_drop: 0,
                    ..Default::default()
                },
                "x_drop",
            ),
        ] {
            match BlastN::new(params) {
                Err(BlastError::BadParams(msg)) => {
                    assert!(msg.contains(needle), "`{msg}` missing `{needle}`")
                }
                other => panic!("expected BadParams, got {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_non_dna_input_instead_of_panicking() {
        let blast = BlastN::default();
        let good = vec![b'A'; 20];
        let mut bad = good.clone();
        bad[7] = b'N';
        let err = blast.search(&bad, &good).unwrap_err();
        assert_eq!(
            err,
            BlastError::InvalidBase {
                which: "query",
                position: 7,
                byte: b'N'
            }
        );
        let err = blast.search(&good, &bad).unwrap_err();
        assert!(matches!(
            err,
            BlastError::InvalidBase {
                which: "subject",
                ..
            }
        ));
        // And the error formats usefully.
        assert!(err.to_string().contains("subject"));
    }
}
