//! DUST-style low-complexity filtering.
//!
//! Real BlastN masks low-complexity query regions (homopolymer runs,
//! short tandem repeats) before seeding, because they generate floods of
//! biologically meaningless word hits. This is a compact variant of the
//! classic DUST score: within a sliding window, count each triplet's
//! occurrences `c` and score `Σ c(c−1)/2` normalized by the window's
//! triplet count; windows above the threshold are masked.

/// Parameters of the low-complexity filter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DustParams {
    /// Sliding window length (DUST default: 64).
    pub window: usize,
    /// Score threshold above which a window is masked (DUST default
    /// level: 2.0 in this normalization).
    pub threshold: f64,
}

impl Default for DustParams {
    fn default() -> Self {
        Self {
            window: 64,
            threshold: 2.0,
        }
    }
}

#[inline]
fn triplet_code(w: &[u8]) -> usize {
    let code = |b: u8| -> usize {
        match b {
            b'A' => 0,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            other => panic!("not a DNA base: 0x{other:02x}"),
        }
    };
    code(w[0]) * 16 + code(w[1]) * 4 + code(w[2])
}

/// DUST score of one window: `Σ c_t(c_t−1)/2 / (k−1)` over triplet counts
/// `c_t`, where `k` is the number of triplets in the window. A random
/// window scores ≈ 0.5; a homopolymer scores ≈ (k−1)/2.
pub fn dust_score(window: &[u8]) -> f64 {
    if window.len() < 4 {
        return 0.0;
    }
    let mut counts = [0u32; 64];
    let k = window.len() - 2;
    for w in window.windows(3) {
        counts[triplet_code(w)] += 1;
    }
    let sum: u64 = counts
        .iter()
        .map(|&c| (c as u64 * c.saturating_sub(1) as u64) / 2)
        .sum();
    sum as f64 / (k as f64 - 1.0).max(1.0)
}

/// Returns a mask (`true` = masked / low complexity) over `seq`.
pub fn dust_mask(seq: &[u8], params: &DustParams) -> Vec<bool> {
    let mut mask = vec![false; seq.len()];
    if seq.len() < 4 {
        return mask;
    }
    let w = params.window.max(8).min(seq.len());
    let mut start = 0;
    while start < seq.len() {
        let end = (start + w).min(seq.len());
        if dust_score(&seq[start..end]) > params.threshold {
            mask[start..end].iter_mut().for_each(|m| *m = true);
        }
        // Half-window stride so boundary repeats are not missed.
        start += w / 2;
    }
    mask
}

/// Fraction of positions masked (diagnostic).
pub fn masked_fraction(mask: &[bool]) -> f64 {
    if mask.is_empty() {
        return 0.0;
    }
    mask.iter().filter(|&&m| m).count() as f64 / mask.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homopolymers_score_high() {
        let poly = vec![b'A'; 64];
        assert!(dust_score(&poly) > 10.0);
    }

    #[test]
    fn random_dna_scores_low() {
        let mut x: u64 = 0x1234_5678_9ABC_DEF0;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let seq: Vec<u8> = (0..64).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        assert!(dust_score(&seq) < 2.0, "score {}", dust_score(&seq));
    }

    #[test]
    fn tandem_repeats_score_high() {
        let repeat: Vec<u8> = b"AT".iter().cycle().take(64).copied().collect();
        assert!(dust_score(&repeat) > 5.0);
    }

    #[test]
    fn mask_covers_the_low_complexity_stretch() {
        let mut x: u64 = 99;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut seq: Vec<u8> = (0..300).map(|_| b"ACGT"[(next() % 4) as usize]).collect();
        for b in seq[100..180].iter_mut() {
            *b = b'A';
        }
        let mask = dust_mask(&seq, &DustParams::default());
        let masked_in_run = mask[110..170].iter().filter(|&&m| m).count();
        assert!(masked_in_run > 40, "run should be masked: {masked_in_run}");
        let masked_outside = mask[..64].iter().filter(|&&m| m).count();
        assert_eq!(masked_outside, 0, "random prefix must stay unmasked");
    }

    #[test]
    fn tiny_inputs_do_not_panic() {
        assert_eq!(dust_mask(b"ACG", &DustParams::default()), vec![false; 3]);
        assert_eq!(dust_score(b"AC"), 0.0);
    }
}
