//! Karlin–Altschul statistics: bit scores and E-values for HSPs.
//!
//! Real BlastN ranks hits by *E-value* — the expected number of HSPs of
//! at least the observed score in a random database of the same size —
//! computed from the Karlin–Altschul parameters `λ` (the unique positive
//! solution of `Σ pᵢpⱼ·exp(λ·s(i,j)) = 1`) and `K`. For match/mismatch
//! scoring over uniform DNA the equation reduces to
//! `0.25·e^{λm} + 0.75·e^{λx} = 1`; with the classic +1/−1 scheme the
//! closed form is `λ = ln 3`. `K` is taken from the standard ungapped
//! table for DNA (≈ 0.711 for +1/−1); gapped statistics are approximated
//! by the ungapped parameters, as early BLAST versions did.

use genomedsm_core::Scoring;

/// Karlin–Altschul parameters for a match/mismatch scheme over uniform
/// base frequencies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarlinAltschul {
    /// The scale parameter λ.
    pub lambda: f64,
    /// The search-space constant K.
    pub k: f64,
}

impl KarlinAltschul {
    /// Solves `0.25·e^{λ·match} + 0.75·e^{λ·mismatch} = 1` for `λ > 0`
    /// by bisection (the left side is convex with value 1 at λ = 0 and
    /// negative derivative there iff the expected score is negative,
    /// which [`Scoring::new`] guarantees via its sign checks).
    pub fn for_scoring(scoring: &Scoring) -> Self {
        let m = scoring.matches as f64;
        let x = scoring.mismatch as f64;
        let expected = 0.25 * m + 0.75 * x;
        assert!(
            expected < 0.0,
            "Karlin-Altschul statistics need a negative expected score"
        );
        let f = |lambda: f64| 0.25 * (lambda * m).exp() + 0.75 * (lambda * x).exp() - 1.0;
        let mut lo = 1e-9;
        let mut hi = 1.0;
        while f(hi) < 0.0 {
            hi *= 2.0;
            assert!(hi < 1e6, "lambda search diverged");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self {
            lambda: 0.5 * (lo + hi),
            // The ungapped-DNA K for common match/mismatch ratios sits
            // near 0.7; exact evaluation needs the full Karlin sum, which
            // ranking does not require.
            k: 0.711,
        }
    }

    /// Bit score: `(λ·S − ln K) / ln 2`.
    pub fn bit_score(&self, raw_score: i32) -> f64 {
        (self.lambda * raw_score as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value for a raw score against a search space of `m × n` (query
    /// length × subject length): `K·m·n·exp(−λS)`.
    pub fn evalue(&self, raw_score: i32, query_len: usize, subject_len: usize) -> f64 {
        self.k * query_len as f64 * subject_len as f64 * (-self.lambda * raw_score as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus1_minus1_lambda_is_ln3() {
        let ka = KarlinAltschul::for_scoring(&Scoring::paper());
        assert!(
            (ka.lambda - 3.0f64.ln()).abs() < 1e-9,
            "lambda {} != ln 3",
            ka.lambda
        );
    }

    #[test]
    fn evalue_decreases_with_score() {
        let ka = KarlinAltschul::for_scoring(&Scoring::paper());
        let e20 = ka.evalue(20, 50_000, 50_000);
        let e40 = ka.evalue(40, 50_000, 50_000);
        assert!(e40 < e20 / 1000.0);
    }

    #[test]
    fn evalue_scales_with_search_space() {
        let ka = KarlinAltschul::for_scoring(&Scoring::paper());
        let small = ka.evalue(30, 1_000, 1_000);
        let big = ka.evalue(30, 100_000, 100_000);
        assert!((big / small - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn bit_scores_are_monotone() {
        let ka = KarlinAltschul::for_scoring(&Scoring::paper());
        assert!(ka.bit_score(50) > ka.bit_score(20));
        // +1/-1: each raw point is ~1.58 bits (ln3/ln2).
        let per_point = ka.bit_score(51) - ka.bit_score(50);
        assert!((per_point - 3.0f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn stronger_mismatch_penalty_raises_lambda() {
        let strict = KarlinAltschul::for_scoring(&Scoring::new(1, -3, -2));
        let lax = KarlinAltschul::for_scoring(&Scoring::paper());
        assert!(strict.lambda > lax.lambda);
    }

    #[test]
    #[should_panic(expected = "negative expected score")]
    fn rejects_positive_expectation() {
        // match +3 / mismatch -0.??: with integers, +3/-1 gives
        // 0.25*3 - 0.75 = 0 -> not negative.
        let _ = KarlinAltschul::for_scoring(&Scoring::new(3, -1, -2));
    }
}
