//! 2-bit k-mer encoding and the word-hit index.

use std::collections::HashMap;

/// Encodes a DNA base as 2 bits (A=0, C=1, G=2, T=3).
#[inline]
fn code(b: u8) -> u64 {
    match b {
        b'A' => 0,
        b'C' => 1,
        b'G' => 2,
        b'T' => 3,
        other => panic!("not a DNA base: 0x{other:02x}"),
    }
}

/// Iterates `(position, packed_kmer)` over every `k`-mer of `seq` using a
/// rolling 2-bit encoding. `k` must be at most 31.
pub fn kmers(seq: &[u8], k: usize) -> impl Iterator<Item = (usize, u64)> + '_ {
    assert!((1..=31).contains(&k), "k must be in 1..=31");
    let mask: u64 = (1 << (2 * k)) - 1;
    let mut acc: u64 = 0;
    seq.iter().enumerate().filter_map(move |(i, &b)| {
        acc = ((acc << 2) | code(b)) & mask;
        (i + 1 >= k).then(|| (i + 1 - k, acc))
    })
}

/// Hash index from packed k-mer to the positions where it occurs.
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    map: HashMap<u64, Vec<u32>>,
}

impl KmerIndex {
    /// Indexes every `k`-mer of `seq`.
    pub fn build(seq: &[u8], k: usize) -> Self {
        let mut map: HashMap<u64, Vec<u32>> = HashMap::new();
        for (pos, word) in kmers(seq, k) {
            map.entry(word).or_default().push(pos as u32);
        }
        Self { k, map }
    }

    /// The word size this index was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Positions of `word` in the indexed sequence.
    pub fn lookup(&self, word: u64) -> &[u32] {
        self.map.get(&word).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct words present.
    pub fn distinct_words(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmers_cover_sequence() {
        let got: Vec<(usize, u64)> = kmers(b"ACGT", 2).collect();
        // AC=0b0001, CG=0b0110, GT=0b1011
        assert_eq!(got, vec![(0, 0b0001), (1, 0b0110), (2, 0b1011)]);
    }

    #[test]
    fn kmers_shorter_than_k_is_empty() {
        assert_eq!(kmers(b"ACG", 4).count(), 0);
    }

    #[test]
    fn index_finds_repeats() {
        let idx = KmerIndex::build(b"ACGTACGT", 4);
        let acgt = kmers(b"ACGT", 4).next().unwrap().1;
        assert_eq!(idx.lookup(acgt), &[0, 4]);
    }

    #[test]
    fn lookup_missing_word_is_empty() {
        let idx = KmerIndex::build(b"AAAA", 3);
        let ccc = kmers(b"CCC", 3).next().unwrap().1;
        assert!(idx.lookup(ccc).is_empty());
    }

    #[test]
    fn distinct_word_count() {
        let idx = KmerIndex::build(b"AAAAAA", 3);
        assert_eq!(idx.distinct_words(), 1);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn k_bounds_enforced() {
        let _ = kmers(b"ACGT", 0).count();
    }
}
