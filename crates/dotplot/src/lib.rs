//! Dot-plot visualization of similar regions (the paper's Fig. 14 tool).
//!
//! §4.4: "We also developed a tool to visualize the alignments found by
//! the strategies ... plotted points show the similar regions between the
//! two genomes. We note that the user can zoom into a particular region."
//!
//! Two renderers over the same [`PlotSpec`]:
//!
//! * [`ascii_plot`] — terminal rendering, one character cell per bucket;
//! * [`svg_plot`] — an SVG file with one diagonal segment per region,
//!   suitable for the harness's Fig. 14 artifact.
//!
//! Zooming is a [`PlotSpec::window`]: restrict the plotted coordinate
//! ranges and the same renderers show the detail view.

use genomedsm_core::LocalRegion;

/// What to plot and how.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Length of sequence `s` (x axis).
    pub s_len: usize,
    /// Length of sequence `t` (y axis).
    pub t_len: usize,
    /// Optional zoom window: `(s_range, t_range)` in sequence coordinates.
    pub window: Option<(std::ops::Range<usize>, std::ops::Range<usize>)>,
}

impl PlotSpec {
    /// A full-extent plot for sequences of the given lengths.
    pub fn new(s_len: usize, t_len: usize) -> Self {
        Self {
            s_len,
            t_len,
            window: None,
        }
    }

    /// Restricts the plot to a zoom window.
    pub fn zoom(
        mut self,
        s_range: std::ops::Range<usize>,
        t_range: std::ops::Range<usize>,
    ) -> Self {
        assert!(s_range.end <= self.s_len && t_range.end <= self.t_len);
        assert!(!s_range.is_empty() && !t_range.is_empty());
        self.window = Some((s_range, t_range));
        self
    }

    fn ranges(&self) -> (std::ops::Range<usize>, std::ops::Range<usize>) {
        self.window
            .clone()
            .unwrap_or((0..self.s_len.max(1), 0..self.t_len.max(1)))
    }

    /// Regions clipped to the window (regions entirely outside vanish).
    fn visible<'r>(&self, regions: &'r [LocalRegion]) -> impl Iterator<Item = &'r LocalRegion> {
        let (sr, tr) = self.ranges();
        regions.iter().filter(move |r| {
            r.s_begin < sr.end && sr.start < r.s_end && r.t_begin < tr.end && tr.start < r.t_end
        })
    }
}

/// Renders the regions as an ASCII dot plot of `cols × rows` character
/// cells (x = position in `s`, y = position in `t`, `*` = a similar
/// region crosses the cell).
pub fn ascii_plot(regions: &[LocalRegion], spec: &PlotSpec, cols: usize, rows: usize) -> String {
    let cols = cols.max(2);
    let rows = rows.max(2);
    let (sr, tr) = spec.ranges();
    let sw = (sr.end - sr.start).max(1) as f64;
    let tw = (tr.end - tr.start).max(1) as f64;
    let mut grid = vec![vec![b' '; cols]; rows];
    for r in spec.visible(regions) {
        // Walk the region's diagonal in bucket steps.
        let steps = (r.s_len().max(r.t_len())).max(1);
        for q in 0..=steps {
            let x = r.s_begin as f64 + r.s_len() as f64 * q as f64 / steps as f64;
            let y = r.t_begin as f64 + r.t_len() as f64 * q as f64 / steps as f64;
            if x < sr.start as f64 || y < tr.start as f64 {
                continue;
            }
            let cx = ((x - sr.start as f64) / sw * (cols - 1) as f64).round() as usize;
            let cy = ((y - tr.start as f64) / tw * (rows - 1) as f64).round() as usize;
            if cx < cols && cy < rows {
                grid[cy][cx] = b'*';
            }
        }
    }
    let mut out = String::with_capacity((cols + 3) * (rows + 2));
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    for row in &grid {
        out.push('|');
        out.push_str(std::str::from_utf8(row).expect("ASCII"));
        out.push_str("|\n");
    }
    out.push('+');
    out.push_str(&"-".repeat(cols));
    out.push_str("+\n");
    out
}

/// Renders the regions as a standalone SVG document: one line segment per
/// similar region, axes labelled with sequence offsets.
pub fn svg_plot(regions: &[LocalRegion], spec: &PlotSpec, width: u32, height: u32) -> String {
    use std::fmt::Write as _;
    let (sr, tr) = spec.ranges();
    let sw = (sr.end - sr.start).max(1) as f64;
    let tw = (tr.end - tr.start).max(1) as f64;
    let margin = 40.0;
    let pw = width as f64 - 2.0 * margin;
    let ph = height as f64 - 2.0 * margin;
    let sx = |v: usize| margin + (v.saturating_sub(sr.start)) as f64 / sw * pw;
    let sy = |v: usize| margin + (v.saturating_sub(tr.start)) as f64 / tw * ph;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = writeln!(
        svg,
        r#"<rect x="0" y="0" width="{width}" height="{height}" fill="white"/>"#
    );
    let _ = writeln!(
        svg,
        r#"<rect x="{margin}" y="{margin}" width="{pw}" height="{ph}" fill="none" stroke="black"/>"#
    );
    let _ = writeln!(
        svg,
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">s ({}..{})</text>"#,
        width as f64 / 2.0,
        height as f64 - 8.0,
        sr.start,
        sr.end
    );
    let _ = writeln!(
        svg,
        r#"<text x="12" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 12 {})">t ({}..{})</text>"#,
        height as f64 / 2.0,
        height as f64 / 2.0,
        tr.start,
        tr.end
    );
    let mut plotted = 0usize;
    for r in spec.visible(regions) {
        let _ = writeln!(
            svg,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="crimson" stroke-width="1.5"/>"#,
            sx(r.s_begin),
            sy(r.t_begin),
            sx(r.s_end),
            sy(r.t_end)
        );
        plotted += 1;
    }
    let _ = writeln!(
        svg,
        r#"<text x="{margin}" y="24" font-size="12">{plotted} similar regions</text>"#
    );
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(sb: usize, se: usize, tb: usize, te: usize) -> LocalRegion {
        LocalRegion {
            s_begin: sb,
            s_end: se,
            t_begin: tb,
            t_end: te,
            score: 10,
        }
    }

    #[test]
    fn ascii_marks_diagonal() {
        let spec = PlotSpec::new(100, 100);
        let plot = ascii_plot(&[region(0, 100, 0, 100)], &spec, 20, 10);
        assert!(plot.contains('*'));
        // Top-left and bottom-right cells are on the main diagonal.
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 12); // frame + 10 rows
        assert_eq!(&lines[1][1..2], "*");
    }

    #[test]
    fn ascii_empty_regions_is_blank() {
        let spec = PlotSpec::new(50, 50);
        let plot = ascii_plot(&[], &spec, 10, 5);
        assert!(!plot.contains('*'));
    }

    #[test]
    fn zoom_filters_regions() {
        let spec = PlotSpec::new(1000, 1000).zoom(0..100, 0..100);
        let far = region(500, 600, 500, 600);
        let near = region(10, 60, 10, 60);
        let plot = ascii_plot(&[far, near], &spec, 20, 20);
        assert!(plot.contains('*'));
        let svg = svg_plot(&[far, near], &spec, 400, 400);
        assert!(svg.contains("1 similar regions"));
    }

    #[test]
    fn svg_is_well_formed_enough() {
        let spec = PlotSpec::new(200, 300);
        let svg = svg_plot(&[region(0, 50, 100, 150)], &spec, 640, 480);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<line").count(), 1);
        assert!(svg.contains("similar regions"));
    }

    #[test]
    fn degenerate_lengths_do_not_panic() {
        let spec = PlotSpec::new(0, 0);
        let _ = ascii_plot(&[], &spec, 5, 5);
        let _ = svg_plot(&[], &spec, 100, 100);
    }

    #[test]
    #[should_panic]
    fn zoom_out_of_bounds_rejected() {
        let _ = PlotSpec::new(10, 10).zoom(0..20, 0..5);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn region(sb: usize, se: usize, tb: usize, te: usize) -> LocalRegion {
        LocalRegion {
            s_begin: sb,
            s_end: se,
            t_begin: tb,
            t_end: te,
            score: 1,
        }
    }

    #[test]
    fn anti_diagonal_regions_render() {
        // A region running "backwards" in t still renders (coordinates are
        // begin/end boxes, plotted as a segment).
        let spec = PlotSpec::new(100, 100);
        let plot = ascii_plot(&[region(10, 90, 10, 90)], &spec, 30, 30);
        // Marks near both corners of the segment.
        let lines: Vec<&str> = plot.lines().collect();
        let top_marked = lines[1..8].iter().any(|l| l.contains('*'));
        let bottom_marked = lines[22..29].iter().any(|l| l.contains('*'));
        assert!(top_marked && bottom_marked);
    }

    #[test]
    fn many_regions_all_plotted_in_svg() {
        let spec = PlotSpec::new(1000, 1000);
        let regions: Vec<LocalRegion> = (0..25)
            .map(|k| region(k * 40, k * 40 + 30, k * 40, k * 40 + 30))
            .collect();
        let svg = svg_plot(&regions, &spec, 500, 500);
        assert_eq!(svg.matches("<line").count(), 25);
        assert!(svg.contains("25 similar regions"));
    }

    #[test]
    fn zoom_window_changes_axis_labels() {
        let spec = PlotSpec::new(1000, 1000).zoom(100..200, 300..400);
        let svg = svg_plot(&[], &spec, 400, 400);
        assert!(svg.contains("s (100..200)"));
        assert!(svg.contains("t (300..400)"));
    }

    #[test]
    fn ascii_plot_size_clamped() {
        // Degenerate cols/rows are clamped to the 2-cell minimum.
        let spec = PlotSpec::new(10, 10);
        let plot = ascii_plot(&[region(0, 10, 0, 10)], &spec, 0, 0);
        assert!(plot.lines().count() >= 4);
    }

    #[test]
    fn region_touching_window_edge_is_visible() {
        let spec = PlotSpec::new(100, 100).zoom(0..50, 0..50);
        // Region starts exactly at the window's right edge: excluded
        // (half-open window semantics).
        let outside = region(50, 80, 50, 80);
        let svg = svg_plot(&[outside], &spec, 300, 300);
        assert_eq!(svg.matches("<line").count(), 0);
        // Region overlapping one cell inside: included.
        let inside = region(49, 80, 49, 80);
        let svg = svg_plot(&[inside], &spec, 300, 300);
        assert_eq!(svg.matches("<line").count(), 1);
    }
}
