//! Property tests: lane-packed batch scoring must reproduce the scalar
//! single-pair oracle (`sw_score_linear`) exactly, per query — best
//! score, best end position (including the row-major-first tie-break),
//! and threshold-hit count — on random query sets and on adversarial
//! shapes: empty queries, one-character queries, queries too long for
//! the i16 envelope (which must spill to the scalar path), and ragged
//! mixes of all of the above sharing one pack.

use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::Scoring;
use genomedsm_kernels::{fits_i16_query, score_batch, KernelChoice};
use proptest::prelude::*;

const SC: Scoring = Scoring::paper();
const CHOICES: [KernelChoice; 3] = [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto];

fn dna(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..max,
    )
}

/// Query sets straddle the 8- and 16-lane pack widths (so chunking and
/// padding lanes both get exercised).
fn query_set() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(dna(90), 0..40)
}

/// Degrades a sampled query set in place: roughly one lane in six goes
/// empty and one in six shrinks to a single character, driven by `shape`
/// so the mix itself is part of the sampled input.
fn degrade(queries: &mut [Vec<u8>], mut shape: u64) {
    for q in queries.iter_mut() {
        match shape % 6 {
            0 => q.clear(),
            1 => q.truncate(1),
            _ => {}
        }
        shape /= 6;
    }
}

fn check(choice: KernelChoice, queries: &[Vec<u8>], t: &[u8], scoring: &Scoring, threshold: i32) {
    let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    let got = score_batch(choice, &refs, t, scoring, threshold);
    assert_eq!(got.len(), queries.len());
    for (q, (query, result)) in queries.iter().zip(&got).enumerate() {
        let oracle = sw_score_linear(query, t, scoring, threshold);
        assert_eq!(
            *result,
            oracle,
            "{choice} lane diverged on query {q} (|q|={} |t|={} thr={threshold})",
            query.len(),
            t.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_query_sets_match_oracle(mut queries in query_set(), t in dna(150),
                                      shape in 0u64..u64::MAX, thr in 0i32..30) {
        degrade(&mut queries, shape);
        for choice in CHOICES {
            check(choice, &queries, &t, &SC, thr);
        }
    }

    #[test]
    fn alternative_scorings_match(mut queries in query_set(), t in dna(120),
                                  shape in 0u64..u64::MAX,
                                  ma in 1i32..6, mi in -6i32..0, gap in -6i32..-1) {
        degrade(&mut queries, shape);
        let scoring = Scoring { matches: ma, mismatch: mi, gap };
        for choice in CHOICES {
            check(choice, &queries, &t, &scoring, 2);
        }
    }

    #[test]
    fn oversized_queries_spill_to_scalar_exactly(t in dna(100), n in 1usize..20) {
        // `matches = 20_000` pushes even a 2-base query past the i16
        // envelope: every lane must spill, and the spill must be exact.
        let scoring = Scoring { matches: 20_000, mismatch: -20_000, gap: -20_000 };
        let queries: Vec<Vec<u8>> = (0..n).map(|i| vec![b"ACGT"[i % 4]; 2 + i]).collect();
        prop_assert!(queries.iter().all(|q| !fits_i16_query(q.len(), &scoring)));
        for choice in CHOICES {
            check(choice, &queries, &t, &scoring, 1);
        }
    }
}

#[test]
fn ragged_mix_with_oversized_and_degenerate_lanes() {
    // One pack request holding everything at once: empties, single
    // characters, ordinary queries, and a query too long for the i16
    // envelope (40k bases of 'A' at +1 match exceeds the 32k ceiling).
    let long = vec![b'A'; 40_000];
    let queries: Vec<Vec<u8>> = vec![
        Vec::new(),
        b"A".to_vec(),
        long,
        b"GATTACA".to_vec(),
        vec![b'C'; 77],
        Vec::new(),
        b"ACGTACGTACGTACGTACGT".to_vec(),
    ];
    let t: Vec<u8> = (0..300).map(|i| b"ACGT"[(i * 7 + 3) % 4]).collect();
    for choice in CHOICES {
        for thr in [0, 1, 5, i32::MAX] {
            check(choice, &queries, &t, &SC, thr);
        }
    }
}

#[test]
fn tie_break_prefers_row_major_first_in_every_lane() {
    // Two equally scoring perfect matches per lane; each lane must report
    // the end with the smaller (row, column), exactly like the oracle.
    let queries: Vec<Vec<u8>> = vec![
        b"GATTACA".to_vec(),
        b"TTACAGA".to_vec(),
        b"GATTACAGATTACA".to_vec(),
    ];
    let t = b"GATTACATTGATTACATTGATTACA".to_vec();
    for choice in CHOICES {
        check(choice, &queries, &t, &SC, 1);
    }
}

#[test]
fn empty_target_and_empty_query_list() {
    for choice in CHOICES {
        assert!(score_batch(choice, &[], b"ACGT", &SC, 0).is_empty());
        let queries: Vec<Vec<u8>> = vec![b"ACGT".to_vec(), Vec::new()];
        check(choice, &queries, b"", &SC, 0);
    }
}
