//! Property tests: every striped engine must reproduce the scalar oracle
//! (`sw_score_linear`) exactly — best score, best end position (including
//! the row-major-first tie-break), and threshold-hit count — on random
//! DNA and on adversarial shapes: saturation-approaching runs, empty and
//! one-character sequences, and query lengths that do not divide the
//! stripe count.

use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::Scoring;
use genomedsm_kernels::{fits_i16, Isa, LinearSwResult, ScoreKernel, StripedKernel};
use proptest::prelude::*;

const SC: Scoring = Scoring::paper();

fn dna() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(
        proptest::sample::select(vec![b'A', b'C', b'G', b'T']),
        0..180,
    )
}

fn engines() -> Vec<StripedKernel> {
    Isa::ALL
        .into_iter()
        .filter(|isa| isa.available())
        .filter_map(StripedKernel::new)
        .collect()
}

fn check(kernel: &StripedKernel, s: &[u8], t: &[u8], scoring: &Scoring, threshold: i32) {
    let oracle = sw_score_linear(s, t, scoring, threshold);
    let got = kernel.score(s, t, scoring, threshold);
    assert_eq!(
        got,
        oracle,
        "{} diverged on |s|={} |t|={} thr={threshold}",
        kernel.name(),
        s.len(),
        t.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_dna_matches_oracle(s in dna(), t in dna(), thr in 0i32..40) {
        for kernel in engines() {
            check(&kernel, &s, &t, &SC, thr);
        }
    }

    #[test]
    fn lengths_off_stripe_boundaries(extra in 0usize..33, t in dna()) {
        // Query lengths straddling every residue class of the 8- and
        // 16-lane stripe counts, so padding lanes and the final partial
        // stripe are all exercised.
        let s: Vec<u8> = b"ACGTACGTACGTACGTACGTACGTACGTACGTA"[..extra].to_vec();
        for kernel in engines() {
            check(&kernel, &s, &t, &SC, 5);
        }
    }

    #[test]
    fn alternative_scorings_match(s in dna(), t in dna(), ma in 1i32..6, mi in -6i32..0, gap in -6i32..-1) {
        let scoring = Scoring { matches: ma, mismatch: mi, gap };
        prop_assume!(fits_i16(s.len(), t.len(), &scoring));
        for kernel in engines() {
            check(&kernel, &s, &t, &scoring, 3);
        }
    }
}

proptest! {
    // Saturation cases run long perfect matches; fewer, bigger cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn near_saturation_runs_match_oracle(len in 1000usize..1600) {
        // A perfect match of `len` bases at `matches = 20` drives H to
        // 20 * len <= 32_000: right up against the i16 guard ceiling,
        // where a saturating-add bug would clamp scores early.
        let scoring = Scoring { matches: 20, mismatch: -19, gap: -21 };
        let s: Vec<u8> = (0..len).map(|i| b"ACGT"[i % 4]).collect();
        prop_assume!(fits_i16(len, len, &scoring));
        for kernel in engines() {
            check(&kernel, &s, &s, &scoring, 10_000);
        }
    }
}

#[test]
fn empty_and_single_char_sequences() {
    let cases: [(&[u8], &[u8]); 6] = [
        (b"", b""),
        (b"", b"ACGT"),
        (b"ACGT", b""),
        (b"A", b"A"),
        (b"A", b"C"),
        (b"G", b"TTTTGTTTT"),
    ];
    for kernel in engines() {
        for (s, t) in cases {
            for thr in [0, 1, 2] {
                let oracle = sw_score_linear(s, t, &SC, thr);
                assert_eq!(kernel.score(s, t, &SC, thr), oracle, "{}", kernel.name());
            }
        }
    }
}

#[test]
fn oversized_problems_fall_back_to_scalar_exactly() {
    // A scoring scheme whose ceiling check fails even for tiny inputs:
    // the kernel must silently hand off to the scalar oracle, not clamp.
    let scoring = Scoring {
        matches: 20_000,
        mismatch: -20_000,
        gap: -20_000,
    };
    assert!(!fits_i16(4, 4, &scoring));
    for kernel in engines() {
        let got = kernel.score(b"ACGT", b"ACGT", &scoring, 1);
        let oracle = sw_score_linear(b"ACGT", b"ACGT", &scoring, 1);
        assert_eq!(got, oracle, "{}", kernel.name());
    }
}

#[test]
fn tie_break_prefers_row_major_first() {
    // Two equally scoring perfect matches; the oracle reports the one
    // whose end has the smaller (row, column) in row-major order.
    let s = b"GATTACA";
    let t = b"GATTACAXXGATTACA";
    for kernel in engines() {
        let got: LinearSwResult = kernel.score(s, t, &SC, 1);
        let oracle = sw_score_linear(s, t, &SC, 1);
        assert_eq!(got, oracle, "{}", kernel.name());
        assert_eq!(got.best_end, (7, 7), "first occurrence must win");
    }
}
