//! Property suite: every affine kernel path (per-pair `score_affine` on
//! each `KernelChoice`, plus the lane-packed `score_batch_affine`) must
//! reproduce the scalar Gotoh oracle (`sw_score_profile`) exactly — best
//! score, best end position (including the row-major-first tie-break),
//! and threshold-hit count — on random residue sequences and adversarial
//! shapes: empty sequences, one-character sequences, ragged packs, and
//! problems past the i16 saturation boundary (which must spill to the
//! scalar path and stay exact).
//!
//! Matrices covered: BLOSUM62, PAM250, and random symmetric custom
//! matrices with random (valid) affine penalties.

use genomedsm_core::submat::{MatrixScoring, SubstMatrix, AA_ALPHABET, AA_N};
use genomedsm_core::sw_score_profile;
use genomedsm_kernels::{
    available_kernels, fits_i16_affine, fits_i16_affine_query, kernel_for, score_batch_affine,
    KernelChoice,
};
use proptest::prelude::*;

const CHOICES: [KernelChoice; 3] = [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto];

fn residues(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(AA_ALPHABET.to_vec()), 0..max)
}

fn query_set() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(residues(70), 0..36)
}

/// A random symmetric matrix with a positive diagonal, plus random valid
/// affine penalties (`gap_open <= gap_extend < 0`), all derived from one
/// sampled seed so failures replay.
fn random_scheme(seed: u64) -> MatrixScoring {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as i64
    };
    let mut scores = [[0i16; AA_N]; AA_N];
    #[allow(clippy::needless_range_loop)] // symmetric fill needs both indices
    for a in 0..AA_N {
        for b in a..AA_N {
            let v = if a == b {
                1 + (next() % 10) as i16 // diagonal in 1..=10
            } else {
                -6 + (next() % 13) as i16 // off-diagonal in -6..=6
            };
            scores[a][b] = v;
            scores[b][a] = v;
        }
    }
    let ge = -(1 + (next() % 4) as i32); // extend in -4..=-1
    let go = ge - (next() % 12) as i32; // open <= extend
    MatrixScoring::new(SubstMatrix::from_scores(scores), go, ge)
}

/// One pair through every runnable kernel object and choice.
fn check_pair(s: &[u8], t: &[u8], ms: &MatrixScoring, threshold: i32) {
    let want = sw_score_profile(s, t, ms, threshold);
    for k in available_kernels() {
        assert_eq!(
            k.score_affine(s, t, ms, threshold),
            want,
            "kernel {} (|s|={} |t|={} thr={threshold})",
            k.name(),
            s.len(),
            t.len()
        );
    }
    for choice in CHOICES {
        assert_eq!(
            kernel_for(choice).score_affine(s, t, ms, threshold),
            want,
            "choice {choice}"
        );
    }
}

/// One query set through the lane-packed batch path for every choice.
fn check_batch(queries: &[Vec<u8>], t: &[u8], ms: &MatrixScoring, threshold: i32) {
    let refs: Vec<&[u8]> = queries.iter().map(Vec::as_slice).collect();
    for choice in CHOICES {
        let got = score_batch_affine(choice, &refs, t, ms, threshold);
        assert_eq!(got.len(), queries.len());
        for (q, (query, result)) in queries.iter().zip(&got).enumerate() {
            let oracle = sw_score_profile(query, t, ms, threshold);
            assert_eq!(
                *result,
                oracle,
                "{choice} lane diverged on query {q} (|q|={} |t|={} thr={threshold})",
                query.len(),
                t.len()
            );
        }
    }
}

/// Degrades a sampled query set in place (one lane in six goes empty, one
/// in six shrinks to a single residue), driven by the sampled `shape`.
fn degrade(queries: &mut [Vec<u8>], mut shape: u64) {
    for q in queries.iter_mut() {
        match shape % 6 {
            0 => q.clear(),
            1 => q.truncate(1),
            _ => {}
        }
        shape /= 6;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blosum62_pairs_match_oracle(s in residues(120), t in residues(120), thr in 0i32..40) {
        check_pair(&s, &t, &MatrixScoring::blosum62(), thr);
    }

    #[test]
    fn pam250_pairs_match_oracle(s in residues(100), t in residues(100), thr in 0i32..30) {
        let ms = MatrixScoring::new(SubstMatrix::pam250(), -10, -2);
        check_pair(&s, &t, &ms, thr);
    }

    #[test]
    fn random_matrix_pairs_match_oracle(s in residues(90), t in residues(90),
                                        seed in 0u64..u64::MAX, thr in 0i32..20) {
        check_pair(&s, &t, &random_scheme(seed), thr);
    }

    #[test]
    fn ragged_packs_match_oracle(mut queries in query_set(), t in residues(110),
                                 shape in 0u64..u64::MAX, thr in 0i32..20) {
        degrade(&mut queries, shape);
        check_batch(&queries, &t, &MatrixScoring::blosum62(), thr);
        let pam = MatrixScoring::new(SubstMatrix::pam250(), -11, -1);
        check_batch(&queries, &t, &pam, thr);
    }

    #[test]
    fn random_matrix_packs_match_oracle(mut queries in query_set(), t in residues(90),
                                        shape in 0u64..u64::MAX, seed in 0u64..u64::MAX) {
        degrade(&mut queries, shape);
        check_batch(&queries, &t, &random_scheme(seed), 3);
    }
}

#[test]
fn saturation_boundary_spills_to_scalar_exactly() {
    // BLOSUM62's best entry is 11 (W/W), so queries longer than
    // 32_000 / 11 = 2909 residues leave the i16 envelope. A W-run of
    // 3000 against a W-run target really would exceed i16::MAX (score
    // 33_000), so the kernel must detect it and fall back — and a query
    // one residue under the boundary must stay admitted.
    let ms = MatrixScoring::blosum62();
    let boundary = 32_000 / 11; // 2909: largest admitted query length
    assert!(fits_i16_affine_query(boundary, &ms));
    assert!(!fits_i16_affine_query(boundary + 1, &ms));

    let s = vec![b'W'; 3000];
    let t = vec![b'W'; 3000];
    assert!(!fits_i16_affine(s.len(), t.len(), &ms));
    let want = sw_score_profile(&s, &t, &ms, 1);
    assert_eq!(want.best_score, 33_000, "sanity: past i16::MAX");
    for k in available_kernels() {
        assert_eq!(k.score_affine(&s, &t, &ms, 1), want, "kernel {}", k.name());
    }
    // The packed path must spill the same way.
    let queries: Vec<Vec<u8>> = vec![s.clone(), vec![b'W'; 10], Vec::new()];
    check_batch(&queries, &t, &ms, 1);
}

#[test]
fn admitted_problem_just_under_the_ceiling_uses_i16_exactly() {
    // min(m, n) * 11 = 31_999 < 32_000: admitted, and every engine must
    // produce the exact (large) score without saturating.
    let ms = MatrixScoring::blosum62();
    let m = 2909;
    let s = vec![b'W'; m];
    let t = vec![b'W'; 4000];
    assert!(fits_i16_affine(s.len(), t.len(), &ms));
    check_pair(&s, &t, &ms, 100);
}

#[test]
fn degenerate_shapes_on_every_matrix() {
    let schemes = [
        MatrixScoring::blosum62(),
        MatrixScoring::new(SubstMatrix::pam250(), -8, -3),
        random_scheme(0xfeed_beef),
    ];
    let shapes: [(&[u8], &[u8]); 6] = [
        (b"", b""),
        (b"", b"WCEW"),
        (b"WCEW", b""),
        (b"W", b"W"),
        (b"W", b"C"),
        (b"*", b"*"),
    ];
    for ms in &schemes {
        for (s, t) in shapes {
            check_pair(s, t, ms, 1);
        }
    }
}

#[test]
fn invalid_schemes_are_rejected_by_admission() {
    // Positive or zero penalties, open milder than extend, or an
    // all-non-positive matrix must all be routed to scalar.
    let mut flat = [[-1i16; AA_N]; AA_N];
    assert!(!fits_i16_affine_query(
        5,
        &MatrixScoring::new(SubstMatrix::from_scores(flat), -11, -1)
    ));
    flat[0][0] = 2;
    let ok = SubstMatrix::from_scores(flat);
    assert!(fits_i16_affine_query(5, &MatrixScoring::new(ok, -11, -1)));
    assert!(!fits_i16_affine_query(5, &MatrixScoring::new(ok, 0, -1)));
    assert!(!fits_i16_affine_query(5, &MatrixScoring::new(ok, -1, 0)));
    // open (-1) milder than extend (-2): the lazy-F argument breaks, so
    // admission must refuse.
    assert!(!fits_i16_affine_query(5, &MatrixScoring::new(ok, -1, -2)));
    // Equal penalties (the linear degenerate case) are admitted.
    assert!(fits_i16_affine_query(5, &MatrixScoring::new(ok, -2, -2)));
    // Rejection still yields exact results through the public kernels.
    let ms = MatrixScoring::new(ok, -1, -2);
    check_pair(b"AAAA", b"AAAA", &ms, 1);
}
