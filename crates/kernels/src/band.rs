//! Streaming striped scorer for the banded pre-process wavefront.
//!
//! The pre-process strategy (§5) tiles the score matrix into horizontal
//! *bands* of query rows and walks each band left-to-right in column
//! *chunks*, handing the band's bottom row to the band below. That is
//! exactly a striped SW pass over the band's query slice with a non-zero top
//! border, so [`BandScorer`] keeps the striped `H` column and the running
//! per-element max alive across [`advance`](BandScorer::advance) calls and
//! injects the border values the caller computed for the band above.

use crate::engine::{self, BandChunkOut, StripedState};
use crate::profile::StripedProfile;
use crate::scalar::Portable;
use crate::{fits_i16, Isa, KernelChoice};
use genomedsm_core::scoring::Scoring;

/// Incremental striped scorer for one horizontal band of the wavefront.
pub struct BandScorer {
    isa: Isa,
    st: StripedState,
    prof: StripedProfile,
    thr_minus_1: Option<i16>,
    save_every: Option<usize>,
    band_rows: usize,
}

impl BandScorer {
    /// Builds a scorer for the band holding query slice `band_s`, or `None`
    /// when the striped path does not apply: the caller asked for `scalar`,
    /// asked for `auto` on a machine with no SIMD win, or the *full*
    /// problem (`full_dims`, whose border values flow through this band)
    /// does not fit i16 lanes. `None` means "run the scalar loop you
    /// already have" — the scorer never silently approximates.
    ///
    /// `save_every` mirrors the pre-process save interleave: columns whose
    /// absolute index is a multiple of it are de-striped and returned in
    /// full from [`advance`](Self::advance).
    pub fn new(
        choice: KernelChoice,
        band_s: &[u8],
        full_dims: (usize, usize),
        scoring: &Scoring,
        threshold: i32,
        save_every: Option<usize>,
    ) -> Option<Self> {
        let isa = match choice {
            KernelChoice::Scalar => return None,
            KernelChoice::Simd => Isa::best_available(),
            KernelChoice::Auto => {
                let best = Isa::best_available();
                if best == Isa::Portable {
                    // Striped-on-arrays is slower than the plain scalar loop.
                    return None;
                }
                best
            }
        };
        if band_s.is_empty() || !fits_i16(full_dims.0, full_dims.1, scoring) {
            return None;
        }
        let prof = StripedProfile::new(band_s, scoring, isa.lanes());
        let st = StripedState::new(prof.p, prof.lanes, true);
        let thr_minus_1 = if threshold > 0 && threshold <= i32::from(i16::MAX) {
            Some((threshold - 1) as i16)
        } else {
            None
        };
        Some(Self {
            isa,
            st,
            prof,
            thr_minus_1,
            save_every,
            band_rows: band_s.len(),
        })
    }

    /// Which engine this scorer runs on.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Consumes the next column chunk. `top` carries the border row from
    /// the band above for these columns, with `top[0]` the corner value
    /// `H[row0][first_col - 1]` (all zeros for the top band); `first_col`
    /// is the absolute 1-based matrix column of `chunk[0]`.
    ///
    /// Appends one entry per column to `bottom` (the band's last-row value,
    /// i.e. the border for the band below) and to `col_hits` (threshold
    /// hits inside the band), and pushes any saved full columns onto
    /// `saved` as `(absolute_col, values)`.
    pub fn advance(
        &mut self,
        chunk: &[u8],
        top: &[i32],
        first_col: usize,
        bottom: &mut Vec<i32>,
        col_hits: &mut Vec<u64>,
        saved: &mut Vec<(usize, Vec<i32>)>,
    ) {
        assert_eq!(
            top.len(),
            chunk.len() + 1,
            "top border must cover the chunk plus its corner"
        );
        let mut out = BandChunkOut {
            bottom,
            col_hits,
            first_col,
            save_every: self.save_every,
            saved,
        };
        match self.isa {
            // SAFETY: the portable engine has no ISA requirement; state and
            // profile were built together for its lane width.
            Isa::Portable => unsafe {
                engine::band_advance::<Portable>(
                    &mut self.st,
                    &mut self.prof,
                    chunk,
                    top,
                    self.thr_minus_1,
                    &mut out,
                )
            },
            // SAFETY: self.isa is only set to Sse2 after runtime detection
            // (Isa::available), satisfying the target_feature contract.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe {
                crate::x86::band_advance_sse2(
                    &mut self.st,
                    &mut self.prof,
                    chunk,
                    top,
                    self.thr_minus_1,
                    &mut out,
                )
            },
            // SAFETY: as above — Avx2 is only selected when
            // is_x86_feature_detected!("avx2") held at construction.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe {
                crate::x86::band_advance_avx2(
                    &mut self.st,
                    &mut self.prof,
                    chunk,
                    top,
                    self.thr_minus_1,
                    &mut out,
                )
            },
            #[cfg(not(target_arch = "x86_64"))]
            Isa::Sse2 | Isa::Avx2 => unreachable!("x86 ISA selected on a non-x86 target"),
        }
    }

    /// Best local score seen anywhere in this band so far.
    pub fn best_score(&self) -> i32 {
        let mut best = 0i32;
        for q in 0..self.band_rows {
            best = best.max(i32::from(self.st.vmax[self.prof.index_of(q)]));
        }
        best
    }
}
