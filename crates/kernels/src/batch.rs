//! Inter-sequence batch kernel: a **different query per i16 lane**.
//!
//! The striped kernel ([`crate::engine`]) spends all its lanes on one
//! query; profitable for long pairs, wasteful for database search where
//! millions of *small* queries each pay a full kernel launch (profile
//! build, state allocation, lazy-F fixups) per pair. This module packs up
//! to `LANES` distinct queries into one vector register file and scores
//! them against a shared target in a single pass — the inter-sequence
//! parallelism of DSA and SWIPE (see PAPERS.md).
//!
//! The layout is plain row-major: vector `i` holds cell `(i, j)` of every
//! lane's private DP matrix, where row `i` is a query position and `j`
//! walks the shared target. Because the lanes are *independent
//! alignments*, there is no inter-lane dependency at all: the vertical
//! gap chain runs down the rows of one column, which the column loop
//! computes sequentially anyway. No striping, no lazy-F loop — every
//! instruction is useful work.
//!
//! Exactness contract: each lane's result is bit-identical to
//! [`sw_score_linear`] on that (query, target) pair — same best score,
//! same row-major-first end-point tie-break, same threshold hit count.
//! Queries outside the i16 envelope ([`fits_i16_query`]) transparently
//! fall back to the scalar oracle in [`score_batch`].

use crate::engine::Engine;
use crate::profile::NEG_INF;
use crate::{fits_i16_query, Isa, KernelChoice};
use genomedsm_core::linear::{sw_score_linear, LinearSwResult};
use genomedsm_core::scoring::Scoring;

/// A batch of up to `lanes` queries packed one-per-lane for a fixed ISA.
///
/// The profile precomputes, for each target symbol `c`, the row-major
/// vector sequence `prof[c][i * lanes + l] = subst(q_l[i], c)` (the
/// padding sentinel (`NEG_INF`) where lane `l` is shorter than row `i`),
/// so the inner loop is one saturating add per row. Rows are built lazily
/// per observed symbol. A profile is built **once per lane group** and
/// reused across every database record it is scored against — that
/// amortization is the batch engine's main launch-overhead win.
pub struct PackedProfile {
    isa: Isa,
    /// Vector width in i16 lanes.
    lanes: usize,
    /// Rows per column: the longest packed query's length.
    rows: usize,
    /// Per-lane query lengths (`lens.len()` = number of packed queries).
    lens: Vec<usize>,
    /// Per-row byte-granularity live-lane mask (2 bits per live lane),
    /// matching the `movemask_epi8` convention of `Engine::gt_bytes`:
    /// lane `l` is live at row `i` iff `i < lens[l]`.
    valid: Vec<u64>,
    /// Lazily built profile rows, one per target symbol.
    sym_rows: Vec<Option<Box<[i16]>>>,
    seqs: Vec<Box<[u8]>>,
    match_score: i16,
    mismatch: i16,
    gap: i16,
}

impl PackedProfile {
    /// Packs `queries` (at most `isa.lanes()` of them) for `isa`.
    ///
    /// Returns `None` when the pack is not exactly representable: the ISA
    /// is unavailable on this CPU, too many queries, or the scoring
    /// scheme / a query length fails [`fits_i16_query`]. Callers that
    /// need a never-fails path use [`score_batch`], which routes
    /// rejected queries to the scalar oracle instead.
    pub fn new(queries: &[&[u8]], scoring: &Scoring, isa: Isa) -> Option<Self> {
        if !isa.available() || queries.len() > isa.lanes() {
            return None;
        }
        if queries.iter().any(|q| !fits_i16_query(q.len(), scoring)) {
            return None;
        }
        let lanes = isa.lanes();
        let lens: Vec<usize> = queries.iter().map(|q| q.len()).collect();
        let rows = lens.iter().copied().max().unwrap_or(0);
        let mut valid = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut mask = 0u64;
            for (l, &len) in lens.iter().enumerate() {
                if i < len {
                    mask |= 0b11 << (2 * l);
                }
            }
            valid.push(mask);
        }
        Some(Self {
            isa,
            lanes,
            rows,
            lens,
            valid,
            sym_rows: vec![None; 256],
            seqs: queries.iter().map(|&q| q.into()).collect(),
            match_score: scoring.matches as i16,
            mismatch: scoring.mismatch as i16,
            gap: (-scoring.gap) as i16,
        })
    }

    /// Number of queries packed into this profile.
    pub fn width(&self) -> usize {
        self.lens.len()
    }

    /// The ISA this profile is laid out for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The profile row for target symbol `c` (`rows * lanes` values).
    fn row(&mut self, c: u8) -> &[i16] {
        let slot = &mut self.sym_rows[c as usize];
        if slot.is_none() {
            let mut row = vec![NEG_INF; self.rows * self.lanes];
            for (l, q) in self.seqs.iter().enumerate() {
                for (i, &qc) in q.iter().enumerate() {
                    row[i * self.lanes + l] = if qc == c {
                        self.match_score
                    } else {
                        self.mismatch
                    };
                }
            }
            *slot = Some(row.into_boxed_slice());
        }
        slot.as_deref().unwrap()
    }
}

/// Mutable per-scan state: two column buffers plus the per-element
/// running-max bookkeeping that reproduces the oracle's tie-break.
/// Shared with the affine packed kernel ([`crate::affine`]), which adds
/// its own `E` buffer alongside.
pub(crate) struct PackedState {
    /// Previous column's `H` (`rows * lanes`, row-major).
    pub(crate) ph: Vec<i16>,
    /// Current column's `H`.
    pub(crate) ch: Vec<i16>,
    /// Running per-element maximum over all columns seen so far.
    pub(crate) vmax: Vec<i16>,
    /// Column (0-based) of the first strict improvement that set each
    /// element's current `vmax`.
    pub(crate) first_j: Vec<u64>,
    /// Per-lane threshold hits.
    pub(crate) hits: Vec<u64>,
}

impl PackedState {
    pub(crate) fn new(rows: usize, lanes: usize) -> Self {
        let n = rows * lanes;
        Self {
            ph: vec![0; n],
            ch: vec![0; n],
            vmax: vec![0; n],
            first_j: vec![0; n],
            hits: vec![0; lanes],
        }
    }

    #[inline(always)]
    pub(crate) fn flip(&mut self) {
        std::mem::swap(&mut self.ph, &mut self.ch);
    }
}

/// Computes one target column into `st.ch` from `st.ph`.
///
/// Per row `i` (lane-wise): `H[i][j] = max(0, H[i-1][j-1] + subst,
/// H[i-1][j] - gap, H[i][j-1] - gap)`. The top border (`i = -1`) is the
/// zero row of a fresh local alignment, so both `diag` and `up` start at
/// zero.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper), and `st` /
/// `prof_row` must be packed for `E::LANES` lanes with at least `rows`
/// rows.
#[inline(always)]
unsafe fn packed_column<E: Engine>(st: &mut PackedState, rows: usize, prof_row: &[i16], gap: i16) {
    let l = E::LANES;
    let vzero = E::splat(0);
    let vgap = E::splat(gap);
    let mut diag = vzero; // H[i-1][j-1]
    let mut up = vzero; // H[i-1][j]
    for i in 0..rows {
        let off = i * l;
        let left = E::load(st.ph.as_ptr().add(off)); // H[i][j-1]
        let mut vh = E::adds(diag, E::load(prof_row.as_ptr().add(off)));
        vh = E::max(vh, E::subs(left, vgap));
        vh = E::max(vh, E::subs(up, vgap));
        vh = E::max(vh, vzero);
        E::store(st.ch.as_mut_ptr().add(off), vh);
        diag = left;
        up = vh;
    }
}

/// Post-column statistics: per-lane threshold hits over live elements
/// and the running per-element max plus the column of its first strict
/// improvement (the data the final reduction needs for the oracle's
/// row-major-first tie-break).
///
/// # Safety
/// Same contract as [`packed_column`]; `valid` must cover every packed
/// row of `st`.
#[inline(always)]
pub(crate) unsafe fn packed_stats<E: Engine>(
    st: &mut PackedState,
    valid: &[u64],
    thr_minus_1: Option<i16>,
    j0: usize,
) {
    let l = E::LANES;
    let vthr = thr_minus_1.map(|x| E::splat(x));
    for (i, &vmask) in valid.iter().enumerate() {
        let off = i * l;
        let vh = E::load(st.ch.as_ptr().add(off));
        if let Some(vt) = vthr {
            let mut bits = E::gt_bytes(vh, vt) & vmask;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize / 2;
                st.hits[lane] += 1;
                bits &= !(0b11u64 << (lane * 2));
            }
        }
        let vm = E::load(st.vmax.as_ptr().add(off));
        let improved = E::gt_bytes(vh, vm) & vmask;
        if improved != 0 {
            E::store(st.vmax.as_mut_ptr().add(off), E::max(vm, vh));
            let mut bits = improved;
            while bits != 0 {
                let lane = bits.trailing_zeros() as usize / 2;
                st.first_j[off + lane] = j0 as u64;
                bits &= !(0b11u64 << (lane * 2));
            }
        }
    }
}

/// Full batch pass: one result per packed query, oracle-exact.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper).
#[inline(always)]
pub(crate) unsafe fn packed_score<E: Engine>(
    prof: &mut PackedProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    debug_assert_eq!(E::LANES, prof.lanes);
    let rows = prof.rows;
    let gap = prof.gap;
    let mut st = PackedState::new(rows, prof.lanes);
    // Hits are only counted for positive thresholds (matching the scalar
    // oracle); a threshold above the i16 range can never be reached by an
    // admitted problem, so it degenerates to "count nothing".
    let thr = if threshold > 0 && threshold <= i32::from(i16::MAX) {
        Some((threshold - 1) as i16)
    } else {
        None
    };
    for (j0, &c) in t.iter().enumerate() {
        let row = prof.row(c);
        packed_column::<E>(&mut st, rows, row, gap);
        packed_stats::<E>(&mut st, &prof.valid, thr, j0);
        st.flip();
    }
    // Final reduction: scanning each lane's live rows in query order with
    // a strict `>` reproduces the oracle's row-major-first tie-break —
    // `first_j` holds each row's first column reaching its max, and the
    // lowest such row wins.
    prof.lens
        .iter()
        .enumerate()
        .map(|(l, &len)| {
            let mut best = LinearSwResult {
                best_score: 0,
                best_end: (0, 0),
                hits: st.hits[l],
            };
            for i in 0..len {
                let idx = i * prof.lanes + l;
                let v = i32::from(st.vmax[idx]);
                if v > best.best_score {
                    best.best_score = v;
                    best.best_end = (i + 1, st.first_j[idx] as usize + 1);
                }
            }
            best
        })
        .collect()
}

/// Scores every query packed in `prof` against `t`, one oracle-exact
/// [`LinearSwResult`] per query in pack order.
///
/// The profile is reusable: scoring mutates only its lazy symbol-row
/// cache, so one profile can scan an entire database of targets.
pub fn score_batch_packed(
    prof: &mut PackedProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    match prof.isa {
        // SAFETY: the portable engine has no ISA requirement.
        Isa::Portable => unsafe { packed_score::<crate::scalar::Portable>(prof, t, threshold) },
        // SAFETY: prof.isa is only Sse2 when runtime detection admitted it.
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => unsafe { crate::x86::packed_sse2(prof, t, threshold) },
        // SAFETY: prof.isa is only Avx2 when runtime detection admitted it.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { crate::x86::packed_avx2(prof, t, threshold) },
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Sse2 | Isa::Avx2 => unreachable!("PackedProfile::new checks Isa::available"),
    }
}

/// Number of queries one kernel invocation carries for `choice` on this
/// host: the i16 lane width for the SIMD paths, 1 for the scalar oracle.
/// Batch planners size their lane groups with this.
pub fn effective_lanes(choice: KernelChoice) -> usize {
    match choice {
        KernelChoice::Scalar => 1,
        KernelChoice::Simd => Isa::best_available().lanes(),
        KernelChoice::Auto => {
            let best = Isa::best_available();
            if best == Isa::Portable {
                1
            } else {
                best.lanes()
            }
        }
    }
}

/// Scores many queries against one shared target, packing a different
/// query into each i16 lane: the batch drop-in for a loop of single-pair
/// `score` calls. Results are in query order and bit-identical to
/// [`sw_score_linear`] per pair.
///
/// Queries are packed [`effective_lanes`]`(choice)` at a time in the
/// given order (pre-sort by length to minimize padding); queries outside
/// the i16 envelope — and every query under `KernelChoice::Scalar` or
/// when no real SIMD is available under `Auto` — run on the scalar
/// oracle instead.
pub fn score_batch(
    choice: KernelChoice,
    queries: &[&[u8]],
    t: &[u8],
    scoring: &Scoring,
    threshold: i32,
) -> Vec<LinearSwResult> {
    let isa = match choice {
        KernelChoice::Scalar => None,
        KernelChoice::Simd => Some(Isa::best_available()),
        KernelChoice::Auto => {
            let best = Isa::best_available();
            (best != Isa::Portable).then_some(best)
        }
    };
    let zero = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: 0,
    };
    let mut out = vec![zero; queries.len()];
    let Some(isa) = isa else {
        for (slot, q) in out.iter_mut().zip(queries) {
            *slot = sw_score_linear(q, t, scoring, threshold);
        }
        return out;
    };
    let (packable, scalar): (Vec<usize>, Vec<usize>) =
        (0..queries.len()).partition(|&i| fits_i16_query(queries[i].len(), scoring));
    for group in packable.chunks(isa.lanes()) {
        let qs: Vec<&[u8]> = group.iter().map(|&i| queries[i]).collect();
        let mut prof =
            PackedProfile::new(&qs, scoring, isa).expect("members passed fits_i16_query");
        for (&i, r) in group
            .iter()
            .zip(score_batch_packed(&mut prof, t, threshold))
        {
            out[i] = r;
        }
    }
    for i in scalar {
        out[i] = sw_score_linear(queries[i], t, scoring, threshold);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    fn oracle_each(queries: &[&[u8]], t: &[u8], thr: i32) -> Vec<LinearSwResult> {
        queries
            .iter()
            .map(|q| sw_score_linear(q, t, &SC, thr))
            .collect()
    }

    #[test]
    fn packed_profile_rejects_overfull_and_oversized() {
        let qs: Vec<&[u8]> = (0..9).map(|_| &b"ACGT"[..]).collect();
        assert!(PackedProfile::new(&qs, &SC, Isa::Portable).is_none());
        let long = vec![b'A'; 40_000];
        assert!(PackedProfile::new(&[&long], &SC, Isa::Portable).is_none());
        assert!(PackedProfile::new(&[b"ACGT"], &SC, Isa::Portable).is_some());
    }

    #[test]
    fn every_isa_matches_the_oracle_on_a_ragged_pack() {
        let queries: Vec<&[u8]> = vec![
            b"TCTCGACGGATTAGTATATATATAGGCATTCA",
            b"",
            b"A",
            b"GATTACA",
            b"ATATGATCGGAATAGCTCTTAGGCATT",
            b"CCCCCCCC",
        ];
        let t = b"ATATGATCGGAATAGCTCTTAGGCATTCAGATTACA";
        for thr in [0, 1, 3, i32::MAX] {
            let want = oracle_each(&queries, t, thr);
            for isa in Isa::ALL {
                if !isa.available() {
                    continue;
                }
                let mut prof = PackedProfile::new(&queries, &SC, isa).unwrap();
                let got = score_batch_packed(&mut prof, t, thr);
                assert_eq!(got, want, "isa {} thr {thr}", isa.name());
            }
        }
    }

    #[test]
    fn profile_reuse_across_targets_stays_exact() {
        let queries: Vec<&[u8]> = vec![b"GACGGATTAG", b"TTTTAGGCAT", b"ACGTACGTACGT"];
        let targets: [&[u8]; 3] = [b"GATCGGAATAGGGACCATTTACCA", b"ACGT", b""];
        let mut prof = PackedProfile::new(&queries, &SC, Isa::Portable).unwrap();
        for t in targets {
            assert_eq!(
                score_batch_packed(&mut prof, t, 2),
                oracle_each(&queries, t, 2)
            );
        }
    }

    #[test]
    fn score_batch_spills_oversized_queries_to_scalar() {
        // 40k identical bases exceed the i16 ceiling with paper scoring;
        // the big query must fall back while its neighbours stay packed.
        let long = vec![b'A'; 40_000];
        let queries: Vec<&[u8]> = vec![b"GATTACA", &long, b"ACGT"];
        let t = vec![b'A'; 1000];
        for choice in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let got = score_batch(choice, &queries, &t, &SC, 1);
            assert_eq!(got, oracle_each(&queries, &t, 1), "choice {choice}");
        }
    }

    #[test]
    fn more_queries_than_lanes_chunks_correctly() {
        let base = b"TCTCGACGGATTAGTATATATATAGGCATTCAGATTACA";
        let queries: Vec<&[u8]> = (0..37).map(|i| &base[i % 8..8 + (i * 3) % 30]).collect();
        let t = b"ATATGATCGGAATAGCTCTTAGGCATTCA";
        for choice in [KernelChoice::Simd, KernelChoice::Auto] {
            assert_eq!(
                score_batch(choice, &queries, t, &SC, 2),
                oracle_each(&queries, t, 2),
                "choice {choice}"
            );
        }
    }

    #[test]
    fn tie_break_matches_oracle_on_repetitive_sequences() {
        // Periodic sequences create many equal-scoring maxima; the batch
        // reduction must pick the same (row-major-first) end point.
        let queries: Vec<&[u8]> = vec![b"ATATATATAT", b"TATATATA", b"ATAT"];
        let t = b"ATATATATATATATAT";
        let mut prof = PackedProfile::new(&queries, &SC, Isa::Portable).unwrap();
        assert_eq!(
            score_batch_packed(&mut prof, t, 1),
            oracle_each(&queries, t, 1)
        );
    }

    #[test]
    fn effective_lanes_is_one_for_scalar() {
        assert_eq!(effective_lanes(KernelChoice::Scalar), 1);
        assert!(effective_lanes(KernelChoice::Simd) >= 8);
    }
}
