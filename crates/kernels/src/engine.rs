//! The engine abstraction and the generic striped Smith–Waterman recurrence.
//!
//! Everything algorithmic lives here, written once against the tiny
//! [`Engine`] vector vocabulary. The ISA backends ([`crate::scalar`],
//! [`crate::x86`]) only implement `Engine` and wrap the generic routines in
//! `#[target_feature]` shells so the compiler can use the wide instructions.
//!
//! # Why the linear-gap recurrence needs no `E` array
//!
//! With a single gap penalty `g` (open == extend), the affine horizontal
//! state collapses: `E[i][j] = H[i][j-1] - g` exactly, so the "left"
//! contribution is read straight from the previous column. Only the vertical
//! chain (`F`) needs Farrar's lazy-loop fixup, because it runs *within* the
//! current column across stripe boundaries.
//!
//! # Exactness
//!
//! The routines here are bit-exact against `sw_score_linear` (score, end
//! point with the same row-major-first tie-break, and threshold hit count)
//! whenever [`crate::fits_i16`] admits the problem; the public wrappers fall
//! back to the scalar oracle otherwise, so saturation can never corrupt a
//! result.

use crate::profile::{StripedProfile, NEG_INF};

/// Minimal SIMD vocabulary the striped recurrence needs.
///
/// All operations are `unsafe fn` because the x86 backends lower to
/// `target_feature` intrinsics; the portable backend implements them safely.
///
/// # Safety
/// Every method shares one contract: the caller must ensure the engine's
/// ISA is enabled in the calling context (via runtime detection plus a
/// `#[target_feature]` wrapper, as the backends do), and `load`/`store`
/// pointers must be valid for `LANES` consecutive `i16` reads/writes.
pub(crate) trait Engine: Copy {
    /// Number of i16 lanes per vector.
    const LANES: usize;
    /// Vector register type.
    type V: Copy;

    /// Broadcast `x` to all lanes.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn splat(x: i16) -> Self::V;
    /// Unaligned load of `LANES` i16 values.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold and `src` must be valid for
    /// `LANES` consecutive `i16` reads.
    unsafe fn load(src: *const i16) -> Self::V;
    /// Unaligned store of `LANES` i16 values.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold and `dst` must be valid for
    /// `LANES` consecutive `i16` writes.
    unsafe fn store(dst: *mut i16, v: Self::V);
    /// Lane-wise saturating add.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise saturating subtract.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise signed max.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V;
    /// `movemask_epi8`-style byte mask of `a > b` (two bits per i16 lane,
    /// lane `l` occupying bits `2l` and `2l+1`). Zero iff no lane is greater.
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn gt_bytes(a: Self::V, b: Self::V) -> u64;
    /// Shift lanes up by one (`lane l` receives `lane l-1`) inserting
    /// `first` into lane 0. This is the stripe-boundary rotation: lane `l`
    /// of stripe 0 (query `l*p`) depends on lane `l-1` of stripe `p-1`
    /// (query `l*p - 1`).
    ///
    /// # Safety
    /// The trait-level ISA contract must hold.
    unsafe fn shift_in(v: Self::V, first: i16) -> Self::V;
}

/// Mutable per-alignment state shared by all engines (plain i16 buffers in
/// striped order; the engine only dictates the lane width they are read
/// with).
pub(crate) struct StripedState {
    /// Stripes per column.
    pub p: usize,
    /// Lane width the buffers are striped for.
    pub lanes: usize,
    /// Previous column's `H` (the "load" buffer).
    pub ph: Vec<i16>,
    /// Current column's `H` (the "store" buffer).
    pub ch: Vec<i16>,
    /// Running per-element maximum over all columns seen so far.
    pub vmax: Vec<i16>,
    /// Column index (0-based) of the first strict improvement that set the
    /// current `vmax` value for each element; tracked only in argmax mode.
    pub first_j: Vec<u64>,
    /// Accumulated threshold hits over live elements.
    pub hits: u64,
    scratch: Vec<i16>,
}

impl StripedState {
    pub fn new(p: usize, lanes: usize, track_argmax: bool) -> Self {
        let n = p * lanes;
        Self {
            p,
            lanes,
            ph: vec![0; n],
            ch: vec![0; n],
            vmax: vec![0; n],
            first_j: if track_argmax { vec![0; n] } else { Vec::new() },
            hits: 0,
            scratch: vec![0; n],
        }
    }

    /// Makes the just-computed column the "previous" one.
    #[inline(always)]
    pub fn flip(&mut self) {
        std::mem::swap(&mut self.ph, &mut self.ch);
    }
}

/// Computes one database column into `st.ch` from `st.ph`.
///
/// `diag0` is the boundary value entering query element 0's diagonal
/// (`H[row0][j-1]`); `f0` is the vertical-gap value entering element 0
/// (`H[row0][j] - gap`). For a plain local alignment both derive from a
/// zero top row; the banded pre-process wavefront injects real border
/// values here.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper), and `st` must
/// have been built for `E::LANES` lanes with `p` stripes.
#[inline(always)]
pub(crate) unsafe fn column<E: Engine>(
    st: &mut StripedState,
    prof_row: &[i16],
    gap: i16,
    diag0: i16,
    f0: i16,
) {
    let p = st.p;
    let l = E::LANES;
    debug_assert_eq!(l, st.lanes);
    debug_assert_eq!(prof_row.len(), p * l);
    let vgap = E::splat(gap);
    let vzero = E::splat(0);
    let mut vf = E::splat(NEG_INF);
    // Diagonal feed for stripe 0: last stripe of the previous column,
    // rotated one lane, with the top-left boundary in lane 0.
    let mut vh = E::shift_in(E::load(st.ph.as_ptr().add((p - 1) * l)), diag0);
    for k in 0..p {
        let off = k * l;
        vh = E::adds(vh, E::load(prof_row.as_ptr().add(off)));
        // Left neighbour: previous column, same element (linear-gap E).
        vh = E::max(vh, E::subs(E::load(st.ph.as_ptr().add(off)), vgap));
        vh = E::max(vh, vf);
        vh = E::max(vh, vzero);
        E::store(st.ch.as_mut_ptr().add(off), vh);
        vf = E::subs(E::max(vf, vh), vgap);
        vh = E::load(st.ph.as_ptr().add(off));
    }
    // Farrar's lazy F: propagate vertical chains across the stripe-0
    // boundary until no lane can still improve. With a linear gap the break
    // test is simply `F <= H` — a chain through an element it cannot raise
    // was already propagated from that element's H in the stripe loop.
    vf = E::shift_in(vf, f0);
    let mut k = 0;
    loop {
        let cur = E::load(st.ch.as_ptr().add(k * l));
        if E::gt_bytes(vf, cur) == 0 {
            break;
        }
        E::store(st.ch.as_mut_ptr().add(k * l), E::max(cur, vf));
        vf = E::subs(vf, vgap);
        k += 1;
        if k == p {
            k = 0;
            vf = E::shift_in(vf, NEG_INF);
        }
    }
}

/// Post-column statistics pass over `st.ch`: threshold hits (live lanes
/// only) and, in argmax mode, the running per-element max plus the column
/// of its first strict improvement.
///
/// # Safety
/// Same contract as [`column`]; additionally `valid` must cover all `p`
/// stripes of `st`.
#[inline(always)]
pub(crate) unsafe fn stats<E: Engine>(
    st: &mut StripedState,
    valid: &[u64],
    thr_minus_1: Option<i16>,
    track_argmax: bool,
    j0: usize,
) {
    let p = st.p;
    let l = E::LANES;
    let vthr = thr_minus_1.map(|x| E::splat(x));
    for (k, &vmask) in valid.iter().enumerate().take(p) {
        let off = k * l;
        let vh = E::load(st.ch.as_ptr().add(off));
        if let Some(vt) = vthr {
            let m = E::gt_bytes(vh, vt) & vmask;
            st.hits += u64::from(m.count_ones() / 2);
        }
        if track_argmax {
            let vm = E::load(st.vmax.as_ptr().add(off));
            let improved = E::gt_bytes(vh, vm);
            if improved != 0 {
                E::store(st.vmax.as_mut_ptr().add(off), E::max(vm, vh));
                // Rare scalar fixup: record the first column each element's
                // running max changed in (strict `>` keeps the earliest).
                let mut bits = improved;
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize / 2;
                    st.first_j[off + lane] = j0 as u64;
                    bits &= !(0b11u64 << (lane * 2));
                }
            }
        }
    }
}

/// Reads one element of the current column (pre-`flip`).
///
/// # Safety
/// Same contract as [`column`]; `q` must be a valid query index
/// (`q < p * lanes`).
#[inline(always)]
pub(crate) unsafe fn extract<E: Engine>(st: &mut StripedState, q: usize) -> i16 {
    let k = q % st.p;
    let l = q / st.p;
    let v = E::load(st.ch.as_ptr().add(k * E::LANES));
    E::store(st.scratch.as_mut_ptr(), v);
    st.scratch[l]
}

/// De-stripes the current column (pre-`flip`) into `out[0..m]`.
///
/// # Safety
/// Same contract as [`column`]; `m` must not exceed the profile's query
/// length and `out` must hold at least `m` elements.
#[inline(always)]
pub(crate) unsafe fn destripe_column<E: Engine>(st: &StripedState, m: usize, out: &mut [i32]) {
    debug_assert!(out.len() >= m);
    for (q, slot) in out.iter_mut().enumerate().take(m) {
        *slot = i32::from(st.ch[(q % st.p) * st.lanes + q / st.p]);
    }
}

/// Full striped local-alignment pass, exact against `sw_score_linear`.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper).
#[inline(always)]
pub(crate) unsafe fn striped_score<E: Engine>(
    prof: &mut StripedProfile,
    t: &[u8],
    threshold: i32,
) -> genomedsm_core::linear::LinearSwResult {
    use genomedsm_core::linear::LinearSwResult;
    let gap = prof.gap;
    let m = prof.m;
    let mut st = StripedState::new(prof.p, prof.lanes, true);
    // Hits are only counted for positive thresholds (matching the scalar
    // oracle); a threshold above the i16 range can never be reached by an
    // admitted problem, so it degenerates to "count nothing".
    let thr = if threshold > 0 && threshold <= i32::from(i16::MAX) {
        Some((threshold - 1) as i16)
    } else {
        None
    };
    for (j0, &c) in t.iter().enumerate() {
        let row = prof.row(c);
        // Zero top row: diagonal boundary 0, vertical-gap boundary -gap.
        column::<E>(&mut st, row, gap, 0, -gap);
        stats::<E>(&mut st, &prof.valid, thr, true, j0);
        st.flip();
    }
    // Final reduction: scanning live elements in query order with a strict
    // `>` reproduces the oracle's row-major-first tie-break — `first_j`
    // holds each row's first column reaching its max, and the lowest such
    // row wins.
    let mut best = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: st.hits,
    };
    for q in 0..m {
        let idx = prof.index_of(q);
        let v = i32::from(st.vmax[idx]);
        if v > best.best_score {
            best.best_score = v;
            best.best_end = (q + 1, st.first_j[idx] as usize + 1);
        }
    }
    best
}

/// Outputs of one [`band_advance`] call.
pub(crate) struct BandChunkOut<'a> {
    /// Per chunk column: `H` of the band's last query row (the bottom
    /// border handed to the next band of the wavefront).
    pub bottom: &'a mut Vec<i32>,
    /// Per chunk column: threshold hits among the band's rows.
    pub col_hits: &'a mut Vec<u64>,
    /// Absolute (1-based) matrix column of `chunk[0]`, used to decide which
    /// columns to de-stripe into `saved`.
    pub first_col: usize,
    /// Save every column whose absolute index is a multiple of this
    /// (`None` = save nothing).
    pub save_every: Option<usize>,
    /// De-striped full band columns `(absolute_col, values)` for the
    /// pre-process save stream.
    pub saved: &'a mut Vec<(usize, Vec<i32>)>,
}

/// Advances a banded wavefront state across one horizontal chunk of the
/// database sequence, injecting the top border row computed by the band
/// above (`top[0]` is the corner `H[row0][first_col-1]`).
///
/// # Safety
/// Same contract as [`striped_score`].
#[inline(always)]
pub(crate) unsafe fn band_advance<E: Engine>(
    st: &mut StripedState,
    prof: &mut StripedProfile,
    chunk: &[u8],
    top: &[i32],
    thr_minus_1: Option<i16>,
    out: &mut BandChunkOut<'_>,
) {
    debug_assert_eq!(top.len(), chunk.len() + 1);
    let gap = prof.gap;
    let m = prof.m;
    for (jj, &c) in chunk.iter().enumerate() {
        let row = prof.row(c);
        let diag0 = top[jj] as i16;
        let f0 = (top[jj + 1] as i16).saturating_sub(gap);
        column::<E>(st, row, gap, diag0, f0);
        let hits_before = st.hits;
        stats::<E>(st, &prof.valid, thr_minus_1, true, 0);
        out.col_hits.push(st.hits - hits_before);
        out.bottom.push(i32::from(extract::<E>(st, m - 1)));
        if let Some(every) = out.save_every {
            let abs = out.first_col + jj;
            if abs.is_multiple_of(every) {
                let mut col = vec![0i32; m];
                destripe_column::<E>(st, m, &mut col);
                out.saved.push((abs, col));
            }
        }
        st.flip();
    }
}
