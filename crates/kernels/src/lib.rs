//! Vectorized Smith–Waterman score kernels with runtime ISA dispatch.
//!
//! Every strategy in this reproduction bottoms out in the same per-cell SW
//! recurrence; this crate lifts that inner loop onto Farrar's striped SIMD
//! layout (the approach behind the SSW library — see PAPERS.md) and offers
//! it three ways behind one trait:
//!
//! | kernel               | width        | requires             |
//! |----------------------|--------------|----------------------|
//! | `scalar`             | 1 × i32      | nothing (the oracle) |
//! | `striped-portable`   | 8 × i16      | nothing              |
//! | `striped-sse2`       | 8 × i16      | SSE2 (any x86_64)    |
//! | `striped-avx2`       | 16 × i16     | AVX2, detected at runtime |
//!
//! All kernels are **bit-exact** against `sw_score_linear`: same best
//! score, same end point (including the row-major-first tie-break), same
//! threshold hit count. Problems that could saturate the i16 lanes (see
//! [`fits_i16`]) transparently fall back to the scalar oracle, so callers
//! never trade correctness for speed.
//!
//! Selection is by [`KernelChoice`] (`scalar | simd | auto`): `auto` picks
//! the fastest exact kernel for the host, `simd` forces the striped path
//! (portable fallback included), `scalar` forces the oracle.

mod affine;
mod band;
mod batch;
mod engine;
mod profile;
mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use affine::{score_batch_affine, score_batch_packed_affine, PackedAffineProfile};
pub use band::BandScorer;
pub use batch::{effective_lanes, score_batch, score_batch_packed, PackedProfile};
pub use genomedsm_core::linear::LinearSwResult;

use affine::AffineStripedProfile;
use genomedsm_core::linear::sw_score_linear;
use genomedsm_core::scoring::Scoring;
use genomedsm_core::submat::MatrixScoring;
use genomedsm_core::sw_score_profile;
use profile::StripedProfile;

/// Highest cell value the striped kernels accept, with margin below
/// `i16::MAX` so transient sums cannot saturate.
const I16_SCORE_CEILING: i64 = 32_000;
/// Largest magnitude accepted for the three scoring parameters, with margin
/// above the profile's padding sentinel.
const I16_PARAM_CEILING: i32 = 28_000;

/// Instruction set a striped kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Plain-array striped fallback; always available.
    Portable,
    /// 128-bit `std::arch::x86_64` engine.
    Sse2,
    /// 256-bit `std::arch::x86_64` engine.
    Avx2,
}

impl Isa {
    /// All ISAs, strongest last.
    pub const ALL: [Isa; 3] = [Isa::Portable, Isa::Sse2, Isa::Avx2];

    /// i16 lanes per vector.
    pub const fn lanes(self) -> usize {
        match self {
            Isa::Portable | Isa::Sse2 => 8,
            Isa::Avx2 => 16,
        }
    }

    /// Human-readable kernel name (also used by the CLI and benches).
    pub const fn name(self) -> &'static str {
        match self {
            Isa::Portable => "striped-portable",
            Isa::Sse2 => "striped-sse2",
            Isa::Avx2 => "striped-avx2",
        }
    }

    /// Whether the running CPU can execute this engine.
    pub fn available(self) -> bool {
        match self {
            Isa::Portable => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(not(target_arch = "x86_64"))]
            Isa::Sse2 | Isa::Avx2 => false,
        }
    }

    /// The widest engine the running CPU supports.
    pub fn best_available() -> Isa {
        if Isa::Avx2.available() {
            Isa::Avx2
        } else if Isa::Sse2.available() {
            Isa::Sse2
        } else {
            Isa::Portable
        }
    }
}

/// User-facing kernel selection, as wired through configs and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelChoice {
    /// Always the plain i32 scalar recurrence.
    Scalar,
    /// Force the striped kernel on the widest available engine (portable
    /// fallback on non-x86 hosts).
    Simd,
    /// Pick whatever is fastest-and-exact for this host and problem.
    #[default]
    Auto,
}

impl KernelChoice {
    /// Parses `scalar | simd | auto` (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Self::Scalar),
            "simd" => Some(Self::Simd),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// The canonical spelling `parse` accepts.
    pub const fn name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            Self::Simd => "simd",
            Self::Auto => "auto",
        }
    }
}

impl std::str::FromStr for KernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s).ok_or_else(|| format!("unknown kernel choice `{s}` (want scalar|simd|auto)"))
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a problem of these dimensions is exactly representable in the
/// i16 striped kernels.
///
/// Local scores are bounded by `min(m, n) * matches` (each of the at most
/// `min(m, n)` aligned columns contributes at most `matches`), so keeping
/// that product under the internal `I16_SCORE_CEILING` (32 000) rules out
/// saturation of every intermediate value. Degenerate scoring schemes (non-negative gap, huge
/// magnitudes, mismatch above match) are routed to scalar rather than
/// reasoned about.
pub fn fits_i16(m: usize, n: usize, scoring: &Scoring) -> bool {
    if m == 0 || n == 0 {
        return false; // trivial; let the scalar oracle return its zero result
    }
    if scoring.gap >= 0 || scoring.gap < -I16_PARAM_CEILING {
        return false;
    }
    if scoring.matches <= 0
        || scoring.mismatch > scoring.matches
        || scoring.mismatch < -I16_PARAM_CEILING
    {
        return false;
    }
    (m.min(n) as i64).saturating_mul(i64::from(scoring.matches)) <= I16_SCORE_CEILING
}

/// [`fits_i16`] for a query whose target length is not yet known — the
/// admission rule for packing a query into a [`PackedProfile`] that will be
/// reused across a whole database of targets.
///
/// Local scores are bounded by `min(m, n) * matches <= m * matches` for any
/// target length `n`, so `m * matches <= I16_SCORE_CEILING` rules out
/// saturation against every possible target. Unlike [`fits_i16`], an empty
/// query is admitted: its lane is fully masked and yields the oracle's zero
/// result for free.
pub fn fits_i16_query(m: usize, scoring: &Scoring) -> bool {
    if scoring.gap >= 0 || scoring.gap < -I16_PARAM_CEILING {
        return false;
    }
    if scoring.matches <= 0
        || scoring.mismatch > scoring.matches
        || scoring.mismatch < -I16_PARAM_CEILING
    {
        return false;
    }
    (m as i64).saturating_mul(i64::from(scoring.matches)) <= I16_SCORE_CEILING
}

fn affine_params_ok(scoring: &MatrixScoring) -> bool {
    // Both penalties negative and bounded; open at least as costly as
    // extend (signed `gap_open <= gap_extend`) — the affine lazy-F loop's
    // "extension dominates re-opening" argument requires it, and every
    // standard protein scheme satisfies it.
    if scoring.gap_open >= 0 || scoring.gap_extend >= 0 {
        return false;
    }
    if scoring.gap_open > scoring.gap_extend || scoring.gap_open < -I16_PARAM_CEILING {
        return false;
    }
    // Matrix entries must stay clear of the padding sentinel and offer a
    // positive score somewhere (otherwise every result is the zero result
    // and the scalar oracle is free anyway).
    let maxs = scoring.matrix.max_score();
    let mins = scoring.matrix.min_score();
    maxs >= 1 && i32::from(maxs) <= I16_PARAM_CEILING && i32::from(mins) >= -I16_PARAM_CEILING
}

/// Whether a problem of these dimensions is exactly representable in the
/// i16 striped *affine* kernels under `scoring` — the protein-path
/// counterpart of [`fits_i16`].
///
/// Local scores are bounded by `min(m, n) * max_matrix_score` (gaps only
/// subtract), so keeping that product under the internal ceiling rules
/// out saturation of every `H`; `E`/`F` values that saturate low are
/// dominated by the `H + gap_open` re-open branch everywhere they are
/// consumed, so they cannot corrupt an admitted result.
pub fn fits_i16_affine(m: usize, n: usize, scoring: &MatrixScoring) -> bool {
    if m == 0 || n == 0 {
        return false; // trivial; let the scalar oracle return its zero result
    }
    affine_params_ok(scoring)
        && (m.min(n) as i64).saturating_mul(i64::from(scoring.matrix.max_score()))
            <= I16_SCORE_CEILING
}

/// [`fits_i16_affine`] for a query whose target length is not yet known —
/// the admission rule for packing a query into a [`PackedAffineProfile`]
/// reused across a whole database. Empty queries are admitted (their lane
/// is fully masked and yields the zero result for free).
pub fn fits_i16_affine_query(m: usize, scoring: &MatrixScoring) -> bool {
    affine_params_ok(scoring)
        && (m as i64).saturating_mul(i64::from(scoring.matrix.max_score())) <= I16_SCORE_CEILING
}

/// A drop-in replacement for `sw_score_linear`: same inputs, same exact
/// outputs, possibly much faster.
pub trait ScoreKernel: Send + Sync {
    /// Stable kernel name for logs, benches, and CSV rows.
    fn name(&self) -> &'static str;

    /// Scores `s` (rows) against `t` (columns); exact per the scalar
    /// oracle's contract (best score, row-major-first end point, threshold
    /// hit count with `threshold > 0` gating).
    fn score(&self, s: &[u8], t: &[u8], scoring: &Scoring, threshold: i32) -> LinearSwResult;

    /// Affine-gap (Gotoh) scoring under a full substitution matrix — the
    /// protein path. Exact per [`sw_score_profile`]'s contract, with the
    /// same transparent scalar fallback outside the i16 envelope.
    fn score_affine(
        &self,
        s: &[u8],
        t: &[u8],
        scoring: &MatrixScoring,
        threshold: i32,
    ) -> LinearSwResult;
}

/// The plain two-row i32 recurrence (the oracle itself).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarKernel;

impl ScoreKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn score(&self, s: &[u8], t: &[u8], scoring: &Scoring, threshold: i32) -> LinearSwResult {
        sw_score_linear(s, t, scoring, threshold)
    }

    fn score_affine(
        &self,
        s: &[u8],
        t: &[u8],
        scoring: &MatrixScoring,
        threshold: i32,
    ) -> LinearSwResult {
        sw_score_profile(s, t, scoring, threshold)
    }
}

/// Farrar striped kernel on a fixed engine, with automatic scalar fallback
/// for problems outside the i16 envelope.
#[derive(Debug, Clone, Copy)]
pub struct StripedKernel {
    isa: Isa,
}

impl StripedKernel {
    /// A striped kernel on `isa`, or `None` if the CPU lacks it.
    pub fn new(isa: Isa) -> Option<Self> {
        isa.available().then_some(Self { isa })
    }

    /// The striped kernel on the widest engine this CPU supports.
    pub fn best() -> Self {
        Self {
            isa: Isa::best_available(),
        }
    }

    /// Engine this kernel dispatches to.
    pub fn isa(&self) -> Isa {
        self.isa
    }
}

impl ScoreKernel for StripedKernel {
    fn name(&self) -> &'static str {
        self.isa.name()
    }

    fn score(&self, s: &[u8], t: &[u8], scoring: &Scoring, threshold: i32) -> LinearSwResult {
        if !fits_i16(s.len(), t.len(), scoring) || !self.isa.available() {
            return sw_score_linear(s, t, scoring, threshold);
        }
        let mut prof = StripedProfile::new(s, scoring, self.isa.lanes());
        match self.isa {
            // SAFETY: the portable engine has no ISA requirement; the
            // profile above was built for its lane width.
            Isa::Portable => unsafe {
                engine::striped_score::<scalar::Portable>(&mut prof, t, threshold)
            },
            // SAFETY: self.isa.available() was checked above, so the
            // target_feature contract of the wrapper holds.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe { x86::score_sse2(&mut prof, t, threshold) },
            // SAFETY: as above — available() verified AVX2 at runtime.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { x86::score_avx2(&mut prof, t, threshold) },
            #[cfg(not(target_arch = "x86_64"))]
            Isa::Sse2 | Isa::Avx2 => unreachable!("guarded by Isa::available"),
        }
    }

    fn score_affine(
        &self,
        s: &[u8],
        t: &[u8],
        scoring: &MatrixScoring,
        threshold: i32,
    ) -> LinearSwResult {
        if !fits_i16_affine(s.len(), t.len(), scoring) || !self.isa.available() {
            return sw_score_profile(s, t, scoring, threshold);
        }
        let mut prof = AffineStripedProfile::new(s, scoring, self.isa.lanes());
        match self.isa {
            // SAFETY: the portable engine has no ISA requirement; the
            // profile above was built for its lane width.
            Isa::Portable => unsafe {
                affine::striped_affine_score::<scalar::Portable>(&mut prof, t, threshold)
            },
            // SAFETY: self.isa.available() was checked above, so the
            // target_feature contract of the wrapper holds.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse2 => unsafe { x86::affine_sse2(&mut prof, t, threshold) },
            // SAFETY: as above — available() verified AVX2 at runtime.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { x86::affine_avx2(&mut prof, t, threshold) },
            #[cfg(not(target_arch = "x86_64"))]
            Isa::Sse2 | Isa::Avx2 => unreachable!("guarded by Isa::available"),
        }
    }
}

static SCALAR: ScalarKernel = ScalarKernel;
static PORTABLE: StripedKernel = StripedKernel { isa: Isa::Portable };
static SSE2: StripedKernel = StripedKernel { isa: Isa::Sse2 };
static AVX2: StripedKernel = StripedKernel { isa: Isa::Avx2 };

fn striped_static(isa: Isa) -> &'static StripedKernel {
    match isa {
        Isa::Portable => &PORTABLE,
        Isa::Sse2 => &SSE2,
        Isa::Avx2 => &AVX2,
    }
}

/// Resolves a [`KernelChoice`] to a concrete kernel for this host.
///
/// `auto` returns the plain scalar kernel when no real SIMD is available —
/// the portable striped engine exists for correctness coverage, not speed.
pub fn kernel_for(choice: KernelChoice) -> &'static dyn ScoreKernel {
    match choice {
        KernelChoice::Scalar => &SCALAR,
        KernelChoice::Simd => striped_static(Isa::best_available()),
        KernelChoice::Auto => {
            let best = Isa::best_available();
            if best == Isa::Portable {
                &SCALAR
            } else {
                striped_static(best)
            }
        }
    }
}

/// Every kernel runnable on this host (scalar first), for benches and the
/// CLI's kernel listing.
pub fn available_kernels() -> Vec<&'static dyn ScoreKernel> {
    let mut out: Vec<&'static dyn ScoreKernel> = vec![&SCALAR];
    for isa in Isa::ALL {
        if isa.available() {
            out.push(striped_static(isa));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SC: Scoring = Scoring::paper();

    fn oracle(s: &[u8], t: &[u8], thr: i32) -> LinearSwResult {
        sw_score_linear(s, t, &SC, thr)
    }

    #[test]
    fn choice_parsing_round_trips() {
        for c in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            assert_eq!(KernelChoice::parse(c.name()), Some(c));
        }
        assert_eq!(KernelChoice::parse("AUTO"), Some(KernelChoice::Auto));
        assert!(KernelChoice::parse("avx9000").is_none());
        assert_eq!(KernelChoice::default(), KernelChoice::Auto);
    }

    #[test]
    fn fits_i16_accepts_paper_scale_and_rejects_saturation() {
        assert!(fits_i16(10_000, 10_000, &SC));
        assert!(!fits_i16(40_000, 40_000, &SC));
        assert!(!fits_i16(0, 10, &SC));
        assert!(!fits_i16(10, 0, &SC));
        // 1000 * 40 > 32_000 even though each sequence is short.
        assert!(!fits_i16(1000, 1000, &Scoring::new(40, -1, -2)));
        assert!(fits_i16(100, 100, &Scoring::new(40, -1, -2)));
    }

    #[test]
    fn every_available_kernel_matches_the_oracle_on_a_fixed_pair() {
        let s = b"TCTCGACGGATTAGTATATATATAGGCATTCA";
        let t = b"ATATGATCGGAATAGCTCTTAGGCATTC";
        for thr in [0, 1, 3, i32::MAX] {
            let want = oracle(s, t, thr);
            for k in available_kernels() {
                assert_eq!(
                    k.score(s, t, &SC, thr),
                    want,
                    "kernel {} thr {thr}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn striped_kernels_fall_back_for_saturating_problems() {
        // With match = 2000, a 17-length identity run would hit 34_000 and
        // saturate i16; the guard must route to scalar and stay exact.
        let sc = Scoring::new(2000, -1000, -2000);
        let s = vec![b'A'; 17];
        let t = vec![b'A'; 17];
        let want = sw_score_linear(&s, &t, &sc, 1);
        assert_eq!(want.best_score, 34_000);
        for k in available_kernels() {
            assert_eq!(k.score(&s, &t, &sc, 1), want, "kernel {}", k.name());
        }
    }

    #[test]
    fn empty_inputs_yield_the_zero_result_on_all_kernels() {
        for k in available_kernels() {
            for (s, t) in [
                (&b""[..], &b"ACGT"[..]),
                (&b"ACGT"[..], &b""[..]),
                (&b""[..], &b""[..]),
            ] {
                let r = k.score(s, t, &SC, 1);
                assert_eq!(
                    (r.best_score, r.best_end, r.hits),
                    (0, (0, 0), 0),
                    "kernel {}",
                    k.name()
                );
            }
        }
    }

    #[test]
    fn auto_kernel_resolves_to_something_available() {
        let k = kernel_for(KernelChoice::Auto);
        let r = k.score(b"ACGTACGT", b"ACGTACGT", &SC, 1);
        assert_eq!(r.best_score, 8);
        assert_eq!(r.best_end, (8, 8));
    }

    #[test]
    fn band_scorer_reproduces_the_oracle_over_one_band() {
        // One band covering all of s, chunked t, zero top border: the
        // streamed hits and best must match a plain linear pass.
        let s = b"GACGGATTAGGTACCAGGAT";
        let t = b"GATCGGAATAGGGACCATTTACCA";
        let thr = 2;
        let want = oracle(s, t, thr);
        let mut scorer = BandScorer::new(KernelChoice::Simd, s, (s.len(), t.len()), &SC, thr, None)
            .expect("striped band scorer must build for simd choice");
        let mut bottom = Vec::new();
        let mut col_hits = Vec::new();
        let mut saved = Vec::new();
        let zeros = vec![0i32; t.len() + 1];
        let mut col = 1;
        for chunk in t.chunks(7) {
            scorer.advance(
                chunk,
                &zeros[..chunk.len() + 1],
                col,
                &mut bottom,
                &mut col_hits,
                &mut saved,
            );
            col += chunk.len();
        }
        assert_eq!(scorer.best_score(), want.best_score);
        assert_eq!(col_hits.iter().sum::<u64>(), want.hits);
        // Bottom row must equal the oracle's last DP row.
        let full = genomedsm_core::matrix::sw_matrix(s, t, &SC);
        for (j, &b) in bottom.iter().enumerate() {
            assert_eq!(b, full.get(s.len(), j + 1), "bottom col {}", j + 1);
        }
    }
}
