//! Portable striped backend: the [`Engine`] vocabulary on plain arrays.
//!
//! This serves two purposes: it is the fallback on targets without
//! `std::arch::x86_64`, and it exercises the exact same striped control flow
//! as the SIMD engines in tests, so layout bugs cannot hide behind an ISA
//! check. Eight lanes keep the striped geometry (padding, rotation,
//! lazy-F wrap) identical to SSE2's.

use crate::engine::Engine;

/// Lane width of the portable engine (matches SSE2 for i16).
pub(crate) const PORTABLE_LANES: usize = 8;

/// Portable array-based engine.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Portable;

impl Engine for Portable {
    const LANES: usize = PORTABLE_LANES;
    type V = [i16; PORTABLE_LANES];

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn splat(x: i16) -> Self::V {
        [x; PORTABLE_LANES]
    }

    // SAFETY: the Engine contract guarantees the pointer is valid for LANES i16s; unaligned access is explicit.
    #[inline(always)]
    unsafe fn load(src: *const i16) -> Self::V {
        std::ptr::read_unaligned(src.cast::<Self::V>())
    }

    // SAFETY: the Engine contract guarantees the pointer is valid for LANES i16s; unaligned access is explicit.
    #[inline(always)]
    unsafe fn store(dst: *mut i16, v: Self::V) {
        std::ptr::write_unaligned(dst.cast::<Self::V>(), v);
    }

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|l| a[l].saturating_add(b[l]))
    }

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|l| a[l].saturating_sub(b[l]))
    }

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        std::array::from_fn(|l| a[l].max(b[l]))
    }

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn gt_bytes(a: Self::V, b: Self::V) -> u64 {
        let mut mask = 0u64;
        for l in 0..PORTABLE_LANES {
            if a[l] > b[l] {
                mask |= 0b11 << (2 * l);
            }
        }
        mask
    }

    // SAFETY: trivially safe — plain array arithmetic; unsafe only to match the Engine signature.
    #[inline(always)]
    unsafe fn shift_in(v: Self::V, first: i16) -> Self::V {
        std::array::from_fn(|l| if l == 0 { first } else { v[l - 1] })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_in_rotates_up_and_inserts() {
        unsafe {
            let v: [i16; 8] = [10, 11, 12, 13, 14, 15, 16, 17];
            assert_eq!(Portable::shift_in(v, -7), [-7, 10, 11, 12, 13, 14, 15, 16]);
        }
    }

    #[test]
    fn gt_bytes_sets_two_bits_per_lane() {
        unsafe {
            let a: [i16; 8] = [1, 0, 5, 0, 0, 0, 0, 9];
            let b: [i16; 8] = [0; 8];
            let m = Portable::gt_bytes(a, b);
            assert_eq!(m, 0b11 | (0b11 << 4) | (0b11 << 14));
            assert_eq!(Portable::gt_bytes(b, b), 0);
        }
    }

    #[test]
    fn saturating_ops_saturate() {
        unsafe {
            let lo = Portable::splat(i16::MIN);
            let hi = Portable::splat(i16::MAX);
            assert_eq!(Portable::subs(lo, Portable::splat(100))[0], i16::MIN);
            assert_eq!(Portable::adds(hi, Portable::splat(100))[0], i16::MAX);
        }
    }
}
