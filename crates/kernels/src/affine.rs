//! Affine-gap (Gotoh) striped and packed kernels for the protein path.
//!
//! The linear-gap kernels in [`crate::engine`]/[`crate::batch`] collapse
//! the horizontal gap state (`E[i][j] = H[i][j-1] - gap` exactly). With
//! affine penalties that shortcut is gone: the recurrence carries two
//! extra states per element,
//!
//! ```text
//! E[i][j] = max(E[i][j-1] + ge, H[i][j-1] + go)   (gap in the query)
//! F[i][j] = max(F[i-1][j] + ge, H[i-1][j] + go)   (gap in the target)
//! H[i][j] = max(0, H[i-1][j-1] + s(q_i, t_j), E[i][j], F[i][j])
//! ```
//!
//! with `go`/`ge` the (negative) open/extend penalties and `s` a full
//! substitution matrix ([`MatrixScoring`]). This module provides both
//! parallel decompositions, exactly mirroring their linear counterparts:
//!
//! * **Striped** (one query across all lanes, SSW-style): the `E` values
//!   live in a per-element striped buffer written one column ahead; `F`
//!   runs down the column and crosses stripe boundaries through a lazy
//!   correction loop. The affine lazy loop continues while any lane has
//!   `F > H - go` — strictly longer than the linear kernel's `F > H`
//!   test, because an `F` chain that cannot raise this element's `H` may
//!   still beat *re-opening* a gap below it. Whenever the loop raises an
//!   `H`, it also refreshes the stored `E` (`E ← max(E, H_new + go)`),
//!   which restores the exact Gotoh `E` for the next column: the main
//!   loop already folded in `E + ge` and the old `H + go`, and the
//!   raised `H` only adds the third candidate. Propagating the chain as
//!   `F - ge` alone is complete because admission requires
//!   `gap_open <= gap_extend`, so extending an existing gap dominates
//!   re-opening from any lazily-raised `H` (which equals that same `F`).
//! * **Packed** (a different query per lane, batch-style): lanes are
//!   independent alignments, so `F` is computed exactly on the way down
//!   the rows — no lazy loop at all. Only the extra `E` buffer is new.
//!
//! Exactness: every routine here is bit-identical to
//! [`sw_score_profile`] (score, row-major-first end point tie-break,
//! threshold hit count) whenever [`crate::fits_i16_affine`] /
//! [`crate::fits_i16_affine_query`] admits the problem; public wrappers
//! fall back to the scalar Gotoh oracle otherwise. Saturating i16
//! arithmetic cannot corrupt admitted problems: `H` is bounded by
//! `min(m, n) * max_matrix_score <= 32 000`, and `E`/`F` values that
//! saturate toward `i16::MIN` are already dominated by the `H + go`
//! re-open branch (`>= -28 000`) everywhere they are consumed.

use crate::batch::{packed_stats, PackedState};
use crate::engine::{stats, Engine, StripedState};
use crate::profile::NEG_INF;
use crate::{fits_i16_affine_query, Isa, KernelChoice};
use genomedsm_core::linear::LinearSwResult;
use genomedsm_core::submat::{MatrixScoring, SubstMatrix};
use genomedsm_core::sw_score_profile;

/// Striped substitution profile for one query under a [`MatrixScoring`].
///
/// Layout is identical to the linear [`crate::profile::StripedProfile`]
/// (query element `q` → stripe `q % p`, lane `q / p`); only the row fill
/// differs: `prof[c][k*lanes + l] = matrix.score(s[l*p + k], c)`. Rows
/// are built lazily per observed target symbol — the 24-letter protein
/// alphabet touches at most 24 (plus folded aliases) of the 256 slots.
pub(crate) struct AffineStripedProfile {
    /// Query length.
    pub m: usize,
    /// Segment length: number of stripes, `ceil(m / lanes)`.
    pub p: usize,
    /// Vector width in i16 lanes.
    pub lanes: usize,
    /// Gap-open penalty as a positive i16 (`-gap_open`).
    pub go: i16,
    /// Gap-extend penalty as a positive i16 (`-gap_extend`).
    pub ge: i16,
    /// Per-stripe live-lane mask (2 bits per live lane).
    pub valid: Vec<u64>,
    rows: Vec<Option<Box<[i16]>>>,
    seq: Box<[u8]>,
    matrix: SubstMatrix,
}

impl AffineStripedProfile {
    /// Builds the profile skeleton; rows are filled on first use.
    ///
    /// Caller must have checked [`crate::fits_i16_affine`] so all scores
    /// and penalties are representable.
    pub fn new(s: &[u8], scoring: &MatrixScoring, lanes: usize) -> Self {
        debug_assert!(!s.is_empty());
        let m = s.len();
        let p = m.div_ceil(lanes);
        let mut valid = Vec::with_capacity(p);
        for k in 0..p {
            let mut mask = 0u64;
            for l in 0..lanes {
                if l * p + k < m {
                    mask |= 0b11 << (2 * l);
                }
            }
            valid.push(mask);
        }
        Self {
            m,
            p,
            lanes,
            go: (-scoring.gap_open) as i16,
            ge: (-scoring.gap_extend) as i16,
            valid,
            rows: vec![None; 256],
            seq: s.into(),
            matrix: scoring.matrix,
        }
    }

    /// The striped profile row for target symbol `c` (`p * lanes` values).
    pub fn row(&mut self, c: u8) -> &[i16] {
        let slot = &mut self.rows[c as usize];
        if slot.is_none() {
            let mut row = vec![NEG_INF; self.p * self.lanes];
            for (q, &sc) in self.seq.iter().enumerate() {
                row[(q % self.p) * self.lanes + q / self.p] = self.matrix.score(sc, c);
            }
            *slot = Some(row.into_boxed_slice());
        }
        slot.as_deref().unwrap()
    }

    /// Striped buffer index of query element `q`.
    #[inline(always)]
    pub fn index_of(&self, q: usize) -> usize {
        (q % self.p) * self.lanes + q / self.p
    }
}

/// Computes one target column of the affine recurrence into `st.ch`,
/// updating the striped `E` buffer `pe` in place for the next column.
///
/// On entry `pe[q]` holds `E[q][j]` (written while processing column
/// `j-1`; initialized to `gap_open` before the first column, which is the
/// exact `E[q][1]` from the zero boundary column). On exit `st.ch` holds
/// the exact `H[.][j]` and `pe` the exact `E[.][j+1]`.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper), and `st`,
/// `pe`, and `prof_row` must all be striped for `E::LANES` lanes with `p`
/// stripes.
#[inline(always)]
unsafe fn affine_column<E: Engine>(
    st: &mut StripedState,
    pe: &mut [i16],
    prof_row: &[i16],
    go: i16,
    ge: i16,
) {
    let p = st.p;
    let l = E::LANES;
    debug_assert_eq!(l, st.lanes);
    debug_assert_eq!(prof_row.len(), p * l);
    debug_assert_eq!(pe.len(), p * l);
    let vgo = E::splat(go);
    let vge = E::splat(ge);
    let vzero = E::splat(0);
    let mut vf = E::splat(NEG_INF);
    // Diagonal feed for stripe 0: last stripe of the previous column,
    // rotated one lane, with the zero top-left boundary in lane 0.
    let mut vh = E::shift_in(E::load(st.ph.as_ptr().add((p - 1) * l)), 0);
    for k in 0..p {
        let off = k * l;
        let ve = E::load(pe.as_ptr().add(off));
        vh = E::adds(vh, E::load(prof_row.as_ptr().add(off)));
        vh = E::max(vh, ve);
        vh = E::max(vh, vf);
        vh = E::max(vh, vzero);
        E::store(st.ch.as_mut_ptr().add(off), vh);
        // E for the next column: extend, or re-open from this H.
        E::store(
            pe.as_mut_ptr().add(off),
            E::max(E::subs(ve, vge), E::subs(vh, vgo)),
        );
        // F down the column: extend, or open from this H.
        vf = E::max(E::subs(vf, vge), E::subs(vh, vgo));
        vh = E::load(st.ph.as_ptr().add(off));
    }
    // Affine lazy F: the vertical chain crossing the stripe-0 boundary.
    // Continue while F could still beat a re-opened gap (`F > H - go`);
    // the boundary value entering element 0 is the zero row's `0 + go`,
    // which can never pass that test — NEG_INF stands in for it. Each
    // pass raises H where F wins and refreshes the stored E from the
    // raised H; the chain itself advances as `F - ge` only, which is
    // complete because `go >= ge` makes extension dominate re-opening
    // from a lazily-raised H (that H *is* this F). Termination: F drops
    // by `ge >= 1` per stripe while `H - go >= -go` is fixed from below.
    vf = E::shift_in(vf, NEG_INF);
    let mut k = 0;
    loop {
        let off = k * l;
        let cur = E::load(st.ch.as_ptr().add(off));
        if E::gt_bytes(vf, E::subs(cur, vgo)) == 0 {
            break;
        }
        let raised = E::max(cur, vf);
        E::store(st.ch.as_mut_ptr().add(off), raised);
        E::store(
            pe.as_mut_ptr().add(off),
            E::max(E::load(pe.as_ptr().add(off)), E::subs(raised, vgo)),
        );
        vf = E::subs(vf, vge);
        k += 1;
        if k == p {
            k = 0;
            vf = E::shift_in(vf, NEG_INF);
        }
    }
}

/// Full striped affine pass, exact against [`sw_score_profile`].
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper).
#[inline(always)]
pub(crate) unsafe fn striped_affine_score<E: Engine>(
    prof: &mut AffineStripedProfile,
    t: &[u8],
    threshold: i32,
) -> LinearSwResult {
    let (go, ge) = (prof.go, prof.ge);
    let m = prof.m;
    let mut st = StripedState::new(prof.p, prof.lanes, true);
    // E entering the first real column is exactly `gap_open` for every
    // element (opened from the zero boundary column).
    let mut pe = vec![-go; prof.p * prof.lanes];
    let thr = if threshold > 0 && threshold <= i32::from(i16::MAX) {
        Some((threshold - 1) as i16)
    } else {
        None
    };
    for (j0, &c) in t.iter().enumerate() {
        let row = prof.row(c);
        affine_column::<E>(&mut st, &mut pe, row, go, ge);
        stats::<E>(&mut st, &prof.valid, thr, true, j0);
        st.flip();
    }
    // Same final reduction as the linear kernel: live elements in query
    // order with strict `>` reproduce the oracle's row-major-first
    // tie-break.
    let mut best = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: st.hits,
    };
    for q in 0..m {
        let idx = prof.index_of(q);
        let v = i32::from(st.vmax[idx]);
        if v > best.best_score {
            best.best_score = v;
            best.best_end = (q + 1, st.first_j[idx] as usize + 1);
        }
    }
    best
}

/// A batch of up to `lanes` queries packed one-per-lane for the affine
/// recurrence under a shared [`MatrixScoring`] — the protein counterpart
/// of [`crate::PackedProfile`], reusable across a whole database scan.
pub struct PackedAffineProfile {
    isa: Isa,
    lanes: usize,
    rows: usize,
    lens: Vec<usize>,
    valid: Vec<u64>,
    sym_rows: Vec<Option<Box<[i16]>>>,
    seqs: Vec<Box<[u8]>>,
    matrix: SubstMatrix,
    go: i16,
    ge: i16,
}

impl PackedAffineProfile {
    /// Packs `queries` (at most `isa.lanes()` of them) for `isa`.
    ///
    /// Returns `None` when the pack is not exactly representable: the ISA
    /// is unavailable, too many queries, or the scoring scheme / a query
    /// length fails [`fits_i16_affine_query`].
    pub fn new(queries: &[&[u8]], scoring: &MatrixScoring, isa: Isa) -> Option<Self> {
        if !isa.available() || queries.len() > isa.lanes() {
            return None;
        }
        if queries
            .iter()
            .any(|q| !fits_i16_affine_query(q.len(), scoring))
        {
            return None;
        }
        let lanes = isa.lanes();
        let lens: Vec<usize> = queries.iter().map(|q| q.len()).collect();
        let rows = lens.iter().copied().max().unwrap_or(0);
        let mut valid = Vec::with_capacity(rows);
        for i in 0..rows {
            let mut mask = 0u64;
            for (l, &len) in lens.iter().enumerate() {
                if i < len {
                    mask |= 0b11 << (2 * l);
                }
            }
            valid.push(mask);
        }
        Some(Self {
            isa,
            lanes,
            rows,
            lens,
            valid,
            sym_rows: vec![None; 256],
            seqs: queries.iter().map(|&q| q.into()).collect(),
            matrix: scoring.matrix,
            go: (-scoring.gap_open) as i16,
            ge: (-scoring.gap_extend) as i16,
        })
    }

    /// Number of queries packed into this profile.
    pub fn width(&self) -> usize {
        self.lens.len()
    }

    /// The ISA this profile is laid out for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// The profile row for target symbol `c` (`rows * lanes` values).
    fn row(&mut self, c: u8) -> &[i16] {
        let slot = &mut self.sym_rows[c as usize];
        if slot.is_none() {
            let mut row = vec![NEG_INF; self.rows * self.lanes];
            for (l, q) in self.seqs.iter().enumerate() {
                for (i, &qc) in q.iter().enumerate() {
                    row[i * self.lanes + l] = self.matrix.score(qc, c);
                }
            }
            *slot = Some(row.into_boxed_slice());
        }
        slot.as_deref().unwrap()
    }
}

/// One target column of the packed affine recurrence. Lanes are
/// independent alignments, so `F` is exact on the way down the rows: the
/// first row's `F` is `max(NEG_INF + ge, 0 + go) = go`, precisely the
/// open-from-the-zero-row value.
///
/// # Safety
/// Same contract as the linear `packed_column`: the engine's ISA must be
/// enabled and `st`/`pe`/`prof_row` packed for `E::LANES` lanes with at
/// least `rows` rows.
#[inline(always)]
unsafe fn packed_affine_column<E: Engine>(
    st: &mut PackedState,
    pe: &mut [i16],
    rows: usize,
    prof_row: &[i16],
    go: i16,
    ge: i16,
) {
    let l = E::LANES;
    let vzero = E::splat(0);
    let vgo = E::splat(go);
    let vge = E::splat(ge);
    let mut diag = vzero; // H[i-1][j-1]
    let mut up_h = vzero; // H[i-1][j]
    let mut vf = E::splat(NEG_INF); // F[i-1][j]
    for i in 0..rows {
        let off = i * l;
        let left = E::load(st.ph.as_ptr().add(off)); // H[i][j-1]
        let ve = E::load(pe.as_ptr().add(off)); // E[i][j]
        vf = E::max(E::subs(vf, vge), E::subs(up_h, vgo)); // F[i][j]
        let mut vh = E::adds(diag, E::load(prof_row.as_ptr().add(off)));
        vh = E::max(vh, ve);
        vh = E::max(vh, vf);
        vh = E::max(vh, vzero);
        E::store(st.ch.as_mut_ptr().add(off), vh);
        E::store(
            pe.as_mut_ptr().add(off),
            E::max(E::subs(ve, vge), E::subs(vh, vgo)),
        );
        diag = left;
        up_h = vh;
    }
}

/// Full packed affine pass: one result per packed query, oracle-exact.
///
/// # Safety
/// The caller must guarantee the engine's ISA is available on the running
/// CPU (or call this through a `#[target_feature]` wrapper).
#[inline(always)]
pub(crate) unsafe fn packed_affine_score<E: Engine>(
    prof: &mut PackedAffineProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    debug_assert_eq!(E::LANES, prof.lanes);
    let rows = prof.rows;
    let (go, ge) = (prof.go, prof.ge);
    let mut st = PackedState::new(rows, prof.lanes);
    // E entering the first real column is exactly `gap_open` everywhere.
    let mut pe = vec![-go; rows * prof.lanes];
    let thr = if threshold > 0 && threshold <= i32::from(i16::MAX) {
        Some((threshold - 1) as i16)
    } else {
        None
    };
    for (j0, &c) in t.iter().enumerate() {
        let row = prof.row(c);
        packed_affine_column::<E>(&mut st, &mut pe, rows, row, go, ge);
        packed_stats::<E>(&mut st, &prof.valid, thr, j0);
        st.flip();
    }
    prof.lens
        .iter()
        .enumerate()
        .map(|(l, &len)| {
            let mut best = LinearSwResult {
                best_score: 0,
                best_end: (0, 0),
                hits: st.hits[l],
            };
            for i in 0..len {
                let idx = i * prof.lanes + l;
                let v = i32::from(st.vmax[idx]);
                if v > best.best_score {
                    best.best_score = v;
                    best.best_end = (i + 1, st.first_j[idx] as usize + 1);
                }
            }
            best
        })
        .collect()
}

/// Scores every query packed in `prof` against `t` under the affine
/// scheme, one oracle-exact [`LinearSwResult`] per query in pack order.
pub fn score_batch_packed_affine(
    prof: &mut PackedAffineProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    match prof.isa {
        // SAFETY: the portable engine has no ISA requirement.
        Isa::Portable => unsafe {
            packed_affine_score::<crate::scalar::Portable>(prof, t, threshold)
        },
        // SAFETY: prof.isa is only Sse2 when runtime detection admitted it.
        #[cfg(target_arch = "x86_64")]
        Isa::Sse2 => unsafe { crate::x86::packed_affine_sse2(prof, t, threshold) },
        // SAFETY: prof.isa is only Avx2 when runtime detection admitted it.
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { crate::x86::packed_affine_avx2(prof, t, threshold) },
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Sse2 | Isa::Avx2 => unreachable!("PackedAffineProfile::new checks Isa::available"),
    }
}

/// Scores many queries against one shared target under a shared
/// [`MatrixScoring`], packing a different query into each i16 lane —
/// the affine counterpart of [`crate::score_batch`]. Results are in
/// query order, bit-identical to [`sw_score_profile`] per pair; queries
/// outside the i16 envelope (and everything under `scalar`/portable
/// `auto`) run on the scalar Gotoh oracle instead.
pub fn score_batch_affine(
    choice: KernelChoice,
    queries: &[&[u8]],
    t: &[u8],
    scoring: &MatrixScoring,
    threshold: i32,
) -> Vec<LinearSwResult> {
    let isa = match choice {
        KernelChoice::Scalar => None,
        KernelChoice::Simd => Some(Isa::best_available()),
        KernelChoice::Auto => {
            let best = Isa::best_available();
            (best != Isa::Portable).then_some(best)
        }
    };
    let zero = LinearSwResult {
        best_score: 0,
        best_end: (0, 0),
        hits: 0,
    };
    let mut out = vec![zero; queries.len()];
    let Some(isa) = isa else {
        for (slot, q) in out.iter_mut().zip(queries) {
            *slot = sw_score_profile(q, t, scoring, threshold);
        }
        return out;
    };
    let (packable, scalar): (Vec<usize>, Vec<usize>) =
        (0..queries.len()).partition(|&i| fits_i16_affine_query(queries[i].len(), scoring));
    for group in packable.chunks(isa.lanes()) {
        let qs: Vec<&[u8]> = group.iter().map(|&i| queries[i]).collect();
        let mut prof = PackedAffineProfile::new(&qs, scoring, isa)
            .expect("members passed fits_i16_affine_query");
        for (&i, r) in group
            .iter()
            .zip(score_batch_packed_affine(&mut prof, t, threshold))
        {
            out[i] = r;
        }
    }
    for i in scalar {
        out[i] = sw_score_profile(queries[i], t, scoring, threshold);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fits_i16_affine;

    fn bl62() -> MatrixScoring {
        MatrixScoring::blosum62()
    }

    fn oracle_each(
        queries: &[&[u8]],
        t: &[u8],
        ms: &MatrixScoring,
        thr: i32,
    ) -> Vec<LinearSwResult> {
        queries
            .iter()
            .map(|q| sw_score_profile(q, t, ms, thr))
            .collect()
    }

    #[test]
    fn striped_profile_rows_match_matrix() {
        let ms = bl62();
        let s = b"MKVLAWQHKRW";
        let mut prof = AffineStripedProfile::new(s, &ms, 4);
        for c in [b'W', b'A', b'X', b'*'] {
            let row: Vec<i16> = prof.row(c).to_vec();
            for (q, &sc) in s.iter().enumerate() {
                assert_eq!(row[prof.index_of(q)], ms.matrix.score(sc, c), "q={q} c={c}");
            }
        }
    }

    #[test]
    fn striped_affine_matches_oracle_every_engine() {
        let ms = bl62();
        let s = b"MKVLAWQHKRWCEWLTNHGGAVDSTRQEFFPK";
        let t = b"GAVDSMKVLAWQHKRWTTTRQEFFPKAWQHK";
        assert!(fits_i16_affine(s.len(), t.len(), &ms));
        for thr in [0, 1, 5, i32::MAX] {
            let want = sw_score_profile(s, t, &ms, thr);
            for isa in Isa::ALL {
                if !isa.available() {
                    continue;
                }
                let mut prof = AffineStripedProfile::new(s, &ms, isa.lanes());
                // SAFETY: availability checked; each dispatch goes through
                // the matching target_feature wrapper.
                let got = match isa {
                    Isa::Portable => unsafe {
                        striped_affine_score::<crate::scalar::Portable>(&mut prof, t, thr)
                    },
                    #[cfg(target_arch = "x86_64")]
                    Isa::Sse2 => unsafe { crate::x86::affine_sse2(&mut prof, t, thr) },
                    #[cfg(target_arch = "x86_64")]
                    Isa::Avx2 => unsafe { crate::x86::affine_avx2(&mut prof, t, thr) },
                    #[cfg(not(target_arch = "x86_64"))]
                    _ => unreachable!(),
                };
                assert_eq!(got, want, "isa {} thr {thr}", isa.name());
            }
        }
    }

    #[test]
    fn packed_affine_matches_oracle_on_a_ragged_pack() {
        let ms = bl62();
        let queries: Vec<&[u8]> = vec![
            b"MKVLAWQHKRWCEWLTNHGG",
            b"",
            b"W",
            b"GAVDSTRQEFFPK",
            b"AWQHKAWQHKAWQHKAWQHKAWQHK",
            b"CCCCCCCC",
        ];
        let t = b"GAVDSMKVLAWQHKRWTTTRQEFFPKAWQHKWCEWLTN";
        for thr in [0, 1, 4, i32::MAX] {
            let want = oracle_each(&queries, t, &ms, thr);
            for isa in Isa::ALL {
                if !isa.available() {
                    continue;
                }
                let mut prof = PackedAffineProfile::new(&queries, &ms, isa).unwrap();
                let got = score_batch_packed_affine(&mut prof, t, thr);
                assert_eq!(got, want, "isa {} thr {thr}", isa.name());
            }
        }
    }

    #[test]
    fn packed_affine_profile_reuse_across_targets_stays_exact() {
        let ms = bl62();
        let queries: Vec<&[u8]> = vec![b"MKVLAWQHKR", b"GAVDSTRQEF", b"WCEWLTNHGGAV"];
        let targets: [&[u8]; 3] = [b"AWQHKRWCEWLTNHGGAVDSTRQ", b"MKVL", b""];
        let mut prof = PackedAffineProfile::new(&queries, &ms, Isa::Portable).unwrap();
        for t in targets {
            assert_eq!(
                score_batch_packed_affine(&mut prof, t, 2),
                oracle_each(&queries, t, &ms, 2)
            );
        }
    }

    #[test]
    fn score_batch_affine_spills_oversized_queries_to_scalar() {
        let ms = bl62();
        // 40k residues exceed the i16 ceiling (40_000 * 11 cells); the
        // big query must fall back while its neighbours stay packed.
        let long = vec![b'W'; 40_000];
        let queries: Vec<&[u8]> = vec![b"MKVLAWQ", &long, b"GAVD"];
        let t = vec![b'W'; 500];
        for choice in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            let got = score_batch_affine(choice, &queries, &t, &ms, 1);
            assert_eq!(got, oracle_each(&queries, &t, &ms, 1), "choice {choice}");
        }
    }

    #[test]
    fn deep_gap_runs_cross_many_stripe_boundaries() {
        // A long query with the strong match material at the *end* forces
        // vertical gap chains to propagate across stripe boundaries, which
        // is exactly what the lazy loop must get right.
        let ms = MatrixScoring::new(SubstMatrix::blosum62(), -2, -1);
        let mut s = vec![b'G'; 90];
        let motif = b"WWWWHHHHWWWW";
        let at = s.len() - motif.len();
        s[at..].copy_from_slice(motif);
        let mut t = vec![b'A'; 8];
        t.extend_from_slice(motif);
        for isa in Isa::ALL {
            if !isa.available() {
                continue;
            }
            let want = sw_score_profile(&s, &t, &ms, 3);
            let mut prof = AffineStripedProfile::new(&s, &ms, isa.lanes());
            // SAFETY: availability checked above.
            let got = match isa {
                Isa::Portable => unsafe {
                    striped_affine_score::<crate::scalar::Portable>(&mut prof, &t, 3)
                },
                #[cfg(target_arch = "x86_64")]
                Isa::Sse2 => unsafe { crate::x86::affine_sse2(&mut prof, &t, 3) },
                #[cfg(target_arch = "x86_64")]
                Isa::Avx2 => unsafe { crate::x86::affine_avx2(&mut prof, &t, 3) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!(),
            };
            assert_eq!(got, want, "isa {}", isa.name());
        }
    }
}
