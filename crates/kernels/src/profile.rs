//! Farrar striped query profile.
//!
//! The striped layout (Farrar 2007, see PAPERS.md: the SSW library and the
//! Knights Landing study both build on it) places query element `q` in
//! stripe `q % p`, lane `q / p`, where `p = ceil(m / LANES)` is the segment
//! length. A vector therefore holds `LANES` query positions that are `p`
//! apart, which makes the intra-column data dependency (the vertical gap
//! chain) span *vectors* instead of *lanes* and lets the whole substitution
//! add run unconditionally.
//!
//! The profile precomputes, for each database symbol `c`, the striped vector
//! sequence `prof[c][k*LANES + l] = subst(s[l*p + k], c)` so the inner loop
//! is a single saturating add per stripe. Rows are built lazily per observed
//! symbol (the DNA alphabet only ever touches 4–5 of the 256 slots).

use genomedsm_core::scoring::Scoring;

/// Sentinel for padding lanes (`q >= m`) and "no value" boundaries.
///
/// Chosen well above `i16::MIN` so that saturating arithmetic on top of it
/// cannot wrap, and low enough that `NEG_INF + max_profile_score` stays
/// far below zero for every scoring scheme admitted by
/// [`fits_i16`](crate::fits_i16).
pub(crate) const NEG_INF: i16 = -30_000;

/// Striped substitution profile for one query sequence at a fixed lane width.
pub(crate) struct StripedProfile {
    /// Query length.
    pub m: usize,
    /// Segment length: number of stripes, `ceil(m / lanes)`.
    pub p: usize,
    /// Vector width in i16 lanes.
    pub lanes: usize,
    /// Linear gap penalty as a positive i16 (`-scoring.gap`).
    pub gap: i16,
    /// Per-stripe byte-granularity validity mask (2 bits per live lane),
    /// matching the `movemask_epi8` convention of [`Engine::gt_bytes`].
    pub valid: Vec<u64>,
    /// Lazily built profile rows, one per database symbol.
    rows: Vec<Option<Box<[i16]>>>,
    seq: Box<[u8]>,
    match_score: i16,
    mismatch: i16,
}

impl StripedProfile {
    /// Builds the profile skeleton; rows are filled on first use.
    ///
    /// Caller must have checked [`fits_i16`](crate::fits_i16) so the three
    /// scoring values are representable.
    pub fn new(s: &[u8], scoring: &Scoring, lanes: usize) -> Self {
        debug_assert!(!s.is_empty());
        let m = s.len();
        let p = m.div_ceil(lanes);
        let mut valid = Vec::with_capacity(p);
        for k in 0..p {
            let mut mask = 0u64;
            for l in 0..lanes {
                if l * p + k < m {
                    mask |= 0b11 << (2 * l);
                }
            }
            valid.push(mask);
        }
        Self {
            m,
            p,
            lanes,
            gap: (-scoring.gap) as i16,
            valid,
            rows: vec![None; 256],
            seq: s.into(),
            match_score: scoring.matches as i16,
            mismatch: scoring.mismatch as i16,
        }
    }

    /// The striped profile row for database symbol `c` (`p * lanes` values).
    pub fn row(&mut self, c: u8) -> &[i16] {
        let slot = &mut self.rows[c as usize];
        if slot.is_none() {
            let mut row = vec![NEG_INF; self.p * self.lanes];
            for (q, &sc) in self.seq.iter().enumerate() {
                let k = q % self.p;
                let l = q / self.p;
                row[k * self.lanes + l] = if sc == c {
                    self.match_score
                } else {
                    self.mismatch
                };
            }
            *slot = Some(row.into_boxed_slice());
        }
        slot.as_deref().unwrap()
    }

    /// Striped buffer index of query element `q`.
    #[inline(always)]
    pub fn index_of(&self, q: usize) -> usize {
        (q % self.p) * self.lanes + q / self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_round_trips_every_query_position() {
        let s = b"ACGTACGTACG"; // 11 elements, lanes=4 -> p=3, one padding lane slot
        let prof = StripedProfile::new(s, &Scoring::paper(), 4);
        assert_eq!(prof.p, 3);
        let mut seen = vec![false; prof.p * prof.lanes];
        for q in 0..s.len() {
            let idx = prof.index_of(q);
            assert!(!seen[idx], "two query elements mapped to slot {idx}");
            seen[idx] = true;
        }
        assert_eq!(seen.iter().filter(|&&b| b).count(), s.len());
    }

    #[test]
    fn profile_row_scores_match_subst() {
        let s = b"ACGTT";
        let sc = Scoring::paper();
        let mut prof = StripedProfile::new(s, &sc, 4);
        let row: Vec<i16> = prof.row(b'T').to_vec();
        for (q, &ch) in s.iter().enumerate() {
            assert_eq!(
                i32::from(row[prof.index_of(q)]),
                sc.subst(ch, b'T'),
                "q={q}"
            );
        }
        // Padding slots carry the sentinel.
        let live: Vec<usize> = (0..s.len()).map(|q| prof.index_of(q)).collect();
        for (idx, &slot) in row.iter().enumerate() {
            if !live.contains(&idx) {
                assert_eq!(slot, NEG_INF);
            }
        }
    }

    #[test]
    fn valid_masks_cover_exactly_the_live_lanes() {
        let prof = StripedProfile::new(b"ACGTA", &Scoring::paper(), 4); // p=2, q=0..5
                                                                        // stripe 0 holds q = 0,2,4 (lanes 0,1,2); stripe 1 holds q = 1,3 (lanes 0,1).
        assert_eq!(prof.valid[0], 0b00_11_11_11);
        assert_eq!(prof.valid[1], 0b00_00_11_11);
    }
}
