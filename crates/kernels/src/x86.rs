//! SSE2 and AVX2 backends via `std::arch::x86_64` (no external crates).
//!
//! Each engine implements the [`Engine`] vocabulary with raw intrinsics and
//! exposes `#[target_feature]` wrappers around the generic routines in
//! [`crate::engine`]; the `#[inline(always)]` generic bodies monomorphize
//! *inside* the wrapper, so the whole recurrence compiles with the wide
//! instruction set enabled. Callers must gate on
//! `is_x86_feature_detected!` before invoking a wrapper.
//!
//! The only non-obvious operation is [`Engine::shift_in`] on AVX2: a 256-bit
//! register is two 128-bit halves and `vpslldq` cannot shift across them, so
//! the lane rotation is `vperm2i128` (to place the low half under the high
//! half) followed by `vpalignr`, then an OR to drop the boundary value into
//! the zeroed lane 0.

#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;

use crate::affine::{
    packed_affine_score, striped_affine_score, AffineStripedProfile, PackedAffineProfile,
};
use crate::batch::{packed_score, PackedProfile};
use crate::engine::{band_advance, striped_score, BandChunkOut, Engine, StripedState};
use crate::profile::StripedProfile;
use genomedsm_core::linear::LinearSwResult;

/// 128-bit engine: 8 × i16 lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sse2;

impl Engine for Sse2 {
    const LANES: usize = 8;
    type V = __m128i;

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn splat(x: i16) -> Self::V {
        _mm_set1_epi16(x)
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled and the pointer is valid for LANES i16s (unaligned ok).
    #[inline(always)]
    unsafe fn load(src: *const i16) -> Self::V {
        _mm_loadu_si128(src.cast())
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled and the pointer is valid for LANES i16s (unaligned ok).
    #[inline(always)]
    unsafe fn store(dst: *mut i16, v: Self::V) {
        _mm_storeu_si128(dst.cast(), v)
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V {
        _mm_adds_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V {
        _mm_subs_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        _mm_max_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn gt_bytes(a: Self::V, b: Self::V) -> u64 {
        _mm_movemask_epi8(_mm_cmpgt_epi16(a, b)) as u32 as u64
    }

    // SAFETY: caller upholds the Engine contract — SSE2 is enabled.
    #[inline(always)]
    unsafe fn shift_in(v: Self::V, first: i16) -> Self::V {
        // Byte-shift toward higher lanes zero-fills lane 0; OR the boundary in.
        let shifted = _mm_slli_si128::<2>(v);
        _mm_or_si128(shifted, _mm_setr_epi16(first, 0, 0, 0, 0, 0, 0, 0))
    }
}

/// 256-bit engine: 16 × i16 lanes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Avx2;

impl Engine for Avx2 {
    const LANES: usize = 16;
    type V = __m256i;

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn splat(x: i16) -> Self::V {
        _mm256_set1_epi16(x)
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled and the pointer is valid for LANES i16s (unaligned ok).
    #[inline(always)]
    unsafe fn load(src: *const i16) -> Self::V {
        _mm256_loadu_si256(src.cast())
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled and the pointer is valid for LANES i16s (unaligned ok).
    #[inline(always)]
    unsafe fn store(dst: *mut i16, v: Self::V) {
        _mm256_storeu_si256(dst.cast(), v)
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn adds(a: Self::V, b: Self::V) -> Self::V {
        _mm256_adds_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn subs(a: Self::V, b: Self::V) -> Self::V {
        _mm256_subs_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn max(a: Self::V, b: Self::V) -> Self::V {
        _mm256_max_epi16(a, b)
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn gt_bytes(a: Self::V, b: Self::V) -> u64 {
        _mm256_movemask_epi8(_mm256_cmpgt_epi16(a, b)) as u32 as u64
    }

    // SAFETY: caller upholds the Engine contract — AVX2 is enabled.
    #[inline(always)]
    unsafe fn shift_in(v: Self::V, first: i16) -> Self::V {
        // [zero, v.low] so vpalignr can pull v.low's top lane into the
        // high half; the whole-register byte shift then zero-fills lane 0.
        let carry = _mm256_permute2x128_si256::<0x08>(v, v);
        let shifted = _mm256_alignr_epi8::<14>(v, carry);
        let boundary = _mm256_setr_epi16(first, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0);
        _mm256_or_si256(shifted, boundary)
    }
}

/// # Safety
/// Caller must have verified SSE2 is available (always true on x86_64, but
/// kept symmetric with AVX2).
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn score_sse2(
    prof: &mut StripedProfile,
    t: &[u8],
    threshold: i32,
) -> LinearSwResult {
    striped_score::<Sse2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified AVX2 via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn score_avx2(
    prof: &mut StripedProfile,
    t: &[u8],
    threshold: i32,
) -> LinearSwResult {
    striped_score::<Avx2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified SSE2 availability.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn band_advance_sse2(
    st: &mut StripedState,
    prof: &mut StripedProfile,
    chunk: &[u8],
    top: &[i32],
    thr_minus_1: Option<i16>,
    out: &mut BandChunkOut<'_>,
) {
    band_advance::<Sse2>(st, prof, chunk, top, thr_minus_1, out)
}

/// # Safety
/// Caller must have verified AVX2 via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn band_advance_avx2(
    st: &mut StripedState,
    prof: &mut StripedProfile,
    chunk: &[u8],
    top: &[i32],
    thr_minus_1: Option<i16>,
    out: &mut BandChunkOut<'_>,
) {
    band_advance::<Avx2>(st, prof, chunk, top, thr_minus_1, out)
}

/// # Safety
/// Caller must have verified SSE2 availability.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn packed_sse2(
    prof: &mut PackedProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    packed_score::<Sse2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified AVX2 via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn packed_avx2(
    prof: &mut PackedProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    packed_score::<Avx2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified SSE2 availability.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn affine_sse2(
    prof: &mut AffineStripedProfile,
    t: &[u8],
    threshold: i32,
) -> LinearSwResult {
    striped_affine_score::<Sse2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified AVX2 via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn affine_avx2(
    prof: &mut AffineStripedProfile,
    t: &[u8],
    threshold: i32,
) -> LinearSwResult {
    striped_affine_score::<Avx2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified SSE2 availability.
#[target_feature(enable = "sse2")]
pub(crate) unsafe fn packed_affine_sse2(
    prof: &mut PackedAffineProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    packed_affine_score::<Sse2>(prof, t, threshold)
}

/// # Safety
/// Caller must have verified AVX2 via `is_x86_feature_detected!`.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn packed_affine_avx2(
    prof: &mut PackedAffineProfile,
    t: &[u8],
    threshold: i32,
) -> Vec<LinearSwResult> {
    packed_affine_score::<Avx2>(prof, t, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sse2_shift_in_matches_portable_semantics() {
        if !is_x86_feature_detected!("sse2") {
            return;
        }
        unsafe {
            let mut src = [0i16; 8];
            for (i, s) in src.iter_mut().enumerate() {
                *s = 10 + i as i16;
            }
            let v = Sse2::load(src.as_ptr());
            let mut out = [0i16; 8];
            Sse2::store(out.as_mut_ptr(), Sse2::shift_in(v, -7));
            assert_eq!(out, [-7, 10, 11, 12, 13, 14, 15, 16]);
        }
    }

    #[test]
    fn avx2_shift_in_crosses_the_128_bit_boundary() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        unsafe {
            let mut src = [0i16; 16];
            for (i, s) in src.iter_mut().enumerate() {
                *s = 100 + i as i16;
            }
            let v = Avx2::load(src.as_ptr());
            let mut out = [0i16; 16];
            Avx2::store(out.as_mut_ptr(), Avx2::shift_in(v, -3));
            let mut want = [0i16; 16];
            want[0] = -3;
            for (l, w) in want.iter_mut().enumerate().skip(1) {
                *w = 100 + (l as i16 - 1);
            }
            assert_eq!(out, want, "lane 8 must receive lane 7 across the halves");
        }
    }

    #[test]
    fn movemask_convention_matches_portable() {
        if !is_x86_feature_detected!("avx2") {
            return;
        }
        unsafe {
            let mut a = [0i16; 16];
            a[0] = 1;
            a[9] = 4;
            a[15] = 2;
            let m = Avx2::gt_bytes(Avx2::load(a.as_ptr()), Avx2::splat(0));
            assert_eq!(m, 0b11 | (0b11 << 18) | (0b11 << 30));
        }
    }
}
