//! Deterministic chaos suite (ISSUE acceptance): all three phase-1
//! strategies and phase 2 must complete under ≥5% per-link drop plus
//! corruption, duplication, and reordering, with scores, hit
//! scoreboards, and alignments **bit-identical** to a fault-free run —
//! and a mid-run node crash in the pre-process strategy must recover
//! from its checkpoint to the identical result matrix.

use genomedsm_chaos::{FaultPlan, SeededFaults};
use genomedsm_core::{HeuristicParams, Scoring};
use genomedsm_dsm::DsmConfig;
use genomedsm_seq::{planted_pair, HomologyPlan};
use genomedsm_strategies::preprocess::{read_saved_columns, SavedColumn};
use genomedsm_strategies::{
    heuristic_align_dsm, heuristic_block_align, phase2_scattered_with, preprocess_align,
    BandScheme, BlockedConfig, ChunkPlan, HeuristicDsmConfig, IoMode, PreprocessConfig,
};
use std::sync::Arc;

const SC: Scoring = Scoring::paper();

fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let (s, t, _) = planted_pair(len, len, &HomologyPlan::paper_density(len * 8), seed);
    (s.into_bytes(), t.into_bytes())
}

fn params() -> HeuristicParams {
    HeuristicParams {
        open_threshold: 8,
        close_threshold: 8,
        min_score: 15,
    }
}

/// The ISSUE's floor: at least 5% loss on every link, plus reordering.
fn chaos(seed: u64, nprocs: usize) -> Arc<SeededFaults> {
    Arc::new(SeededFaults::new(FaultPlan::paper_chaos(seed), nprocs))
}

fn assert_reliability_worked(agg: &genomedsm_dsm::NodeStats) {
    assert!(agg.retransmits > 0, "chaos run never retransmitted");
    assert!(agg.dups_dropped > 0, "chaos run never deduplicated");
}

#[test]
fn heuristic_strategy_is_bit_identical_under_chaos() {
    let (s, t) = workload(400, 91);
    let nprocs = 3;
    let clean = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(nprocs));
    let mut config = HeuristicDsmConfig::new(nprocs);
    config.dsm = config.dsm.faults(chaos(11, nprocs));
    let chaotic = heuristic_align_dsm(&s, &t, &SC, &params(), &config);
    assert_eq!(clean.regions, chaotic.regions);
    assert_reliability_worked(&chaotic.aggregate());
}

#[test]
fn blocked_strategy_is_bit_identical_under_chaos() {
    let (s, t) = workload(500, 92);
    let nprocs = 4;
    let clean = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(nprocs, 8, 8));
    let mut config = BlockedConfig::new(nprocs, 8, 8);
    config.dsm = config.dsm.faults(chaos(12, nprocs));
    let chaotic = heuristic_block_align(&s, &t, &SC, &params(), &config);
    assert_eq!(clean.regions, chaotic.regions);
    assert_reliability_worked(&chaotic.aggregate());
}

fn pp_config(nprocs: usize) -> PreprocessConfig {
    let mut config = PreprocessConfig::new(nprocs);
    config.band = BandScheme::Fixed(48);
    config.chunk = ChunkPlan::Fixed(64);
    config.threshold = 12;
    config.result_interleave = 50;
    config
}

#[test]
fn preprocess_scoreboard_is_bit_identical_under_chaos() {
    let (s, t) = workload(300, 93);
    let nprocs = 3;
    let clean = preprocess_align(&s, &t, &SC, &pp_config(nprocs)).unwrap();
    let mut config = pp_config(nprocs);
    config.dsm = config.dsm.faults(chaos(13, nprocs));
    let chaotic = preprocess_align(&s, &t, &SC, &config).unwrap();
    assert_eq!(clean.result, chaotic.result, "hit scoreboard diverged");
    assert_eq!(clean.best_score, chaotic.best_score);
    let mut agg = genomedsm_dsm::NodeStats::default();
    for st in &chaotic.per_node {
        agg.merge(st);
    }
    assert_reliability_worked(&agg);
}

#[test]
fn phase2_alignments_are_bit_identical_under_chaos() {
    let (s, t) = workload(600, 94);
    let regions = genomedsm_core::heuristic_align(&s, &t, &SC, &params());
    assert!(!regions.is_empty(), "need regions for phase 2");
    let nprocs = 4;
    let clean_cfg = DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster());
    let clean = phase2_scattered_with(&s, &t, &regions, &SC, &clean_cfg).unwrap();
    let chaotic_cfg = clean_cfg.faults(chaos(14, nprocs));
    let chaotic = phase2_scattered_with(&s, &t, &regions, &SC, &chaotic_cfg).unwrap();
    assert_eq!(clean.alignments, chaotic.alignments);
    assert_reliability_worked(&chaotic.aggregate());
}

fn recoveries(out: &genomedsm_strategies::PreprocessOutcome) -> u64 {
    out.per_node.iter().map(|s| s.recoveries).sum()
}

#[test]
fn preprocess_crash_recovers_from_checkpoint_to_identical_matrix() {
    let (s, t) = workload(300, 95);
    let nprocs = 3;
    // Fault-free reference (no checkpointing at all).
    let clean = preprocess_align(&s, &t, &SC, &pp_config(nprocs)).unwrap();
    // Crash node 1 after it completes its 4th chunk; quiet links so the
    // only disturbance is the fail-stop itself.
    let mut config = pp_config(nprocs);
    config.checkpoint = true;
    config.dsm = config.dsm.faults(Arc::new(SeededFaults::new(
        FaultPlan::quiet(7).with_crash(1, 4),
        nprocs,
    )));
    let crashed = preprocess_align(&s, &t, &SC, &config).unwrap();
    assert_eq!(clean.result, crashed.result, "recovery diverged");
    assert_eq!(clean.best_score, crashed.best_score);
    assert_eq!(recoveries(&crashed), 1, "the crash must have fired");
    let rt: std::time::Duration = crashed.per_node.iter().map(|s| s.recovery_time).sum();
    assert!(rt > std::time::Duration::ZERO);
    // And the downtime must be visible in the recovering node's clock.
    assert!(crashed.wall > clean.wall);
}

#[test]
fn preprocess_crash_under_chaos_keeps_saved_columns_bit_identical() {
    // The hardest combination: lossy, reordering links AND a mid-run
    // crash, with immediate column I/O. The durable-write cursor must
    // keep the files free of duplicates and holes.
    let (s, t) = workload(250, 96);
    let nprocs = 2;
    let dir = std::env::temp_dir().join("genomedsm_chaos_crash_cols");
    let run = |sub: &str, faulty: bool| {
        let d = dir.join(sub);
        std::fs::create_dir_all(&d).unwrap();
        let mut config = pp_config(nprocs);
        config.save_interleave = 20;
        config.io_mode = IoMode::Immediate;
        config.save_dir = Some(d);
        if faulty {
            config.checkpoint = true;
            config.dsm = config.dsm.faults(Arc::new(SeededFaults::new(
                FaultPlan::paper_chaos(17).with_crash(1, 2),
                nprocs,
            )));
        }
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let mut cols: Vec<SavedColumn> = out
            .files
            .iter()
            .flat_map(|f| read_saved_columns(f).unwrap())
            .collect();
        cols.sort_by_key(|c| (c.band, c.col));
        (out, cols)
    };
    let (clean, clean_cols) = run("clean", false);
    let (crashed, crashed_cols) = run("crashed", true);
    assert_eq!(clean.result, crashed.result);
    assert_eq!(clean_cols, crashed_cols, "saved columns diverged");
    assert!(!clean_cols.is_empty(), "test needs saved columns");
    assert_eq!(recoveries(&crashed), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_suite_is_deterministic_across_runs() {
    // Same seeds → identical data, run-to-run: the fate of every
    // transmission is a pure hash of the transmission identity, never of
    // host thread scheduling. (Virtual *time* may still vary slightly
    // across runs — daemon serving order is real-time dependent — but
    // every score and scoreboard cell must be exact.)
    let (s, t) = workload(250, 97);
    let nprocs = 3;
    let run = || {
        let mut config = pp_config(nprocs);
        config.dsm = config.dsm.faults(chaos(23, nprocs));
        preprocess_align(&s, &t, &SC, &config).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.result, b.result);
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.total_hits(), b.total_hits());
}
