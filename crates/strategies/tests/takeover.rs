//! Degradation suite (ISSUE acceptance): on an 8-node cluster, killing
//! 1–3 nodes mid-run must leave every phase-1 strategy and phase 2
//! completing on the survivors with results **bit-identical** to a
//! fault-free run — including the pre-process strategy's saved-column
//! files, whose dead owners' contents are reproduced by the adopters.

use genomedsm_core::{HeuristicParams, Scoring};
use genomedsm_seq::{planted_pair, HomologyPlan};
use genomedsm_strategies::{
    heuristic_align_dsm, heuristic_block_align, phase2_scattered_with, preprocess_align,
    BandScheme, BlockedConfig, ChunkPlan, HeuristicDsmConfig, IoMode, KillPlan, PreprocessConfig,
};
use std::sync::Arc;

const SC: Scoring = Scoring::paper();
const NPROCS: usize = 8;

fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let (s, t, _) = planted_pair(len, len, &HomologyPlan::paper_density(len * 8), seed);
    (s.into_bytes(), t.into_bytes())
}

fn params() -> HeuristicParams {
    HeuristicParams {
        open_threshold: 8,
        close_threshold: 8,
        min_score: 15,
    }
}

fn supervise(dsm: genomedsm_dsm::DsmConfig) -> genomedsm_dsm::DsmConfig {
    dsm.supervise(genomedsm_dsm::SupervisionConfig {
        enabled: true,
        detect_after: std::time::Duration::from_millis(40),
        watchdog: std::time::Duration::from_millis(400),
    })
}

/// Kills nodes `1..=k` at staggered work-unit counts so the deaths land
/// mid-run, at different depths of the wavefront.
fn kills(k: usize, stagger: &[u64]) -> Arc<KillPlan> {
    let mut plan = KillPlan::new();
    for victim in 1..=k {
        plan = plan.kill(victim, stagger[victim - 1]);
    }
    Arc::new(plan)
}

#[test]
fn heuristic_degrades_bit_identically_with_1_to_3_deaths() {
    let (s, t) = workload(400, 41);
    let expect = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(NPROCS));
    assert!(!expect.regions.is_empty(), "workload must find regions");
    for k in 0..=3 {
        let mut config = HeuristicDsmConfig::new(NPROCS);
        config.dsm = supervise(config.dsm);
        if k > 0 {
            config.dsm = config.dsm.faults(kills(k, &[40, 90, 140]));
        }
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, expect.regions, "k={k}: regions diverged");
        let agg = out.aggregate();
        if k > 0 {
            assert!(agg.takeovers >= k as u64, "k={k}: too few takeovers");
            assert_eq!(agg.obituaries % NPROCS as u64, 0);
        } else {
            assert_eq!(agg.takeovers, 0, "fault-free run took over work");
        }
    }
}

#[test]
fn blocked_degrades_bit_identically_with_1_to_3_deaths() {
    let (s, t) = workload(500, 42);
    let expect = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(NPROCS, 16, 8));
    assert!(!expect.regions.is_empty(), "workload must find regions");
    for k in 0..=3 {
        let mut config = BlockedConfig::new(NPROCS, 16, 8);
        config.dsm = supervise(config.dsm);
        if k > 0 {
            config.dsm = config.dsm.faults(kills(k, &[5, 9, 13]));
        }
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, expect.regions, "k={k}: regions diverged");
        if k > 0 {
            assert!(
                out.aggregate().takeovers >= k as u64,
                "k={k}: too few takeovers"
            );
        }
    }
}

fn pp_config(dir: &std::path::Path) -> PreprocessConfig {
    let mut config = PreprocessConfig::new(NPROCS);
    config.band = BandScheme::Fixed(48);
    config.chunk = ChunkPlan::Fixed(64);
    config.threshold = 12;
    config.result_interleave = 50;
    config.save_interleave = 16;
    config.io_mode = IoMode::Immediate;
    config.save_dir = Some(dir.to_path_buf());
    config
}

#[test]
fn preprocess_degrades_bit_identically_including_saved_files() {
    let (s, t) = workload(300, 43);
    let dir = std::env::temp_dir().join("genomedsm_takeover_pp");
    let run = |sub: String, k: usize| {
        let d = dir.join(sub);
        std::fs::create_dir_all(&d).unwrap();
        let mut config = pp_config(&d);
        if k > 0 {
            config.dsm = supervise(config.dsm).faults(kills(k, &[2, 3, 4]));
        }
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let mut files: Vec<(String, Vec<u8>)> = out
            .files
            .iter()
            .map(|f| {
                let name = f.file_name().unwrap().to_string_lossy().into_owned();
                (name, std::fs::read(f).unwrap())
            })
            .collect();
        files.sort();
        (out, files)
    };
    let (expect, expect_files) = run("clean".into(), 0);
    assert!(!expect_files.is_empty(), "test needs saved-column files");
    for k in 1..=3 {
        let (out, files) = run(format!("k{k}"), k);
        assert_eq!(out.result, expect.result, "k={k}: scoreboard diverged");
        assert_eq!(out.best_score, expect.best_score, "k={k}");
        assert_eq!(files, expect_files, "k={k}: saved-column files diverged");
        let takeovers: u64 = out.per_node.iter().map(|st| st.takeovers).sum();
        assert!(takeovers >= k as u64, "k={k}: too few takeovers");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase2_degrades_bit_identically_with_1_to_3_deaths() {
    let (s, t, _) = planted_pair(900, 900, &HomologyPlan::paper_density(900 * 8), 31);
    let (s, t) = (s.into_bytes(), t.into_bytes());
    let regions = genomedsm_core::heuristic_align(&s, &t, &SC, &params());
    assert!(regions.len() >= 4, "need enough regions for the sweep");
    let clean_cfg =
        genomedsm_dsm::DsmConfig::new(NPROCS).network(genomedsm_dsm::NetworkModel::paper_cluster());
    let expect = phase2_scattered_with(&s, &t, &regions, &SC, &clean_cfg).unwrap();
    for k in 1..=3 {
        let config = supervise(clean_cfg.clone()).faults(kills(k, &[1, 1, 1]));
        let out = phase2_scattered_with(&s, &t, &regions, &SC, &config).unwrap();
        assert_eq!(
            out.alignments, expect.alignments,
            "k={k}: alignments diverged"
        );
        assert!(
            out.aggregate().takeovers >= k as u64,
            "k={k}: too few takeovers"
        );
    }
}
