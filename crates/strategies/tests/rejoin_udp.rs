//! Elastic membership over the real-socket transport: a 4-rank UDP
//! cluster (threads standing in for processes, each with its own socket
//! and its own strategy call — exactly the multi-process path) kills one
//! rank mid-run, readmits it at the next workload boundary, and must
//! produce results bit-identical to a clean in-process run. The `Rejoin`
//! announcement, the deferred admission, and the `RejoinAck` all travel
//! as real datagrams through the reliability sublayer here.

use genomedsm_core::{HeuristicParams, Scoring};
use genomedsm_dsm::{ClusterCtx, ClusterManifest, DsmConfig, SupervisionConfig};
use genomedsm_seq::{planted_pair, HomologyPlan};
use genomedsm_strategies::{heuristic_block_align, BlockedConfig, KillPlan};
use std::net::UdpSocket;
use std::sync::Arc;

const NPROCS: usize = 4;
const SC: Scoring = Scoring::paper();

fn params() -> HeuristicParams {
    HeuristicParams {
        open_threshold: 8,
        close_threshold: 8,
        min_score: 15,
    }
}

/// Reserves `n` distinct loopback ports by binding ephemeral sockets,
/// then releasing them for the transports to rebind.
fn fresh_manifest(n: usize) -> ClusterManifest {
    let holds: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    let nodes = holds
        .iter()
        .map(|s| s.local_addr().expect("local addr"))
        .collect();
    drop(holds);
    ClusterManifest::new(nodes)
}

fn supervise(dsm: DsmConfig) -> DsmConfig {
    dsm.supervise(SupervisionConfig {
        enabled: true,
        detect_after: std::time::Duration::from_millis(40),
        watchdog: std::time::Duration::from_millis(1_000),
    })
}

#[test]
fn four_ranks_over_udp_kill_then_rejoin_bit_identical() {
    let (s, t, _) = planted_pair(500, 500, &HomologyPlan::paper_density(500 * 8), 42);
    let (s, t) = (s.into_bytes(), t.into_bytes());

    // Reference: clean in-process simulation of the same workload.
    let expect = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(NPROCS, 16, 8));
    assert!(!expect.regions.is_empty(), "workload must find regions");

    // Socket cluster: rank 2 dies after 5 blocks and rejoins after 8
    // units of virtual downtime. Every rank runs the strategy itself;
    // the kill plan is part of the deterministic config, so each process
    // consults the same schedule for its own worker.
    let manifest = fresh_manifest(NPROCS);
    let plan = Arc::new(KillPlan::new().kill(2, 5).rejoin(2, 8));
    let mut handles = Vec::new();
    for rank in 0..NPROCS {
        let manifest = manifest.clone();
        let (s, t, plan) = (s.clone(), t.clone(), Arc::clone(&plan));
        handles.push(std::thread::spawn(move || {
            let ctx = ClusterCtx::new(rank, manifest, 77).expect("ctx");
            let mut config = BlockedConfig::new(NPROCS, 16, 8);
            config.dsm = supervise(config.dsm).faults(plan).cluster(ctx);
            let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
            (out.regions, out.per_node[rank].clone())
        }));
    }
    let outs: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect();

    for (rank, (regions, _)) in outs.iter().enumerate() {
        assert_eq!(
            regions, &expect.regions,
            "rank {rank}: UDP kill+rejoin run diverged from the clean run"
        );
    }
    let rejoins: u64 = outs.iter().map(|(_, st)| st.rejoins).sum();
    assert_eq!(rejoins, 1, "the victim must rejoin exactly once over UDP");
    let takeovers: u64 = outs.iter().map(|(_, st)| st.takeovers).sum();
    assert!(takeovers >= 1, "a survivor must adopt the victim's role");
    // The announcement and ack really crossed the wire.
    let datagrams: u64 = outs.iter().map(|(_, st)| st.datagrams_sent).sum();
    assert!(datagrams > 0, "no datagrams moved");
}
