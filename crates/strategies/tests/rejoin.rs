//! Elastic-membership suite (ISSUE acceptance): killing nodes mid-run
//! and scheduling them to **rejoin** must leave every phase-1 strategy
//! and phase 2 with results bit-identical to a fault-free run, end the
//! run with full membership (the joiner is re-admitted at the closing
//! boundary), and — in a multi-round campaign — recover the cluster's
//! throughput after the boundary handback instead of staying degraded
//! at N−k.

use genomedsm_core::{HeuristicParams, Scoring};
use genomedsm_seq::{planted_pair, HomologyPlan};
use genomedsm_strategies::{
    heuristic_align_dsm, heuristic_block_align, heuristic_campaign, phase2_scattered_with,
    preprocess_align, BandScheme, BlockedConfig, ChunkPlan, HeuristicDsmConfig, IoMode, KillPlan,
    PreprocessConfig,
};
use std::sync::Arc;

const SC: Scoring = Scoring::paper();
const NPROCS: usize = 8;

fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
    let (s, t, _) = planted_pair(len, len, &HomologyPlan::paper_density(len * 8), seed);
    (s.into_bytes(), t.into_bytes())
}

fn params() -> HeuristicParams {
    HeuristicParams {
        open_threshold: 8,
        close_threshold: 8,
        min_score: 15,
    }
}

fn supervise(dsm: genomedsm_dsm::DsmConfig) -> genomedsm_dsm::DsmConfig {
    dsm.supervise(genomedsm_dsm::SupervisionConfig {
        enabled: true,
        detect_after: std::time::Duration::from_millis(40),
        watchdog: std::time::Duration::from_millis(400),
    })
}

/// Kills nodes `1..=k` at staggered work-unit counts and schedules each
/// to rejoin after a short virtual downtime.
fn kill_rejoin(k: usize, stagger: &[u64]) -> Arc<KillPlan> {
    let mut plan = KillPlan::new();
    for victim in 1..=k {
        plan = plan.kill(victim, stagger[victim - 1]).rejoin(victim, 8);
    }
    Arc::new(plan)
}

#[test]
fn heuristic_kill_then_rejoin_is_bit_identical_and_readmits() {
    let (s, t) = workload(400, 41);
    let expect = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(NPROCS));
    assert!(!expect.regions.is_empty(), "workload must find regions");
    for k in 1..=2 {
        let mut config = HeuristicDsmConfig::new(NPROCS);
        config.dsm = supervise(config.dsm).faults(kill_rejoin(k, &[40, 90]));
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, expect.regions, "k={k}: regions diverged");
        let agg = out.aggregate();
        assert_eq!(agg.rejoins, k as u64, "k={k}: every victim rejoins");
        assert!(agg.takeovers >= k as u64, "k={k}: too few takeovers");
    }
}

#[test]
fn blocked_kill_then_rejoin_is_bit_identical_and_readmits() {
    let (s, t) = workload(500, 42);
    let expect = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(NPROCS, 16, 8));
    assert!(!expect.regions.is_empty(), "workload must find regions");
    for k in 1..=2 {
        let mut config = BlockedConfig::new(NPROCS, 16, 8);
        config.dsm = supervise(config.dsm).faults(kill_rejoin(k, &[5, 9]));
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, expect.regions, "k={k}: regions diverged");
        assert_eq!(out.aggregate().rejoins, k as u64, "k={k}");
    }
}

#[test]
fn preprocess_kill_then_rejoin_keeps_saved_files_bit_identical() {
    let (s, t) = workload(300, 43);
    let dir = std::env::temp_dir().join("genomedsm_rejoin_pp");
    let run = |sub: String, plan: Option<Arc<KillPlan>>| {
        let d = dir.join(sub);
        std::fs::create_dir_all(&d).unwrap();
        let mut config = PreprocessConfig::new(NPROCS);
        config.band = BandScheme::Fixed(48);
        config.chunk = ChunkPlan::Fixed(64);
        config.threshold = 12;
        config.result_interleave = 50;
        config.save_interleave = 16;
        config.io_mode = IoMode::Immediate;
        config.save_dir = Some(d);
        if let Some(plan) = plan {
            config.dsm = supervise(config.dsm).faults(plan);
        }
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let mut files: Vec<(String, Vec<u8>)> = out
            .files
            .iter()
            .map(|f| {
                let name = f.file_name().unwrap().to_string_lossy().into_owned();
                (name, std::fs::read(f).unwrap())
            })
            .collect();
        files.sort();
        (out, files)
    };
    let (expect, expect_files) = run("clean".into(), None);
    assert!(!expect_files.is_empty(), "test needs saved-column files");
    let (out, files) = run("rejoin".into(), Some(kill_rejoin(1, &[3])));
    assert_eq!(out.result, expect.result, "scoreboard diverged");
    assert_eq!(out.best_score, expect.best_score);
    assert_eq!(
        files, expect_files,
        "joiner-era saved-column files must be byte-identical"
    );
    assert_eq!(out.per_node.iter().map(|st| st.rejoins).sum::<u64>(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn phase2_kill_then_rejoin_is_bit_identical_and_readmits() {
    let (s, t, _) = planted_pair(900, 900, &HomologyPlan::paper_density(900 * 8), 31);
    let (s, t) = (s.into_bytes(), t.into_bytes());
    let regions = genomedsm_core::heuristic_align(&s, &t, &SC, &params());
    assert!(regions.len() >= 4, "need enough regions");
    let clean_cfg =
        genomedsm_dsm::DsmConfig::new(NPROCS).network(genomedsm_dsm::NetworkModel::paper_cluster());
    let expect = phase2_scattered_with(&s, &t, &regions, &SC, &clean_cfg).unwrap();
    for k in 1..=2 {
        let config = supervise(clean_cfg.clone()).faults(kill_rejoin(k, &[1, 1]));
        let out = phase2_scattered_with(&s, &t, &regions, &SC, &config).unwrap();
        assert_eq!(
            out.alignments, expect.alignments,
            "k={k}: alignments diverged"
        );
        assert_eq!(
            out.per_node.iter().map(|st| st.rejoins).sum::<u64>(),
            k as u64,
            "k={k}: every victim rejoins"
        );
    }
}

#[test]
fn campaign_recovers_throughput_after_the_boundary_handback() {
    // Three workload rounds. A kill in round 0 with a scheduled rejoin
    // restores full membership from round 1 on; a permanent kill leaves
    // rounds 1..3 degraded at N−1. Every round of every scenario must
    // still be bit-identical to the fault-free workload, and the elastic
    // run's post-rejoin rounds must beat the degraded ones.
    let (s, t) = workload(400, 44);
    let rounds = 3usize;

    let mut clean_cfg = HeuristicDsmConfig::new(NPROCS);
    clean_cfg.dsm = supervise(clean_cfg.dsm);
    let clean = heuristic_campaign(&s, &t, &SC, &params(), &clean_cfg, rounds);
    assert!(
        !clean.rounds[0].regions.is_empty(),
        "workload finds regions"
    );

    let mut elastic_cfg = HeuristicDsmConfig::new(NPROCS);
    elastic_cfg.dsm =
        supervise(elastic_cfg.dsm).faults(Arc::new(KillPlan::new().kill(2, 40).rejoin(2, 8)));
    let elastic = heuristic_campaign(&s, &t, &SC, &params(), &elastic_cfg, rounds);

    let mut degraded_cfg = HeuristicDsmConfig::new(NPROCS);
    degraded_cfg.dsm = supervise(degraded_cfg.dsm).faults(Arc::new(KillPlan::new().kill(2, 40)));
    let degraded = heuristic_campaign(&s, &t, &SC, &params(), &degraded_cfg, rounds);

    for w in 0..rounds {
        assert_eq!(
            elastic.rounds[w].regions, clean.rounds[w].regions,
            "round {w}: elastic run diverged"
        );
        assert_eq!(
            degraded.rounds[w].regions, clean.rounds[w].regions,
            "round {w}: degraded run diverged"
        );
    }
    assert_eq!(
        elastic.per_node.iter().map(|st| st.rejoins).sum::<u64>(),
        1,
        "the victim rejoins exactly once"
    );
    // Post-rejoin rounds run at full strength: strictly faster than the
    // permanently degraded cluster's same rounds.
    for w in 1..rounds {
        assert!(
            elastic.rounds[w].wall < degraded.rounds[w].wall,
            "round {w}: elastic {:?} must beat degraded {:?}",
            elastic.rounds[w].wall,
            degraded.rounds[w].wall
        );
    }
}
