//! Parallel Section-6 recovery — the paper's §7 immediate future work:
//! "we intend to implement the modifications suggested in Section 6 ...
//! in order to compare very long DNA sequences".
//!
//! Stage 1 (the linear-space end-point scan) is a single wavefront-free
//! pass; stage 2 recovers each end point independently over the reversed
//! prefixes — embarrassingly parallel, so a rayon pool maps directly onto
//! it. The greedy covered-end filter runs after all recoveries and yields
//! exactly the set the serial [`genomedsm_core::reverse::reverse_align_all`]
//! produces (the filter only consults regions that sort earlier).

use genomedsm_core::reverse::{filter_covered, recover_end, sorted_ends, RecoveredAlignment};
use genomedsm_core::Scoring;
use rayon::prelude::*;

/// Parallel version of [`genomedsm_core::reverse::reverse_align_all`]:
/// recovers every end point scoring at least `min_score` on a rayon pool
/// of `threads` workers.
pub fn reverse_align_all_parallel(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    min_score: i32,
    threads: usize,
) -> Vec<RecoveredAlignment> {
    let ends = sorted_ends(s, t, scoring, min_score);
    let pool = match rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
    {
        Ok(pool) => pool,
        Err(e) => panic!("rayon pool construction cannot fail for >= 1 threads: {e}"),
    };
    let recovered: Vec<RecoveredAlignment> = pool.install(|| {
        ends.par_iter()
            .filter_map(|&end| recover_end(s, t, scoring, end))
            .collect()
    });
    filter_covered(recovered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::reverse::reverse_align_all;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    const SC: Scoring = Scoring::paper();

    #[test]
    fn parallel_equals_serial() {
        let (s, t, _) = planted_pair(600, 600, &HomologyPlan::paper_density(4_000), 61);
        let serial = reverse_align_all(&s, &t, &SC, 20);
        assert!(!serial.is_empty(), "workload must contain alignments");
        for threads in [1, 2, 4] {
            let par = reverse_align_all_parallel(&s, &t, &SC, 20, threads);
            assert_eq!(par.len(), serial.len(), "threads={threads}");
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.region, b.region);
                assert_eq!(a.alignment, b.alignment);
            }
        }
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert!(reverse_align_all_parallel(b"", b"ACGT", &SC, 5, 2).is_empty());
    }

    #[test]
    fn recoveries_are_exact() {
        let (s, t, _) = planted_pair(400, 400, &HomologyPlan::paper_density(3_000), 62);
        for rec in reverse_align_all_parallel(&s, &t, &SC, 25, 2) {
            // The rebuilt alignment over the recovered window scores the
            // detected score exactly.
            assert_eq!(rec.alignment.score, rec.region.score);
            assert_eq!(rec.alignment.score, rec.alignment.recompute_score(&SC));
        }
    }
}
