//! Era-calibrated virtual-time cost model.
//!
//! The reproduction runs on a simulated cluster with virtual clocks (see
//! `genomedsm-dsm`). Computation advances a node's clock by
//! `cells × cell cost`; the per-cell costs here are calibrated to the
//! paper's own measurements on its Pentium II 350 MHz nodes:
//!
//! * **Heuristic cell** (the §4.1 kernel with candidate metadata):
//!   Table 1's serial run on the 50 kBP pair takes 3461 s for
//!   50 000 × 50 000 cells → **1.38 µs per cell** (the 15 kBP row gives
//!   1.32 µs — consistent). We use 1.4 µs.
//! * **Plain SW cell** (the §5 pre-process kernel, scores only): Fig. 19's
//!   sequential 80 kBP runs sit near 900 s for 6.4·10⁹ cells →
//!   **~140 ns per cell**, an order of magnitude cheaper than the
//!   metadata-heavy heuristic cell, matching the paper's motivation for
//!   the strategy.
//! * **Global-alignment cell** (phase 2's NW with traceback): not
//!   directly reported; we take 250 ns (between the two, as NW keeps the
//!   full matrix but no candidate metadata). Fig. 15 reports only
//!   speed-ups, which are insensitive to this constant.
//!
//! [`measured_hcell_cost`] and [`measured_plain_cost`] calibrate the
//! *host's* real kernel speed instead, for modern-hardware what-if runs.

use genomedsm_core::{HCell, HeuristicParams, RowKernel, Scoring};
use std::time::Duration;

/// Era cost of one heuristic (§4.1) cell update.
pub const HCELL_CELL: Duration = Duration::from_nanos(1400);

/// Era cost of one plain SW (§5) cell update.
pub const PLAIN_CELL: Duration = Duration::from_nanos(140);

/// Era cost of one global-alignment (phase 2) cell.
pub const NW_CELL: Duration = Duration::from_nanos(250);

/// Virtual duration of `cells` cell updates at `per_cell`.
#[inline]
pub fn cells(per_cell: Duration, cells: usize) -> Duration {
    Duration::from_nanos(per_cell.as_nanos() as u64 * cells as u64)
}

/// Measures this host's real heuristic-kernel speed (ns/cell) by timing a
/// ~1M-cell run. Use for modern-hardware simulations.
pub fn measured_hcell_cost() -> Duration {
    let kernel = RowKernel::new(
        Scoring::paper(),
        HeuristicParams {
            open_threshold: 10,
            close_threshold: 10,
            min_score: 1000,
        },
    );
    let n = 1024usize;
    let rows = 1024usize;
    let t: Vec<u8> = (0..n).map(|i| b"ACGT"[i % 4]).collect();
    let mut prev = vec![HCell::fresh(); n + 1];
    let mut cur = vec![HCell::fresh(); n + 1];
    let mut queue = Vec::new();
    let t0 = std::time::Instant::now();
    for i in 1..=rows {
        cur[0] = HCell::fresh();
        kernel.process_row_segment(i, b"ACGT"[i % 4], &t, 1, &prev, &mut cur, &mut queue);
        std::mem::swap(&mut prev, &mut cur);
    }
    let dt = t0.elapsed();
    std::hint::black_box(&prev);
    Duration::from_nanos((dt.as_nanos() as u64 / (rows * n) as u64).max(1))
}

/// Measures this host's real plain-SW-kernel speed (ns/cell).
pub fn measured_plain_cost() -> Duration {
    let scoring = Scoring::paper();
    let n = 1024usize;
    let rows = 1024usize;
    let s: Vec<u8> = (0..rows).map(|i| b"ACGT"[(i * 3) % 4]).collect();
    let t: Vec<u8> = (0..n).map(|i| b"ACGT"[i % 4]).collect();
    let t0 = std::time::Instant::now();
    let r = genomedsm_core::linear::sw_score_linear(&s, &t, &scoring, i32::MAX);
    let dt = t0.elapsed();
    std::hint::black_box(r);
    Duration::from_nanos((dt.as_nanos() as u64 / (rows * n) as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_scales_linearly() {
        assert_eq!(
            cells(Duration::from_nanos(100), 1000),
            Duration::from_micros(100)
        );
        assert_eq!(cells(HCELL_CELL, 0), Duration::ZERO);
    }

    #[test]
    fn era_costs_are_ordered() {
        // The metadata-heavy kernel must cost more than the plain one.
        assert!(HCELL_CELL > NW_CELL);
        assert!(NW_CELL > PLAIN_CELL);
    }

    #[test]
    fn host_calibration_returns_something_sane() {
        let h = measured_hcell_cost();
        assert!(h >= Duration::from_nanos(1));
        assert!(
            h < Duration::from_micros(50),
            "kernel unreasonably slow: {h:?}"
        );
    }
}
