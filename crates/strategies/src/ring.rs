//! A flow-controlled chunk ring between two DSM nodes.
//!
//! Both parallel heuristic strategies move border data from a producer
//! node to a consumer node through shared memory, synchronized by a pair
//! of condition variables (the JIAJIA pattern of §4.2: "processor 0 ...
//! writes this value on the shared memory and signals processor 1, which
//! is waiting on a condition variable"). [`ChunkRing`] generalizes that
//! one-slot protocol to a ring of `capacity` slots of `slot_len` elements:
//!
//! * strategy 1 (no blocking factors) uses `capacity = 1, slot_len = 1` —
//!   each border value is passed individually;
//! * strategy 2 (blocking factors) uses one slot per block of a band —
//!   border rows travel as chunks, amortizing the synchronization.
//!
//! The condition variables count (semaphore semantics), so producer and
//! consumer may be the same node (single-processor degenerate runs).

use genomedsm_dsm::{DsmData, DsmError, GlobalVec, Node};

/// One directional ring between a fixed producer and consumer node.
///
/// SPMD usage: *all* nodes construct the ring identically (the allocation
/// is collective); only the producer calls [`ChunkRing::push`] and only
/// the consumer calls [`ChunkRing::pop`].
#[derive(Debug)]
pub struct ChunkRing<T: DsmData> {
    slots: GlobalVec<T>,
    slot_len: usize,
    capacity: usize,
    data_cv: u32,
    ack_cv: u32,
    /// Producer-side: sequence of the next chunk to write.
    seq_prod: u64,
    /// Producer-side: free slots remaining before a wait is needed.
    credits: usize,
    /// Consumer-side: sequence of the next chunk to read.
    seq_cons: u64,
}

impl<T: DsmData + Copy> ChunkRing<T> {
    /// Collectively allocates a ring of `capacity` slots of `slot_len`
    /// elements, homed on `home` (normally the producer), using condition
    /// variables `data_cv` and `ack_cv` (must be globally unique).
    pub fn new(
        node: &mut Node,
        capacity: usize,
        slot_len: usize,
        home: usize,
        data_cv: u32,
        ack_cv: u32,
    ) -> Self {
        assert!(capacity >= 1 && slot_len >= 1, "degenerate ring");
        assert_ne!(data_cv, ack_cv, "cv ids must differ");
        let slots = node.alloc_vec_on::<T>(capacity * slot_len, home);
        Self {
            slots,
            slot_len,
            capacity,
            data_cv,
            ack_cv,
            seq_prod: 0,
            credits: capacity,
            seq_cons: 0,
        }
    }

    /// Maximum elements per chunk.
    pub fn slot_len(&self) -> usize {
        self.slot_len
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The data-available condition variable id.
    pub fn data_cv(&self) -> u32 {
        self.data_cv
    }

    /// The slot-acknowledged condition variable id.
    pub fn ack_cv(&self) -> u32 {
        self.ack_cv
    }

    /// Repositions the consumer cursor (takeover: an adopter that replayed
    /// the first `seq` chunks from the producer's push log resumes real
    /// pops at ordinal `seq`). The pending data signals at the cv manager
    /// already account for the dead consumer's consumed waits, so counting
    /// semantics stay consistent.
    pub fn set_consumer_cursor(&mut self, seq: u64) {
        self.seq_cons = seq;
    }

    /// Producer: writes `data` (at most `slot_len` elements) into the next
    /// slot and signals the consumer. Blocks while the ring is full.
    pub fn push(&mut self, node: &mut Node, data: &[T]) {
        assert!(data.len() <= self.slot_len, "chunk exceeds slot");
        if self.credits == 0 {
            node.waitcv(self.ack_cv);
            self.credits += 1;
        }
        self.credits -= 1;
        let base = (self.seq_prod as usize % self.capacity) * self.slot_len;
        node.vec_write_range(&self.slots, base, data);
        node.setcv(self.data_cv); // release: flush diffs, carry notices
        self.seq_prod += 1;
    }

    /// Consumer: waits for the next chunk and reads `len` elements from it,
    /// then acknowledges the slot.
    pub fn pop(&mut self, node: &mut Node, len: usize) -> Vec<T> {
        assert!(len <= self.slot_len, "read exceeds slot");
        node.waitcv(self.data_cv); // acquire: invalidate noticed pages
        let base = (self.seq_cons as usize % self.capacity) * self.slot_len;
        let out = node.vec_read_range(&self.slots, base..base + len);
        node.setcv(self.ack_cv);
        self.seq_cons += 1;
        out
    }

    /// [`ChunkRing::push`] that surfaces a [`DsmError::NodeFailed`] from
    /// the full-ring wait instead of panicking, so a tolerant strategy can
    /// unwind into takeover. The slot is only written once the credit wait
    /// succeeds, so an erroring push leaves the ring untouched.
    pub fn try_push(&mut self, node: &mut Node, data: &[T]) -> Result<(), DsmError> {
        assert!(data.len() <= self.slot_len, "chunk exceeds slot");
        if self.credits == 0 {
            node.try_waitcv(self.ack_cv)?;
            self.credits += 1;
        }
        self.credits -= 1;
        let base = (self.seq_prod as usize % self.capacity) * self.slot_len;
        node.vec_write_range(&self.slots, base, data);
        node.setcv(self.data_cv);
        self.seq_prod += 1;
        Ok(())
    }

    /// [`ChunkRing::pop`] that surfaces a [`DsmError::NodeFailed`] from the
    /// empty-ring wait instead of panicking. An erroring pop leaves the
    /// cursor untouched, so the caller may retry after recovery.
    pub fn try_pop(&mut self, node: &mut Node, len: usize) -> Result<Vec<T>, DsmError> {
        assert!(len <= self.slot_len, "read exceeds slot");
        node.try_waitcv(self.data_cv)?;
        let base = (self.seq_cons as usize % self.capacity) * self.slot_len;
        let out = node.vec_read_range(&self.slots, base..base + len);
        node.setcv(self.ack_cv);
        self.seq_cons += 1;
        Ok(out)
    }

    /// Takeover producer: writes the chunk for absolute ordinal `ordinal`
    /// and signals the consumer, bypassing the credit protocol entirely.
    ///
    /// An adopter pushing on a *dead* producer's ring cannot know how many
    /// ack signals the corpse consumed, so credits are unusable; instead
    /// the caller gates on the consumer's recorded pop count (its ledger
    /// meta) to guarantee `ordinal < pops + capacity` before writing —
    /// ack signals then serve as wake-ups only.
    pub fn push_at(&mut self, node: &mut Node, ordinal: u64, data: &[T]) {
        assert!(data.len() <= self.slot_len, "chunk exceeds slot");
        let base = (ordinal as usize % self.capacity) * self.slot_len;
        node.vec_write_range(&self.slots, base, data);
        node.setcv(self.data_cv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_dsm::{DsmConfig, DsmSystem};

    #[test]
    fn single_slot_ring_passes_values_in_order() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let mut ring = ChunkRing::<i64>::new(node, 1, 1, 0, 0, 1);
            node.barrier();
            let mut got = Vec::new();
            if node.id() == 0 {
                for i in 0..50 {
                    ring.push(node, &[i * 7]);
                }
            } else {
                for _ in 0..50 {
                    got.push(ring.pop(node, 1)[0]);
                }
            }
            node.barrier();
            got
        });
        let expect: Vec<i64> = (0..50).map(|i| i * 7).collect();
        assert_eq!(run.results[1], expect);
    }

    #[test]
    fn multi_slot_ring_pipelines() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let mut ring = ChunkRing::<i32>::new(node, 4, 8, 0, 0, 1);
            node.barrier();
            let mut sum = 0i64;
            if node.id() == 0 {
                for c in 0..20 {
                    let chunk: Vec<i32> = (0..8).map(|k| c * 8 + k).collect();
                    ring.push(node, &chunk);
                }
            } else {
                for _ in 0..20 {
                    sum += ring.pop(node, 8).iter().map(|&x| x as i64).sum::<i64>();
                }
            }
            node.barrier();
            sum
        });
        assert_eq!(run.results[1], (0..160i64).sum::<i64>());
    }

    #[test]
    fn self_ring_works_when_capacity_suffices() {
        // Single node produces a whole "band" then consumes it (the P=1
        // degenerate case of the blocked strategy).
        let run = DsmSystem::run(DsmConfig::new(1), |node| {
            let mut ring = ChunkRing::<i32>::new(node, 8, 4, 0, 0, 1);
            node.barrier();
            for c in 0..8 {
                ring.push(node, &[c, c + 1, c + 2, c + 3]);
            }
            let mut total = 0;
            for _ in 0..8 {
                total += ring.pop(node, 4).iter().sum::<i32>();
            }
            node.barrier();
            total
        });
        assert_eq!(run.results[0], (0..8).map(|c| 4 * c + 6).sum::<i32>());
    }

    #[test]
    fn short_chunks_allowed() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let mut ring = ChunkRing::<i32>::new(node, 2, 10, 0, 4, 5);
            node.barrier();
            let v = if node.id() == 0 {
                ring.push(node, &[1, 2, 3]);
                Vec::new()
            } else {
                ring.pop(node, 3)
            };
            node.barrier();
            v
        });
        assert_eq!(run.results[1], vec![1, 2, 3]);
    }
}
