//! DSM encoding for heuristic cells.
//!
//! [`HCell`] lives in `genomedsm-core` and [`DsmData`] in `genomedsm-dsm`;
//! the orphan rule puts the glue here, as a transparent newtype.

use genomedsm_core::HCell;
use genomedsm_dsm::DsmData;

/// A heuristic cell as stored in DSM pages (little-endian, 33 bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HCellData(pub HCell);

impl DsmData for HCellData {
    const LEN: usize = HCell::ENCODED_LEN;

    fn store(&self, buf: &mut [u8]) {
        self.0.encode(buf);
    }

    fn load(buf: &[u8]) -> Self {
        HCellData(HCell::decode(buf))
    }
}

impl From<HCell> for HCellData {
    fn from(c: HCell) -> Self {
        HCellData(c)
    }
}

impl From<HCellData> for HCell {
    fn from(c: HCellData) -> Self {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_dsm_encoding() {
        let cell = HCell {
            score: 11,
            max: 20,
            min: -2,
            beg_i: 3,
            beg_j: 4,
            gaps: 1,
            matches: 9,
            mismatches: 2,
            open: true,
        };
        let mut buf = vec![0u8; HCellData::LEN];
        HCellData(cell).store(&mut buf);
        assert_eq!(HCellData::load(&buf).0, cell);
    }
}
