//! Strategy 2 (§4.3): parallel heuristic alignment **with** blocking
//! factors.
//!
//! The similarity matrix is divided into `bands` row groups × `blocks`
//! column groups (Fig. 11). Bands are assigned to processors cyclically
//! (band `b` → processor `b mod P`). A processor computes its band block
//! by block, left to right; when it finishes a block it sends the block's
//! **last row** to the owner of the band below in one chunk — "grouping
//! many values from the border column into one single communication".
//! Chunk transfer uses the same cv-synchronized shared-memory protocol as
//! strategy 1, but the ring holds a whole band of blocks so producers can
//! run ahead (the pipelining Fig. 11 illustrates: P0 starts block (1,4)
//! while P1 is at (2,1)).
//!
//! Table 3's *blocking multiplier* `a × h` maps to `blocks = a·P` and
//! `bands = h·P`.

use crate::checkpoint::{run_elastic, run_with_takeover, FlowChannel, Ledger};
use crate::hcell_data::HCellData;
use crate::ring::ChunkRing;
use crate::Phase1Outcome;
use genomedsm_core::{finalize_queue, HCell, HeuristicParams, LocalRegion, RowKernel, Scoring};
use genomedsm_dsm::{DsmConfig, DsmError, DsmSystem, Node};
use std::time::Instant;

/// How the matrix is cut into bands and blocks.
///
/// §4.3: "the similar array can be divided into bands and blocks of
/// different heights and widths. Small chunks can be used at the
/// beginning of computation in order to allow the processors to start
/// computing earlier. In the same way, small chunks can also be used at
/// the end of the computation in order to make processors finish
/// calculating later."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridPlan {
    /// Equal-sized bands and blocks.
    Uniform,
    /// The first and last `edge_splits` bands/blocks are each halved, so
    /// the pipeline fills and drains on small chunks.
    Ramped {
        /// How many edge bands/blocks to halve on each side.
        edge_splits: usize,
    },
}

impl GridPlan {
    /// Cuts `total` items into `parts` ranges (1-based inclusive bounds),
    /// applying the plan's edge refinement.
    pub fn bounds(&self, total: usize, parts: usize) -> Vec<(usize, usize)> {
        let uniform: Vec<(usize, usize)> =
            (0..parts).map(|k| slice_bounds(total, parts, k)).collect();
        match *self {
            GridPlan::Uniform => uniform,
            GridPlan::Ramped { edge_splits } => {
                let n = uniform.len();
                let mut out = Vec::with_capacity(n + 2 * edge_splits);
                for (k, &(lo, hi)) in uniform.iter().enumerate() {
                    let len = (hi + 1).saturating_sub(lo);
                    let split = (k < edge_splits || k >= n.saturating_sub(edge_splits)) && len >= 2;
                    if split {
                        let mid = lo + len / 2 - 1;
                        out.push((lo, mid));
                        out.push((mid + 1, hi));
                    } else {
                        out.push((lo, hi));
                    }
                }
                out
            }
        }
    }
}

/// Configuration of the blocked heuristic strategy.
#[derive(Debug, Clone)]
pub struct BlockedConfig {
    /// Number of row bands (the paper's best 50 kBP run uses 40).
    pub bands: usize,
    /// Number of column blocks per band.
    pub blocks: usize,
    /// Band/block sizing plan (uniform, or ramped edges per §4.3).
    pub plan: GridPlan,
    /// DSM cluster configuration.
    pub dsm: DsmConfig,
    /// Virtual cost of one heuristic cell update (era-calibrated default,
    /// see [`crate::costs`]).
    pub cell_cost: std::time::Duration,
}

impl BlockedConfig {
    /// `nprocs` nodes, an explicit `bands × blocks` grid, paper-era
    /// network and kernel cost model.
    pub fn new(nprocs: usize, bands: usize, blocks: usize) -> Self {
        assert!(bands >= 1 && blocks >= 1, "need at least one band/block");
        Self {
            bands,
            blocks,
            plan: GridPlan::Uniform,
            dsm: DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster()),
            cell_cost: crate::costs::HCELL_CELL,
        }
    }

    /// Enables §4.3's small-edge-chunks refinement.
    pub fn ramped(mut self, edge_splits: usize) -> Self {
        self.plan = GridPlan::Ramped { edge_splits };
        self
    }

    /// Table 3 semantics: a blocking multiplier `a × h` divides the matrix
    /// into `h·P` bands, each containing `a·P` blocks.
    pub fn from_multiplier(nprocs: usize, a: usize, h: usize) -> Self {
        Self::new(nprocs, h * nprocs, a * nprocs)
    }
}

/// 1-based inclusive bounds of slice `k` of `total` items cut into
/// `parts`.
fn slice_bounds(total: usize, parts: usize, k: usize) -> (usize, usize) {
    (k * total / parts + 1, (k + 1) * total / parts)
}

/// Computes one block of one band. `top` is the passage row above the
/// block (`width + 1` cells, index 0 = diagonal corner); `left_col[r]`
/// holds the block's left-border cell for band row `r` (updated in place
/// to this block's right column). Returns the block's bottom row
/// (`width + 1` cells) to pass to the band below.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_block(
    kernel: &RowKernel,
    s: &[u8],
    t: &[u8],
    i0: usize,
    i1: usize,
    c_lo: usize,
    width: usize,
    top: Vec<HCell>,
    left_col: &mut [HCell],
    queue: &mut Vec<LocalRegion>,
) -> Vec<HCell> {
    let h = (i1 + 1).saturating_sub(i0);
    if h == 0 {
        return top; // empty band: the passage row flows through
    }
    if width == 0 {
        // Empty block: its "bottom row" is the single border cell of the
        // band's last row, already computed by the previous block.
        return vec![left_col[h]];
    }
    debug_assert_eq!(top.len(), width + 1);
    let mut prev = top;
    let mut cur = vec![HCell::fresh(); width + 1];
    for r in 1..=h {
        let i = i0 + r - 1;
        cur[0] = left_col[r];
        kernel.process_row_segment(i, s[i - 1], t, c_lo, &prev, &mut cur, queue);
        left_col[r] = cur[width];
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Runs strategy 2 on a simulated cluster.
pub fn heuristic_block_align(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    config: &BlockedConfig,
) -> Phase1Outcome {
    let t0 = Instant::now();
    let nprocs = config.dsm.nprocs;
    let cell_cost = config.cell_cost;
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();
    let band_bounds = config.plan.bounds(m, config.bands);
    let block_bounds = config.plan.bounds(n, config.blocks);
    let bands = band_bounds.len();
    let blocks = block_bounds.len();
    let band_bounds = &band_bounds;
    let block_bounds = &block_bounds;
    let max_chunk = block_bounds
        .iter()
        .map(|&(lo, hi)| (hi + 1).saturating_sub(lo) + 1)
        .max()
        .unwrap_or(1);

    let run = DsmSystem::run_wire(config.dsm.clone(), |node: &mut Node| {
        if node.supervised() {
            return crate::wire::WireRegions(tolerant_worker(
                node,
                &kernel,
                s,
                t,
                band_bounds,
                block_bounds,
                nprocs,
                max_chunk,
                cell_cost,
            ));
        }
        let p = node.id();
        // One ring per ordered neighbour pair (q -> q+1 mod P); ring `q`
        // is produced by q. Capacity = one band of blocks, so a producer
        // can finish a whole band before its consumer starts.
        let mut rings: Vec<ChunkRing<HCellData>> = (0..nprocs)
            .map(|q| {
                ChunkRing::new(
                    node,
                    blocks,
                    max_chunk,
                    q,
                    (2 * q) as u32,
                    (2 * q + 1) as u32,
                )
            })
            .collect();
        node.barrier();

        let mut queue: Vec<LocalRegion> = Vec::new();
        let from_ring = (p + nprocs - 1) % nprocs;
        let mut band = p;
        while band < bands {
            let (i0, i1) = band_bounds[band];
            let h = (i1 + 1).saturating_sub(i0);
            let mut left_col = vec![HCell::fresh(); h + 1];
            for k in 0..blocks {
                let (c_lo, c_hi) = block_bounds[k];
                let width = (c_hi + 1).saturating_sub(c_lo);
                let top: Vec<HCell> = if band == 0 {
                    vec![HCell::fresh(); width + 1]
                } else {
                    rings[from_ring]
                        .pop(node, width + 1)
                        .into_iter()
                        .map(HCell::from)
                        .collect()
                };
                let bottom = process_block(
                    &kernel,
                    s,
                    t,
                    i0,
                    i1,
                    c_lo,
                    width,
                    top,
                    &mut left_col,
                    &mut queue,
                );
                node.advance(crate::costs::cells(cell_cost, h * width));
                // Right edge of the matrix: flush open candidates row by
                // row (mirrors the serial driver's per-row flush).
                if k + 1 == blocks {
                    for r in 1..=h {
                        kernel.flush_open(&left_col[r], i0 + r - 1, n, &mut queue);
                    }
                }
                if band + 1 < bands {
                    let chunk: Vec<HCellData> = bottom.iter().copied().map(HCellData).collect();
                    rings[p].push(node, &chunk);
                } else {
                    // Bottom row of the matrix: flush (column n excluded,
                    // the right-edge rule above already covered it).
                    for (idx, cell) in bottom.iter().enumerate().skip(1) {
                        let j = c_lo - 1 + idx;
                        if j < n {
                            kernel.flush_open(cell, m, j, &mut queue);
                        }
                    }
                }
            }
            band += nprocs;
        }
        node.barrier();
        crate::wire::WireRegions(queue)
    });

    let all: Vec<LocalRegion> = run.results.into_iter().flat_map(|w| w.0).collect();
    let wall = run.stats.iter().map(|s| s.total).max().unwrap_or_default();
    Phase1Outcome {
        regions: finalize_queue(all),
        per_node: run.stats,
        wall,
        host_wall: t0.elapsed(),
    }
}

/// Strategy 2 worker in tolerant mode (supervision enabled): border
/// chunks flow through a per-role [`Ledger`] log instead of ring slots.
/// A role here is a node's cyclic band set; a surviving node adopts a
/// dead role and re-executes its bands, replaying recorded chunks. The
/// plain path above is untouched when supervision is off.
#[allow(clippy::too_many_arguments)]
fn tolerant_worker(
    node: &mut Node,
    kernel: &RowKernel,
    s: &[u8],
    t: &[u8],
    band_bounds: &[(usize, usize)],
    block_bounds: &[(usize, usize)],
    nprocs: usize,
    max_chunk: usize,
    cell_cost: std::time::Duration,
) -> Vec<LocalRegion> {
    let bands = band_bounds.len();
    let blocks = block_bounds.len();
    // Role r pushes at most one chunk per block of each of its bands.
    let log_entries = bands.div_ceil(nprocs) * blocks;
    let ledger = Ledger::<HCellData>::new(node, nprocs, log_entries, max_chunk);
    node.barrier();
    let crash_at = node.crash_point();
    let mut units = 0u64;

    // One work unit is one band×block tile; a scheduled rejoin's virtual
    // downtime is priced at that granularity.
    let tile_cells = (s.len() / bands.max(1)).max(1) * (t.len() / blocks.max(1)).max(1);
    let unit_time = cell_cost.saturating_mul(tile_cells.min(u32::MAX as usize) as u32);
    // A single workload wrapped in the elastic driver: a victim with a
    // scheduled rejoin is re-admitted at the closing boundary, so the run
    // always ends with full membership.
    let mut rounds = run_elastic(node, 1, nprocs.max(1) + 2, unit_time, |node, _| {
        run_with_takeover(node, nprocs, |node, execute, resume, queue| {
            run_bands(
                node,
                &ledger,
                kernel,
                s,
                t,
                band_bounds,
                block_bounds,
                nprocs,
                cell_cost,
                execute,
                resume,
                crash_at,
                &mut units,
                queue,
            )
        })
    });
    match rounds.pop().flatten() {
        Some(qs) => qs.into_iter().flatten().collect(),
        None => Vec::new(), // this worker fail-stopped
    }
}

/// Executes every band whose role is in `execute`, in ascending band
/// order — the wavefront order: band `b` consumes only band `b-1`'s
/// chunks, which are either recorded earlier in this very loop (internal
/// role) or produced in real time by a live external role.
#[allow(clippy::too_many_arguments)]
fn run_bands(
    node: &mut Node,
    ledger: &Ledger<HCellData>,
    kernel: &RowKernel,
    s: &[u8],
    t: &[u8],
    band_bounds: &[(usize, usize)],
    block_bounds: &[(usize, usize)],
    nprocs: usize,
    cell_cost: std::time::Duration,
    execute: &[usize],
    resume: bool,
    crash_at: Option<u64>,
    units: &mut u64,
    queue: &mut Vec<LocalRegion>,
) -> Result<(), DsmError> {
    let m = s.len();
    let n = t.len();
    let bands = band_bounds.len();
    let blocks = block_bounds.len();
    // Ring q carries chunks from role q to role (q+1) mod P.
    let mut channels: Vec<FlowChannel> = (0..nprocs)
        .map(|q| {
            FlowChannel::new(
                node,
                ledger,
                q,
                (q + 1) % nprocs,
                (2 * q) as u32,
                (2 * q + 1) as u32,
                blocks as u64,
                resume,
            )
        })
        .collect();
    // Per-role running chunk ordinals (pops and pushes are dense within
    // a role: every band but the first pops, every band but the last
    // pushes, in ascending band order).
    let mut pops = vec![0u64; nprocs];
    let mut pushes = vec![0u64; nprocs];
    for band in 0..bands {
        let role = band % nprocs;
        if !execute.contains(&role) {
            continue;
        }
        let in_ring = (role + nprocs - 1) % nprocs;
        let (i0, i1) = band_bounds[band];
        let h = (i1 + 1).saturating_sub(i0);
        let mut left_col = vec![HCell::fresh(); h + 1];
        for k in 0..blocks {
            let (c_lo, c_hi) = block_bounds[k];
            let width = (c_hi + 1).saturating_sub(c_lo);
            let top: Vec<HCell> = if band == 0 {
                vec![HCell::fresh(); width + 1]
            } else {
                let ord = pops[role];
                pops[role] += 1;
                channels[in_ring]
                    .consume(node, ledger, execute, ord, width + 1)?
                    .into_iter()
                    .map(HCell::from)
                    .collect()
            };
            let bottom =
                process_block(kernel, s, t, i0, i1, c_lo, width, top, &mut left_col, queue);
            node.advance(crate::costs::cells(cell_cost, h * width));
            *units += 1;
            if crash_at == Some(*units) {
                node.fail_stop();
                return Err(DsmError::Disconnected("injected fail-stop"));
            }
            if (*units).is_multiple_of(64) {
                node.heartbeat();
            }
            if k + 1 == blocks {
                for r in 1..=h {
                    kernel.flush_open(&left_col[r], i0 + r - 1, n, queue);
                }
            }
            if band + 1 < bands {
                let chunk: Vec<HCellData> = bottom.iter().copied().map(HCellData).collect();
                let ord = pushes[role];
                pushes[role] += 1;
                channels[role].produce(node, ledger, execute, ord, &chunk)?;
            } else {
                for (idx, cell) in bottom.iter().enumerate().skip(1) {
                    let j = c_lo - 1 + idx;
                    if j < n {
                        kernel.flush_open(cell, m, j, queue);
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan, MutationProfile};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let (s, t, _) = planted_pair(
            len,
            len,
            &HomologyPlan {
                region_count: 4,
                region_len_mean: 60,
                region_len_jitter: 20,
                profile: MutationProfile::similar(),
            },
            seed,
        );
        (s.into_bytes(), t.into_bytes())
    }

    #[test]
    fn multiplier_matches_paper_example() {
        // "a 3 × 5 blocking multiplier for 8 processors divides the matrix
        // into 40 bands, each one containing 24 blocks".
        let c = BlockedConfig::from_multiplier(8, 3, 5);
        assert_eq!(c.bands, 40);
        assert_eq!(c.blocks, 24);
    }

    #[test]
    fn matches_serial_reference_across_grids() {
        let (s, t) = workload(320, 11);
        let serial = heuristic_align(&s, &t, &SC, &params());
        for (nprocs, bands, blocks) in [
            (1, 4, 4),
            (2, 4, 4),
            (2, 8, 3),
            (4, 8, 8),
            (3, 7, 5),
            (4, 16, 2),
        ] {
            let out = heuristic_block_align(
                &s,
                &t,
                &SC,
                &params(),
                &BlockedConfig::new(nprocs, bands, blocks),
            );
            assert_eq!(
                out.regions, serial,
                "nprocs={nprocs} bands={bands} blocks={blocks}"
            );
        }
    }

    #[test]
    fn degenerate_grids_match_serial() {
        let (s, t) = workload(90, 12);
        let serial = heuristic_align(&s, &t, &SC, &params());
        // More bands than rows, more blocks than columns.
        for (nprocs, bands, blocks) in [(2, 120, 7), (2, 5, 100), (4, 100, 100)] {
            let out = heuristic_block_align(
                &s,
                &t,
                &SC,
                &params(),
                &BlockedConfig::new(nprocs, bands, blocks),
            );
            assert_eq!(out.regions, serial, "bands={bands} blocks={blocks}");
        }
    }

    #[test]
    fn single_band_single_block_is_serial() {
        let (s, t) = workload(120, 13);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let out = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(1, 1, 1));
        assert_eq!(out.regions, serial);
    }

    #[test]
    fn fewer_messages_than_unblocked() {
        let (s, t) = workload(400, 14);
        let blocked = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(4, 8, 8));
        let unblocked =
            crate::heuristic_align_dsm(&s, &t, &SC, &params(), &crate::HeuristicDsmConfig::new(4));
        let mb = blocked.aggregate().msgs_sent;
        let mu = unblocked.aggregate().msgs_sent;
        assert!(mb * 2 < mu, "blocked should message far less: {mb} vs {mu}");
        assert_eq!(blocked.regions, unblocked.regions);
    }

    #[test]
    #[should_panic(expected = "at least one band")]
    fn zero_bands_rejected() {
        let _ = BlockedConfig::new(2, 0, 4);
    }

    fn tolerant(nprocs: usize, bands: usize, blocks: usize) -> BlockedConfig {
        let mut c = BlockedConfig::new(nprocs, bands, blocks);
        c.dsm = c.dsm.supervise(genomedsm_dsm::SupervisionConfig {
            enabled: true,
            detect_after: std::time::Duration::from_millis(40),
            watchdog: std::time::Duration::from_millis(400),
        });
        c
    }

    #[test]
    fn tolerant_mode_without_failures_matches_serial() {
        let (s, t) = workload(300, 21);
        let serial = heuristic_align(&s, &t, &SC, &params());
        for (nprocs, bands, blocks) in [(1, 4, 4), (2, 8, 3), (4, 8, 8), (3, 7, 5)] {
            let out =
                heuristic_block_align(&s, &t, &SC, &params(), &tolerant(nprocs, bands, blocks));
            assert_eq!(out.regions, serial, "nprocs={nprocs}");
        }
    }

    #[test]
    fn single_death_mid_run_recovers_bit_identical() {
        let (s, t) = workload(300, 22);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(3, 9, 6);
        cfg.dsm = cfg
            .dsm
            .faults(std::sync::Arc::new(crate::KillPlan::new().kill(1, 8)));
        let out = heuristic_block_align(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
        assert!(out.aggregate().takeovers >= 1);
    }

    #[test]
    fn death_of_final_band_owner_is_swept() {
        // The owner of the last band pushes nothing, so its death is
        // only discovered at the barrier and recovered by the sweep.
        let (s, t) = workload(260, 23);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(3, 6, 4);
        // Node 2 owns bands 2 and 5 (the last): 8 blocks total, die on
        // its very last block.
        cfg.dsm = cfg
            .dsm
            .faults(std::sync::Arc::new(crate::KillPlan::new().kill(2, 8)));
        let out = heuristic_block_align(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
    }

    #[test]
    fn double_death_with_ramped_grid_recovers() {
        let (s, t) = workload(280, 24);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(4, 8, 8).ramped(1);
        cfg.dsm = cfg.dsm.faults(std::sync::Arc::new(
            crate::KillPlan::new().kill(1, 11).kill(2, 23),
        ));
        let out = heuristic_block_align(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
    }
}

#[cfg(test)]
mod grid_tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan, MutationProfile};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    #[test]
    fn uniform_plan_matches_slice_bounds() {
        let b = GridPlan::Uniform.bounds(103, 8);
        assert_eq!(b.len(), 8);
        assert_eq!(b[0].0, 1);
        assert_eq!(b[7].1, 103);
    }

    #[test]
    fn ramped_plan_halves_edges_and_covers_everything() {
        let b = GridPlan::Ramped { edge_splits: 2 }.bounds(160, 8);
        assert_eq!(b.len(), 12); // 8 + 2 splits on each side
        assert_eq!(b[0].0, 1);
        assert_eq!(b.last().unwrap().1, 160);
        for w in b.windows(2) {
            assert_eq!(w[0].1 + 1, w[1].0, "bounds must be contiguous");
        }
        // Edge chunks are half the size of middle ones.
        let width = |r: (usize, usize)| r.1 + 1 - r.0;
        assert_eq!(width(b[0]), 10);
        assert_eq!(width(b[5]), 20);
        assert_eq!(width(*b.last().unwrap()), 10);
    }

    #[test]
    fn ramped_plan_degenerate_sizes() {
        // Single-row ranges cannot be split.
        let b = GridPlan::Ramped { edge_splits: 3 }.bounds(4, 4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.last().unwrap().1, 4);
        // Zero total yields empty-ish bounds without panicking.
        let b = GridPlan::Ramped { edge_splits: 1 }.bounds(0, 3);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn ramped_strategy_matches_serial() {
        let (s, t, _) = planted_pair(
            300,
            300,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 60,
                region_len_jitter: 10,
                profile: MutationProfile::similar(),
            },
            51,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for nprocs in [1, 2, 4] {
            let out = heuristic_block_align(
                &s,
                &t,
                &SC,
                &params(),
                &BlockedConfig::new(nprocs, 6, 6).ramped(2),
            );
            assert_eq!(out.regions, serial, "nprocs={nprocs}");
        }
    }

    #[test]
    fn ramped_reduces_pipeline_fill_time() {
        // With few, huge blocks the fill dominates; halving the edge
        // blocks lets downstream processors start earlier. Compare
        // simulated cluster times at 4 procs, 4x4 grid.
        let (s, t, _) = planted_pair(1200, 1200, &HomologyPlan::paper_density(1200), 52);
        let uniform = heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(4, 4, 4));
        let ramped = heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &BlockedConfig::new(4, 4, 4).ramped(1),
        );
        assert_eq!(uniform.regions, ramped.regions);
        assert!(
            ramped.wall < uniform.wall,
            "ramped {is:?} should beat uniform {was:?}",
            is = ramped.wall,
            was = uniform.wall
        );
    }
}

#[cfg(test)]
mod feature_interplay_tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    /// JIAJIA's home migration must be invisible to results.
    #[test]
    fn migration_does_not_change_results() {
        let (s, t, _) = planted_pair(400, 400, &HomologyPlan::paper_density(2_500), 81);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut config = BlockedConfig::new(4, 8, 8);
        config.dsm = config.dsm.home_migration(true);
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, serial);
    }

    /// Heterogeneous node speeds slow the clock but not the answers.
    #[test]
    fn heterogeneity_does_not_change_results() {
        let (s, t, _) = planted_pair(400, 400, &HomologyPlan::paper_density(2_500), 82);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let homogeneous =
            heuristic_block_align(&s, &t, &SC, &params(), &BlockedConfig::new(4, 8, 8));
        let mut config = BlockedConfig::new(4, 8, 8);
        config.dsm = config.dsm.speeds(vec![1.0, 0.5, 1.0, 0.25]);
        let hetero = heuristic_block_align(&s, &t, &SC, &params(), &config);
        assert_eq!(hetero.regions, serial);
        assert!(
            hetero.wall > homogeneous.wall,
            "slow nodes must lengthen the simulated run: {:?} vs {:?}",
            hetero.wall,
            homogeneous.wall
        );
    }

    /// All features at once: ramped grid + migration + heterogeneity.
    #[test]
    fn all_features_together_stay_correct() {
        let (s, t, _) = planted_pair(350, 350, &HomologyPlan::paper_density(2_000), 83);
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut config = BlockedConfig::new(3, 6, 6).ramped(1);
        config.dsm = config.dsm.home_migration(true).speeds(vec![1.0, 0.7, 0.9]);
        let out = heuristic_block_align(&s, &t, &SC, &params(), &config);
        assert_eq!(out.regions, serial);
    }
}
