//! Wire encodings for strategy results crossing process boundaries.
//!
//! A multi-process run ([`genomedsm_dsm::DsmSystem::run_wire`]) gathers every rank's
//! closure result through the DSM itself, so the result type must
//! implement the dsm crate's [`Wire`] codec. The alignment types live in
//! `genomedsm-core`, which knows nothing about the DSM — the orphan rule
//! therefore forces thin newtype wrappers here rather than impls on the
//! core types directly.

use genomedsm_core::nw::RegionAlignment;
use genomedsm_core::{GlobalAlignment, LocalRegion};
use genomedsm_dsm::{DsmError, FrameReader, FrameWriter, Wire};

/// A phase-1 result queue ([`Vec<LocalRegion>`]) in wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRegions(pub Vec<LocalRegion>);

/// A phase-2 result set (`Vec<(queue index, RegionAlignment)>`) in wire
/// form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireIndexed(pub Vec<(usize, RegionAlignment)>);

fn encode_region(r: &LocalRegion, w: &mut FrameWriter) {
    w.usize(r.s_begin);
    w.usize(r.s_end);
    w.usize(r.t_begin);
    w.usize(r.t_end);
    w.u32(r.score as u32);
}

fn decode_region(r: &mut FrameReader<'_>) -> Result<LocalRegion, DsmError> {
    Ok(LocalRegion {
        s_begin: r.usize()?,
        s_end: r.usize()?,
        t_begin: r.usize()?,
        t_end: r.usize()?,
        score: r.u32()? as i32,
    })
}

impl Wire for WireRegions {
    fn encode(&self, w: &mut FrameWriter) {
        w.usize(self.0.len());
        for region in &self.0 {
            encode_region(region, w);
        }
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        let n = r.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(decode_region(r)?);
        }
        Ok(WireRegions(out))
    }
}

impl Wire for WireIndexed {
    fn encode(&self, w: &mut FrameWriter) {
        w.usize(self.0.len());
        for (idx, ra) in &self.0 {
            w.usize(*idx);
            encode_region(&ra.region, w);
            w.bytes(&ra.alignment.aligned_s);
            w.bytes(&ra.alignment.aligned_t);
            w.u32(ra.alignment.score as u32);
        }
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        let n = r.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = r.usize()?;
            let region = decode_region(r)?;
            let aligned_s = r.bytes()?;
            let aligned_t = r.bytes()?;
            let score = r.u32()? as i32;
            out.push((
                idx,
                RegionAlignment {
                    region,
                    alignment: GlobalAlignment {
                        aligned_s,
                        aligned_t,
                        score,
                    },
                },
            ));
        }
        Ok(WireIndexed(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_dsm::{decode_frame, encode_frame};

    fn region(k: usize) -> LocalRegion {
        LocalRegion {
            s_begin: k,
            s_end: k + 10,
            t_begin: 2 * k,
            t_end: 2 * k + 5,
            score: -(k as i32) + 40,
        }
    }

    #[test]
    fn regions_roundtrip() {
        let v = WireRegions((0..5).map(region).collect());
        let frame = encode_frame(0x60, &v);
        let back: WireRegions = decode_frame(0x60, &frame).expect("decode");
        assert_eq!(back, v);
        let empty = WireRegions(Vec::new());
        let frame = encode_frame(0x60, &empty);
        assert_eq!(
            decode_frame::<WireRegions>(0x60, &frame).expect("decode"),
            empty
        );
    }

    #[test]
    fn indexed_roundtrip() {
        let v = WireIndexed(
            (0..3)
                .map(|k| {
                    (
                        7 * k,
                        RegionAlignment {
                            region: region(k),
                            alignment: GlobalAlignment {
                                aligned_s: vec![b'A'; k + 1],
                                aligned_t: vec![b'-'; k + 1],
                                score: k as i32 - 1,
                            },
                        },
                    )
                })
                .collect(),
        );
        let frame = encode_frame(0x61, &v);
        let back: WireIndexed = decode_frame(0x61, &frame).expect("decode");
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_frames_are_typed_errors() {
        let v = WireRegions(vec![region(1)]);
        let frame = encode_frame(0x60, &v);
        for cut in 0..frame.len() {
            assert!(decode_frame::<WireRegions>(0x60, &frame[..cut]).is_err());
        }
    }
}
