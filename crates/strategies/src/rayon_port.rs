//! Modern shared-memory ports of the blocked strategy (ablation).
//!
//! The calibration question for this reproduction is how the paper's DSM
//! strategy maps onto today's shared-memory stacks. This module runs the
//! *same* band × block wavefront with plain scoped threads and channels —
//! no pages, no diffs, no write notices — so benchmarks can separate the
//! algorithmic cost of the wavefront from the DSM protocol overhead.
//! A rayon-based antidiagonal variant is provided as a second reference
//! point for the classic wave-front formulation (Fig. 7), and
//! [`score_bands_shm`] runs the pre-process band pipeline on threads with
//! the vectorized [`genomedsm_kernels`] score kernel.

use crate::blocked::process_block;
use crate::Phase1Outcome;
use genomedsm_core::{finalize_queue, HCell, HeuristicParams, LocalRegion, RowKernel, Scoring};
use genomedsm_dsm::NodeStats;
use genomedsm_kernels::{BandScorer, KernelChoice};
use std::time::Instant;

fn slice_bounds(total: usize, parts: usize, k: usize) -> (usize, usize) {
    (k * total / parts + 1, (k + 1) * total / parts)
}

/// The blocked wavefront on plain threads + channels (no DSM). Identical
/// results to [`crate::heuristic_block_align`], minus the protocol.
#[allow(clippy::too_many_arguments)]
pub fn heuristic_block_align_shm(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    nprocs: usize,
    bands: usize,
    blocks: usize,
) -> Phase1Outcome {
    assert!(nprocs >= 1 && bands >= 1 && blocks >= 1);
    let t0 = Instant::now();
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();

    // Channel q carries bottom-row chunks from processor q to q+1 mod P.
    // Unbounded: the ring flow control is unnecessary off-DSM because
    // memory is shared and chunks are owned Vecs.
    let mut senders = Vec::with_capacity(nprocs);
    let mut receivers = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<HCell>>();
        senders.push(tx);
        receivers.push(rx);
    }

    // Processor p receives from channel (p-1) mod P and produces on
    // channel p (consumed by p+1 mod P): rotate the receivers by one.
    receivers.rotate_right(1);

    let queues: Vec<Vec<LocalRegion>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for (p, from_rx) in receivers.into_iter().enumerate() {
            let to_tx = senders[p].clone();
            handles.push(scope.spawn(move || {
                let mut queue: Vec<LocalRegion> = Vec::new();
                let mut band = p;
                while band < bands {
                    let (i0, i1) = slice_bounds(m, bands, band);
                    let h = (i1 + 1).saturating_sub(i0);
                    let mut left_col = vec![HCell::fresh(); h + 1];
                    for k in 0..blocks {
                        let (c_lo, c_hi) = slice_bounds(n, blocks, k);
                        let width = (c_hi + 1).saturating_sub(c_lo);
                        let top: Vec<HCell> = if band == 0 {
                            vec![HCell::fresh(); width + 1]
                        } else {
                            match from_rx.recv() {
                                Ok(top) => top,
                                Err(_) => {
                                    panic!("band {band}: upstream worker hung up mid-wavefront")
                                }
                            }
                        };
                        let bottom = process_block(
                            &kernel,
                            s,
                            t,
                            i0,
                            i1,
                            c_lo,
                            width,
                            top,
                            &mut left_col,
                            &mut queue,
                        );
                        if k + 1 == blocks {
                            for r in 1..=h {
                                kernel.flush_open(&left_col[r], i0 + r - 1, n, &mut queue);
                            }
                        }
                        if band + 1 < bands {
                            if to_tx.send(bottom).is_err() {
                                panic!("band {band}: downstream worker hung up mid-wavefront");
                            }
                        } else {
                            for (idx, cell) in bottom.iter().enumerate().skip(1) {
                                let j = c_lo - 1 + idx;
                                if j < n {
                                    kernel.flush_open(cell, m, j, &mut queue);
                                }
                            }
                        }
                    }
                    band += nprocs;
                }
                queue
            }));
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    Phase1Outcome {
        regions: finalize_queue(queues.into_iter().flatten().collect()),
        per_node: vec![NodeStats::default(); nprocs],
        // No virtual clock off-DSM: report the host's real wall for both.
        wall: t0.elapsed(),
        host_wall: t0.elapsed(),
    }
}

/// Result of a [`score_bands_shm`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmScoreOutcome {
    /// The best local score anywhere in the matrix.
    pub best_score: i32,
    /// Number of cells scoring at least the threshold.
    pub hits: u64,
    /// Name of the kernel the majority of the work ran on
    /// (`"scalar"` or one of the striped engines).
    pub kernel: &'static str,
    /// Real host time for the whole pipeline.
    pub host_wall: std::time::Duration,
}

/// Scalar fallback for one column chunk of a band: the plain SW recurrence
/// with a non-zero top border, mirroring what [`BandScorer::advance`]
/// computes. `left_col` holds the band's previous column (index 0 = the
/// border row) and is updated in place; `bottom` receives the corner
/// followed by one last-row value per column.
#[allow(clippy::too_many_arguments)]
fn scalar_band_chunk(
    band_s: &[u8],
    chunk_t: &[u8],
    top: &[i32],
    left_col: &mut [i32],
    scoring: &Scoring,
    threshold: i32,
    bottom: &mut Vec<i32>,
) -> (u64, i32) {
    let h = band_s.len();
    let mut prev_col = left_col.to_vec();
    prev_col[0] = top[0];
    let mut cur_col = vec![0i32; h + 1];
    let mut hits = 0u64;
    let mut best = 0i32;
    bottom.push(left_col[h]);
    for (jj, &tc) in chunk_t.iter().enumerate() {
        cur_col[0] = top[jj + 1];
        for r in 1..=h {
            let diag = prev_col[r - 1] + scoring.subst(band_s[r - 1], tc);
            let v = diag
                .max(cur_col[r - 1] + scoring.gap)
                .max(prev_col[r] + scoring.gap)
                .max(0);
            cur_col[r] = v;
            if v >= threshold {
                hits += 1;
            }
            best = best.max(v);
        }
        bottom.push(cur_col[h]);
        std::mem::swap(&mut prev_col, &mut cur_col);
    }
    left_col.copy_from_slice(&prev_col);
    (hits, best)
}

/// The pre-process band pipeline on plain threads + channels with the
/// vectorized score kernel: exact SW best score and threshold-hit count,
/// no DSM, no virtual clock. Bands of query rows are assigned cyclically
/// to `nprocs` threads; each band streams left-to-right in column chunks,
/// handing its bottom row to the band below through a channel. Inside a
/// band the inner loop is [`BandScorer`] (striped SSE2/AVX2) when
/// `choice` and the problem's i16 head-room allow it, the plain scalar
/// recurrence otherwise — results are identical either way.
pub fn score_bands_shm(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    threshold: i32,
    choice: KernelChoice,
    nprocs: usize,
    bands: usize,
) -> ShmScoreOutcome {
    assert!(nprocs >= 1 && bands >= 1);
    assert!(threshold >= 1, "hit threshold must be positive");
    let t0 = Instant::now();
    let m = s.len();
    let n = t.len();
    const CHUNK: usize = 2048;

    let mut senders = Vec::with_capacity(nprocs);
    let mut receivers = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<i32>>();
        senders.push(tx);
        receivers.push(rx);
    }
    receivers.rotate_right(1);

    let per_thread: Vec<(u64, i32, &'static str)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for (p, from_rx) in receivers.into_iter().enumerate() {
            let to_tx = senders[p].clone();
            handles.push(scope.spawn(move || {
                let mut hits = 0u64;
                let mut best = 0i32;
                let mut kernel_name = "scalar";
                let mut band = p;
                while band < bands {
                    let i0 = band * m / bands + 1;
                    let i1 = (band + 1) * m / bands;
                    let h = (i1 + 1).saturating_sub(i0);
                    let band_s = &s[i0 - 1..i1];
                    let mut scorer =
                        BandScorer::new(choice, band_s, (m, n), scoring, threshold, None);
                    if let Some(sc) = &scorer {
                        kernel_name = sc.isa().name();
                    }
                    let mut left_col = vec![0i32; h + 1];
                    let mut c_lo = 1usize;
                    while c_lo <= n {
                        let c_hi = (c_lo + CHUNK - 1).min(n);
                        let width = c_hi + 1 - c_lo;
                        let top: Vec<i32> = if band == 0 {
                            vec![0; width + 1]
                        } else {
                            match from_rx.recv() {
                                Ok(top) => top,
                                Err(_) => {
                                    panic!("band {band}: upstream worker hung up mid-wavefront")
                                }
                            }
                        };
                        let mut bottom = Vec::with_capacity(width + 1);
                        match scorer.as_mut() {
                            Some(sc) => {
                                let mut col_hits = Vec::with_capacity(width);
                                let mut saved = Vec::new();
                                bottom.push(left_col[h]);
                                sc.advance(
                                    &t[c_lo - 1..c_hi],
                                    &top,
                                    c_lo,
                                    &mut bottom,
                                    &mut col_hits,
                                    &mut saved,
                                );
                                hits += col_hits.iter().sum::<u64>();
                                let Some(&chunk_bottom) = bottom.last() else {
                                    unreachable!("advance produced a non-empty chunk bottom")
                                };
                                left_col[h] = chunk_bottom;
                            }
                            None => {
                                let (ch, cb) = scalar_band_chunk(
                                    band_s,
                                    &t[c_lo - 1..c_hi],
                                    &top,
                                    &mut left_col,
                                    scoring,
                                    threshold,
                                    &mut bottom,
                                );
                                hits += ch;
                                best = best.max(cb);
                            }
                        }
                        if band + 1 < bands && to_tx.send(bottom).is_err() {
                            panic!("band {band}: downstream worker hung up mid-wavefront");
                        }
                        c_lo = c_hi + 1;
                    }
                    if let Some(sc) = &scorer {
                        best = best.max(sc.best_score());
                    }
                    band += nprocs;
                }
                (hits, best, kernel_name)
            }));
        }
        drop(senders);
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut out = ShmScoreOutcome {
        best_score: 0,
        hits: 0,
        kernel: "scalar",
        host_wall: t0.elapsed(),
    };
    for (hits, best, name) in per_thread {
        out.hits += hits;
        out.best_score = out.best_score.max(best);
        if name != "scalar" {
            out.kernel = name;
        }
    }
    out.host_wall = t0.elapsed();
    out
}

/// The classic Fig. 7 wave-front on rayon: cells of each antidiagonal are
/// independent (cell `(i, j)` needs only diagonals `d-1` and `d-2`), so
/// every antidiagonal is a `par_iter` over its cells. This is the
/// textbook formulation the paper contrasts with its column/band
/// assignments; results are identical to the serial driver because the
/// same [`RowKernel::update_cell`] runs per cell.
pub fn heuristic_antidiagonal_rayon(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    threads: usize,
) -> Phase1Outcome {
    use rayon::prelude::*;
    let t0 = Instant::now();
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();
    let pool = match rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
    {
        Ok(pool) => pool,
        Err(e) => panic!("rayon pool construction cannot fail for >= 1 threads: {e}"),
    };

    // Antidiagonal d holds cells (i, j) with i + j == d, 1 <= i <= m,
    // 1 <= j <= n. Buffers are indexed by i; index 0 stands for the zero
    // border row.
    let mut prev2: Vec<HCell> = vec![HCell::fresh(); m + 1]; // diagonal d-2
    let mut prev1: Vec<HCell> = vec![HCell::fresh(); m + 1]; // diagonal d-1
    let mut queue: Vec<LocalRegion> = Vec::new();

    pool.install(|| {
        for d in 2..=(m + n) {
            let i_lo = 1.max(d.saturating_sub(n));
            let i_hi = m.min(d - 1);
            if i_lo > i_hi {
                // Degenerate axis: nothing on this antidiagonal.
                std::mem::swap(&mut prev2, &mut prev1);
                prev1.iter_mut().for_each(|c| *c = HCell::fresh());
                continue;
            }
            let p2 = &prev2;
            let p1 = &prev1;
            let results: Vec<(usize, HCell, Vec<LocalRegion>)> = (i_lo..=i_hi)
                .into_par_iter()
                .map(|i| {
                    let j = d - i;
                    // Predecessors: diag = (i-1, j-1) on d-2; up = (i-1, j)
                    // and left = (i, j-1) on d-1. Border cells are fresh.
                    let diag = p2[i - 1]; // (i-1, j-1): fresh border when on the rim
                    let up = p1[i - 1]; // (i-1, j): the zero border row when i == 1
                    let left = p1[i];
                    let mut local_queue = Vec::new();
                    let cell = kernel.update_cell(
                        s[i - 1],
                        t[j - 1],
                        i,
                        j,
                        &diag,
                        &up,
                        &left,
                        &mut local_queue,
                    );
                    // Edge flushes mirror the serial driver: rightmost
                    // column per row, bottom row (corner once).
                    if j == n {
                        kernel.flush_open(&cell, i, n, &mut local_queue);
                    } else if i == m {
                        kernel.flush_open(&cell, m, j, &mut local_queue);
                    }
                    (i, cell, local_queue)
                })
                .collect();
            std::mem::swap(&mut prev2, &mut prev1);
            prev1.iter_mut().for_each(|c| *c = HCell::fresh());
            for (i, cell, mut local_queue) in results {
                prev1[i] = cell;
                queue.append(&mut local_queue);
            }
        }
    });

    Phase1Outcome {
        regions: finalize_queue(queue),
        per_node: vec![NodeStats::default(); threads],
        wall: t0.elapsed(),
        host_wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan, MutationProfile};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    #[test]
    fn shm_port_matches_serial_and_dsm() {
        let (s, t, _) = planted_pair(
            350,
            350,
            &HomologyPlan {
                region_count: 4,
                region_len_mean: 70,
                region_len_jitter: 10,
                profile: MutationProfile::similar(),
            },
            41,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for nprocs in [1, 2, 4] {
            let shm = heuristic_block_align_shm(&s, &t, &SC, &params(), nprocs, 8, 8);
            assert_eq!(shm.regions, serial, "nprocs={nprocs}");
        }
        let dsm = crate::heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &crate::BlockedConfig::new(2, 8, 8),
        );
        assert_eq!(dsm.regions, serial);
    }

    #[test]
    fn antidiagonal_matches_serial() {
        let (s, t, _) = planted_pair(
            220,
            260,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 50,
                region_len_jitter: 15,
                profile: MutationProfile::similar(),
            },
            42,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for threads in [1, 2, 4] {
            let wave = heuristic_antidiagonal_rayon(&s, &t, &SC, &params(), threads);
            assert_eq!(wave.regions, serial, "threads={threads}");
        }
    }

    #[test]
    fn antidiagonal_degenerate_inputs() {
        for (s, t) in [(&b""[..], &b"ACGT"[..]), (b"ACGT", b""), (b"A", b"A")] {
            let serial = heuristic_align(s, t, &SC, &params());
            let wave = heuristic_antidiagonal_rayon(s, t, &SC, &params(), 2);
            assert_eq!(wave.regions, serial);
        }
    }

    #[test]
    fn shm_band_scorer_matches_the_oracle() {
        use genomedsm_core::linear::sw_score_linear;
        let (s, t, _) = planted_pair(
            500,
            460,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 80,
                region_len_jitter: 20,
                profile: MutationProfile::similar(),
            },
            43,
        );
        let threshold = 14;
        let oracle = sw_score_linear(&s, &t, &SC, threshold);
        for choice in [KernelChoice::Scalar, KernelChoice::Simd, KernelChoice::Auto] {
            for nprocs in [1, 2, 4] {
                let out = score_bands_shm(&s, &t, &SC, threshold, choice, nprocs, 7);
                assert_eq!(out.best_score, oracle.best_score, "{choice:?} p={nprocs}");
                assert_eq!(out.hits, oracle.hits, "{choice:?} p={nprocs}");
            }
        }
    }

    #[test]
    fn shm_band_scorer_degenerate_inputs() {
        use genomedsm_core::linear::sw_score_linear;
        for (s, t) in [(&b""[..], &b"ACGT"[..]), (b"ACGT", b""), (b"A", b"A")] {
            let oracle = sw_score_linear(s, t, &SC, 1);
            let out = score_bands_shm(s, t, &SC, 1, KernelChoice::Auto, 2, 3);
            assert_eq!(out.best_score, oracle.best_score);
            assert_eq!(out.hits, oracle.hits);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let serial = heuristic_align(b"ACGTACGTAC", b"ACGT", &SC, &params());
        let shm = heuristic_block_align_shm(b"ACGTACGTAC", b"ACGT", &SC, &params(), 4, 6, 6);
        assert_eq!(shm.regions, serial);
    }
}
