//! Modern shared-memory ports of the blocked strategy (ablation).
//!
//! The calibration question for this reproduction is how the paper's DSM
//! strategy maps onto today's shared-memory stacks. This module runs the
//! *same* band × block wavefront with plain scoped threads and channels —
//! no pages, no diffs, no write notices — so benchmarks can separate the
//! algorithmic cost of the wavefront from the DSM protocol overhead.
//! A rayon-based antidiagonal variant is provided as a second reference
//! point for the classic wave-front formulation (Fig. 7).

use crate::blocked::process_block;
use crate::Phase1Outcome;
use genomedsm_core::{finalize_queue, HCell, HeuristicParams, LocalRegion, RowKernel, Scoring};
use genomedsm_dsm::NodeStats;
use std::time::Instant;

fn slice_bounds(total: usize, parts: usize, k: usize) -> (usize, usize) {
    (k * total / parts + 1, (k + 1) * total / parts)
}

/// The blocked wavefront on plain threads + channels (no DSM). Identical
/// results to [`crate::heuristic_block_align`], minus the protocol.
#[allow(clippy::too_many_arguments)]
pub fn heuristic_block_align_shm(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    nprocs: usize,
    bands: usize,
    blocks: usize,
) -> Phase1Outcome {
    assert!(nprocs >= 1 && bands >= 1 && blocks >= 1);
    let t0 = Instant::now();
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();

    // Channel q carries bottom-row chunks from processor q to q+1 mod P.
    // Unbounded: the ring flow control is unnecessary off-DSM because
    // memory is shared and chunks are owned Vecs.
    let mut senders = Vec::with_capacity(nprocs);
    let mut receivers = Vec::with_capacity(nprocs);
    for _ in 0..nprocs {
        let (tx, rx) = crossbeam::channel::unbounded::<Vec<HCell>>();
        senders.push(tx);
        receivers.push(rx);
    }

    // Processor p receives from channel (p-1) mod P and produces on
    // channel p (consumed by p+1 mod P): rotate the receivers by one.
    receivers.rotate_right(1);

    let queues: Vec<Vec<LocalRegion>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nprocs);
        for (p, from_rx) in receivers.into_iter().enumerate() {
            let to_tx = senders[p].clone();
            handles.push(scope.spawn(move || {
                let mut queue: Vec<LocalRegion> = Vec::new();
                let mut band = p;
                while band < bands {
                    let (i0, i1) = slice_bounds(m, bands, band);
                    let h = (i1 + 1).saturating_sub(i0);
                    let mut left_col = vec![HCell::fresh(); h + 1];
                    for k in 0..blocks {
                        let (c_lo, c_hi) = slice_bounds(n, blocks, k);
                        let width = (c_hi + 1).saturating_sub(c_lo);
                        let top: Vec<HCell> = if band == 0 {
                            vec![HCell::fresh(); width + 1]
                        } else {
                            from_rx.recv().expect("upstream closed")
                        };
                        let bottom = process_block(
                            &kernel, s, t, i0, i1, c_lo, width, top, &mut left_col, &mut queue,
                        );
                        if k + 1 == blocks {
                            for r in 1..=h {
                                kernel.flush_open(&left_col[r], i0 + r - 1, n, &mut queue);
                            }
                        }
                        if band + 1 < bands {
                            to_tx.send(bottom).expect("downstream closed");
                        } else {
                            for (idx, cell) in bottom.iter().enumerate().skip(1) {
                                let j = c_lo - 1 + idx;
                                if j < n {
                                    kernel.flush_open(cell, m, j, &mut queue);
                                }
                            }
                        }
                    }
                    band += nprocs;
                }
                queue
            }));
        }
        drop(senders);
        handles.into_iter().map(|h| h.join().expect("worker")).collect()
    });

    Phase1Outcome {
        regions: finalize_queue(queues.into_iter().flatten().collect()),
        per_node: vec![NodeStats::default(); nprocs],
        // No virtual clock off-DSM: report the host's real wall for both.
        wall: t0.elapsed(),
        host_wall: t0.elapsed(),
    }
}

/// The classic Fig. 7 wave-front on rayon: cells of each antidiagonal are
/// independent (cell `(i, j)` needs only diagonals `d-1` and `d-2`), so
/// every antidiagonal is a `par_iter` over its cells. This is the
/// textbook formulation the paper contrasts with its column/band
/// assignments; results are identical to the serial driver because the
/// same [`RowKernel::update_cell`] runs per cell.
pub fn heuristic_antidiagonal_rayon(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    threads: usize,
) -> Phase1Outcome {
    use rayon::prelude::*;
    let t0 = Instant::now();
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("build rayon pool");

    // Antidiagonal d holds cells (i, j) with i + j == d, 1 <= i <= m,
    // 1 <= j <= n. Buffers are indexed by i; index 0 stands for the zero
    // border row.
    let mut prev2: Vec<HCell> = vec![HCell::fresh(); m + 1]; // diagonal d-2
    let mut prev1: Vec<HCell> = vec![HCell::fresh(); m + 1]; // diagonal d-1
    let mut queue: Vec<LocalRegion> = Vec::new();

    pool.install(|| {
        for d in 2..=(m + n) {
            let i_lo = 1.max(d.saturating_sub(n));
            let i_hi = m.min(d - 1);
            if i_lo > i_hi {
                // Degenerate axis: nothing on this antidiagonal.
                std::mem::swap(&mut prev2, &mut prev1);
                prev1.iter_mut().for_each(|c| *c = HCell::fresh());
                continue;
            }
            let p2 = &prev2;
            let p1 = &prev1;
            let results: Vec<(usize, HCell, Vec<LocalRegion>)> = (i_lo..=i_hi)
                .into_par_iter()
                .map(|i| {
                    let j = d - i;
                    // Predecessors: diag = (i-1, j-1) on d-2; up = (i-1, j)
                    // and left = (i, j-1) on d-1. Border cells are fresh.
                    let diag = p2[i - 1]; // (i-1, j-1): fresh border when on the rim
                    let up = p1[i - 1]; // (i-1, j): the zero border row when i == 1
                    let left = p1[i];
                    let mut local_queue = Vec::new();
                    let cell = kernel.update_cell(
                        s[i - 1],
                        t[j - 1],
                        i,
                        j,
                        &diag,
                        &up,
                        &left,
                        &mut local_queue,
                    );
                    // Edge flushes mirror the serial driver: rightmost
                    // column per row, bottom row (corner once).
                    if j == n {
                        kernel.flush_open(&cell, i, n, &mut local_queue);
                    } else if i == m {
                        kernel.flush_open(&cell, m, j, &mut local_queue);
                    }
                    (i, cell, local_queue)
                })
                .collect();
            std::mem::swap(&mut prev2, &mut prev1);
            prev1.iter_mut().for_each(|c| *c = HCell::fresh());
            for (i, cell, mut local_queue) in results {
                prev1[i] = cell;
                queue.append(&mut local_queue);
            }
        }
    });

    Phase1Outcome {
        regions: finalize_queue(queue),
        per_node: vec![NodeStats::default(); threads],
        wall: t0.elapsed(),
        host_wall: t0.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan, MutationProfile};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    #[test]
    fn shm_port_matches_serial_and_dsm() {
        let (s, t, _) = planted_pair(
            350,
            350,
            &HomologyPlan {
                region_count: 4,
                region_len_mean: 70,
                region_len_jitter: 10,
                profile: MutationProfile::similar(),
            },
            41,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for nprocs in [1, 2, 4] {
            let shm = heuristic_block_align_shm(&s, &t, &SC, &params(), nprocs, 8, 8);
            assert_eq!(shm.regions, serial, "nprocs={nprocs}");
        }
        let dsm = crate::heuristic_block_align(
            &s,
            &t,
            &SC,
            &params(),
            &crate::BlockedConfig::new(2, 8, 8),
        );
        assert_eq!(dsm.regions, serial);
    }

    #[test]
    fn antidiagonal_matches_serial() {
        let (s, t, _) = planted_pair(
            220,
            260,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 50,
                region_len_jitter: 15,
                profile: MutationProfile::similar(),
            },
            42,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for threads in [1, 2, 4] {
            let wave = heuristic_antidiagonal_rayon(&s, &t, &SC, &params(), threads);
            assert_eq!(wave.regions, serial, "threads={threads}");
        }
    }

    #[test]
    fn antidiagonal_degenerate_inputs() {
        for (s, t) in [(&b""[..], &b"ACGT"[..]), (b"ACGT", b""), (b"A", b"A")] {
            let serial = heuristic_align(s, t, &SC, &params());
            let wave = heuristic_antidiagonal_rayon(s, t, &SC, &params(), 2);
            assert_eq!(wave.regions, serial);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let serial = heuristic_align(b"ACGTACGTAC", b"ACGT", &SC, &params());
        let shm = heuristic_block_align_shm(b"ACGTACGTAC", b"ACGT", &SC, &params(), 4, 6, 6);
        assert_eq!(shm.regions, serial);
    }
}
