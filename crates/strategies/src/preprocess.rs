//! Strategy 3 (§5): the exact pre-process strategy.
//!
//! "The key goal of this third strategy was to calculate the similar array
//! for local sequence alignment *without introducing heuristics*". No
//! candidate-alignment tracking is kept; instead:
//!
//! * rows are grouped into **bands** assigned cyclically to nodes; a band
//!   is processed **by columns**, and once the bottom of a column group
//!   (a **chunk** of the *passage band*) is calculated it is sent to the
//!   next node (Fig. 17);
//! * each computed cell is compared to a threshold; the per-band,
//!   per-column-group hit counts form the **result matrix** `R`, where
//!   cell `R[i][j]` sums the hits of band `i`'s columns with
//!   `⌊col/ip⌋ = j` (`ip` = result-matrix interleave) — allocated so each
//!   node writes its own rows locally;
//! * selected **columns are saved to disk** (save interleave: column `c`
//!   is saved if `c ≠ 0` and `c mod ip ≡ 0`) under one of three I/O modes:
//!   disabled, *immediate* (blocking write as the column completes), or
//!   *deferred* (kept in memory, written after the computation);
//! * band sizing follows one of three schemes: **fixed** height, **equal**
//!   (every node gets the same amount of data), or **balanced** (the
//!   paper's `bandsproc`/`bsizedown`/`bsizeup` equations).
//!
//! The measured times mirror the paper's: **init** (DSM start-up to the
//! first barrier), **core** (score-matrix computation; "the largest of
//! the measured times"), **term** (deferred I/O + final barrier).
//!
//! With supervision enabled ([`genomedsm_dsm::DsmConfig::supervise`]) the
//! strategy runs in **tolerant mode**: border chunks flow through a
//! per-role [`Ledger`] log, a surviving node adopts a dead node's bands
//! (see [`crate::checkpoint`]), saved columns are buffered per role and
//! written crash-safely at termination (so an adopter reproduces the dead
//! node's `node_r.cols` byte for byte), and the result matrix is gathered
//! by the lowest *alive* node. Saved-column files always carry the
//! checksummed [`crate::checkpoint::FILE_MAGIC`] footer, written via
//! temp-file + fsync + atomic rename, and [`read_saved_columns`] rejects
//! truncated or corrupted files with a typed error.

use crate::checkpoint::{
    read_verified, run_elastic, run_with_takeover, AtomicFileWriter, FlowChannel, Ledger,
    StrategyError, StrategyResult,
};
use crate::ring::ChunkRing;
use genomedsm_core::Scoring;
use genomedsm_dsm::{
    DsmConfig, DsmError, DsmSystem, FrameReader, FrameWriter, GlobalVec, Node, NodeStats, Wire,
};
use genomedsm_kernels::{BandScorer, KernelChoice};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Band (row-group) sizing scheme (§5's three schemes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BandScheme {
    /// Fixed band height in rows; the last band may be shorter.
    Fixed(usize),
    /// One band per node, all of (nearly) the same height.
    Equal,
    /// The paper's balancing equations: all nodes process the same number
    /// of bands of equal size, while staying close to the requested
    /// height.
    Balanced(usize),
}

impl BandScheme {
    /// Computes the band boundaries (1-based inclusive row ranges).
    pub fn bands(&self, rows: usize, nprocs: usize) -> Vec<(usize, usize)> {
        if rows == 0 {
            return Vec::new();
        }
        let heights: Vec<usize> = match *self {
            BandScheme::Fixed(h) => {
                let h = h.max(1);
                let full = rows / h;
                let mut v = vec![h; full];
                if !rows.is_multiple_of(h) {
                    v.push(rows % h);
                }
                v
            }
            BandScheme::Equal => {
                let b = nprocs.min(rows);
                (0..b)
                    .map(|k| ((k + 1) * rows / b) - (k * rows / b))
                    .collect()
            }
            BandScheme::Balanced(h) => {
                let h = h.max(1);
                // bandsproc = ceil(ceil(rows/h) / nprocs)
                let bandsproc = rows.div_ceil(h).div_ceil(nprocs).max(1);
                let down = rows.div_ceil(bandsproc * nprocs).max(1);
                let up = if bandsproc > 1 {
                    rows.div_ceil((bandsproc - 1) * nprocs).max(1)
                } else {
                    down
                };
                // Pick whichever is nearer the requested height.
                let chosen = if up.abs_diff(h) < down.abs_diff(h) {
                    up
                } else {
                    down
                };
                let full = rows / chosen;
                let mut v = vec![chosen; full];
                if !rows.is_multiple_of(chosen) {
                    v.push(rows % chosen);
                }
                v
            }
        };
        let mut out = Vec::with_capacity(heights.len());
        let mut row = 1;
        for h in heights {
            out.push((row, row + h - 1));
            row += h;
        }
        debug_assert_eq!(row - 1, rows);
        out
    }
}

/// Chunk (column-group) sizing of the passage band: "the size of the
/// chunks can be set to a fixed value or grow in arithmetic or geometric
/// projections".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkPlan {
    /// All chunks have this width (the last may be shorter).
    Fixed(usize),
    /// Widths `start, start+step, start+2·step, …`.
    Arithmetic {
        /// First chunk width.
        start: usize,
        /// Width increase per chunk.
        step: usize,
    },
    /// Widths `start, start·factor, start·factor², …`.
    Geometric {
        /// First chunk width.
        start: usize,
        /// Multiplier per chunk (>= 2 to actually grow).
        factor: usize,
    },
}

impl ChunkPlan {
    /// Splits `cols` columns into chunk ranges (1-based inclusive).
    pub fn chunks(&self, cols: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        let mut next_width = match *self {
            ChunkPlan::Fixed(w) => w.max(1),
            ChunkPlan::Arithmetic { start, .. } => start.max(1),
            ChunkPlan::Geometric { start, .. } => start.max(1),
        };
        let mut lo = 1;
        while lo <= cols {
            let hi = (lo + next_width - 1).min(cols);
            out.push((lo, hi));
            lo = hi + 1;
            next_width = match *self {
                ChunkPlan::Fixed(w) => w.max(1),
                ChunkPlan::Arithmetic { step, .. } => next_width + step,
                ChunkPlan::Geometric { factor, .. } => {
                    next_width.saturating_mul(factor.max(1)).min(cols.max(1))
                }
            };
        }
        out
    }
}

/// Disk-saving mode for the selected columns (§5's three I/O modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// "The simplest is the disabling of any storing operation."
    None,
    /// Write each selected column with a blocking operation as soon as it
    /// is ready.
    Immediate,
    /// Keep selected columns in memory and write them after the whole
    /// matrix has been calculated.
    Deferred,
}

/// Configuration of the pre-process strategy.
#[derive(Debug, Clone)]
pub struct PreprocessConfig {
    /// Band sizing scheme.
    pub band: BandScheme,
    /// Passage-band chunking.
    pub chunk: ChunkPlan,
    /// Hit threshold: cells scoring at least this count into `R`.
    pub threshold: i32,
    /// Result-matrix interleave `ip`: columns `c` with the same
    /// `(c−1) / ip` share one cell of `R`.
    pub result_interleave: usize,
    /// Save interleave: column `c` is saved when `c mod ip == 0`.
    pub save_interleave: usize,
    /// I/O mode for the saved columns.
    pub io_mode: IoMode,
    /// Virtual cost of one plain SW cell update (era-calibrated default,
    /// see [`crate::costs`]).
    pub cell_cost: Duration,
    /// Virtual cost per byte written to disk (era NFS with buffer cache:
    /// writes land in the client cache at roughly 20 MB/s effective).
    pub io_byte_cost: Duration,
    /// Directory for the per-node column files (required unless
    /// `io_mode == None`).
    pub save_dir: Option<PathBuf>,
    /// Score-kernel selection for the per-band inner loop: the striped
    /// SIMD kernel when it applies ([`genomedsm_kernels::BandScorer`]),
    /// otherwise the plain scalar recurrence. Either way the results are
    /// bit-identical; only host time changes (the simulated cluster time
    /// is driven by `cell_cost` regardless).
    pub kernel: KernelChoice,
    /// Enables band-boundary checkpointing plus border message logging so
    /// a node can recover from a fail-stop crash (DESIGN.md §5.7). A
    /// checkpoint flushes the band's result-matrix row home and durably
    /// records the deferred-column buffer and save cursors; popped top
    /// borders of the in-flight band are logged so a restarted node can
    /// replay the band without re-consuming the ring. Off by default —
    /// fault-free runs skip the checkpoint overhead, and crash points
    /// reported by the injector are ignored.
    pub checkpoint: bool,
    /// Virtual downtime charged when a node crash-restarts (failure
    /// detection + checkpoint reload). Lands in the derived computation
    /// remainder and in [`NodeStats::recovery_time`].
    pub restart_cost: Duration,
    /// DSM cluster configuration.
    pub dsm: DsmConfig,
}

impl PreprocessConfig {
    /// 1 K blocking everywhere, no I/O — the Fig. 19 baseline
    /// configuration.
    pub fn new(nprocs: usize) -> Self {
        Self {
            band: BandScheme::Fixed(1024),
            chunk: ChunkPlan::Fixed(1024),
            threshold: 30,
            result_interleave: 1024,
            save_interleave: 1024,
            io_mode: IoMode::None,
            cell_cost: crate::costs::PLAIN_CELL,
            io_byte_cost: Duration::from_nanos(50), // ~20 MB/s buffered
            save_dir: None,
            kernel: KernelChoice::Auto,
            checkpoint: false,
            restart_cost: Duration::from_millis(250),
            dsm: DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster()),
        }
    }
}

/// One column segment kept for disk storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedColumn {
    /// Band index.
    pub band: u32,
    /// Column number (1-based).
    pub col: u32,
    /// Scores of the band's rows in this column, top to bottom.
    pub values: Vec<i32>,
}

/// Result of a pre-process run.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// The result matrix: `result[band][group]` = number of cells at or
    /// above the threshold.
    pub result: Vec<Vec<i64>>,
    /// Band row ranges (1-based inclusive).
    pub band_bounds: Vec<(usize, usize)>,
    /// The best score seen anywhere (kept for validation; the paper keeps
    /// "only a scoreboard of points of interest").
    pub best_score: i32,
    /// Per-node init times (DSM start to first barrier).
    pub init: Vec<Duration>,
    /// Per-node core times (score-matrix computation).
    pub core: Vec<Duration>,
    /// Per-node termination times (deferred I/O + final barrier).
    pub term: Vec<Duration>,
    /// DSM statistics per node.
    pub per_node: Vec<NodeStats>,
    /// Total simulated cluster time (max node virtual clock).
    pub wall: Duration,
    /// Real time the simulation took on the host (diagnostic only).
    pub host_wall: Duration,
    /// Files written (empty when I/O is disabled).
    pub files: Vec<PathBuf>,
}

impl PreprocessOutcome {
    /// The paper's reported processing time: the largest core time.
    pub fn core_time(&self) -> Duration {
        self.core.iter().copied().max().unwrap_or_default()
    }

    /// Total hits across the result matrix.
    pub fn total_hits(&self) -> i64 {
        self.result.iter().flatten().sum()
    }
}

/// Per-node output of a pre-process worker. `Default` doubles as the
/// sentinel a fail-stopped worker leaves behind.
#[derive(Debug, Default)]
struct NodeOut {
    init: Duration,
    core: Duration,
    term: Duration,
    best: i32,
    gathered: Vec<i64>,
    /// First I/O failure, deferred to the end of the run so the worker
    /// keeps lockstep with its peers instead of deadlocking them.
    io_err: Option<(String, io::Error)>,
}

impl Wire for NodeOut {
    fn encode(&self, w: &mut FrameWriter) {
        self.init.encode(w);
        self.core.encode(w);
        self.term.encode(w);
        self.best.encode(w);
        self.gathered.encode(w);
        // An `io::Error` does not round-trip structurally; what the
        // gather consumer needs is the message, so that is what travels.
        let flat = self
            .io_err
            .as_ref()
            .map(|(ctx, e)| (ctx.clone(), e.to_string()));
        flat.encode(w);
    }
    fn decode(r: &mut FrameReader<'_>) -> Result<Self, DsmError> {
        Ok(NodeOut {
            init: Duration::decode(r)?,
            core: Duration::decode(r)?,
            term: Duration::decode(r)?,
            best: i32::decode(r)?,
            gathered: Vec::<i64>::decode(r)?,
            io_err: Option::<(String, String)>::decode(r)?
                .map(|(ctx, msg)| (ctx, io::Error::other(msg))),
        })
    }
}

/// Runs the pre-process strategy: exact SW scores over a banded wavefront,
/// producing the result matrix of threshold hits and (optionally) saved
/// columns.
///
/// # Errors
///
/// Returns [`StrategyError::Io`] when a saved-column file cannot be
/// created, written, or atomically finished (the computation itself still
/// ran to completion — the error reports the first failing file).
pub fn preprocess_align(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    config: &PreprocessConfig,
) -> StrategyResult<PreprocessOutcome> {
    assert!(config.result_interleave >= 1, "interleave must be >= 1");
    assert!(
        config.io_mode == IoMode::None || config.save_dir.is_some(),
        "saving columns requires a save_dir"
    );
    let t_start = Instant::now();
    let nprocs = config.dsm.nprocs;
    let m = s.len();
    let n = t.len();
    let bands = config.band.bands(m, nprocs);
    let nbands = bands.len();
    let chunks = config.chunk.chunks(n);
    let nchunks = chunks.len();
    let groups = if n == 0 {
        0
    } else {
        (n - 1) / config.result_interleave + 1
    };
    let max_chunk = chunks
        .iter()
        .map(|&(lo, hi)| hi + 1 - lo + 1)
        .max()
        .unwrap_or(1);

    let run = DsmSystem::run_wire(config.dsm.clone(), |node: &mut Node| {
        if node.supervised() {
            let ctx = PpCtx {
                s,
                t,
                scoring,
                config,
                bands: &bands,
                chunks: &chunks,
                groups,
                nprocs,
                max_chunk,
            };
            return tolerant_pp_worker(node, &ctx);
        }
        let p = node.id();
        let mut rings: Vec<ChunkRing<i32>> = (0..nprocs)
            .map(|q| {
                ChunkRing::new(
                    node,
                    nchunks.max(1),
                    max_chunk,
                    q,
                    (2 * q) as u32,
                    (2 * q + 1) as u32,
                )
            })
            .collect();
        // The result matrix, one row per band, each homed on the band's
        // owner so writes are local ("allocated in such a way as to allow
        // each node to handle writes locally", §5.1).
        let result_rows: Vec<genomedsm_dsm::GlobalVec<i64>> = (0..nbands)
            .map(|b| node.alloc_vec_on::<i64>(groups.max(1), b % node.nprocs()))
            .collect();
        node.barrier();
        let init = node.now();

        let core_start = node.now();
        let from_ring = (p + nprocs - 1) % nprocs;
        let mut best_score = 0i32;
        let mut saved: Vec<SavedColumn> = Vec::new();
        let mut io_err: Option<(String, io::Error)> = None;
        let mut writer = match (config.io_mode, &config.save_dir) {
            (IoMode::Immediate, Some(dir)) => {
                let path = dir.join(format!("node_{p}.cols"));
                match AtomicFileWriter::create(&path) {
                    Ok(w) => Some(w),
                    Err(e) => {
                        io_err = Some((format!("create saved-column file {}", path.display()), e));
                        None
                    }
                }
            }
            _ => None,
        };

        let save_every = if config.io_mode != IoMode::None && config.save_interleave > 0 {
            Some(config.save_interleave)
        } else {
            None
        };
        // --- Crash-recovery state (DESIGN.md §5.7) -------------------
        // The fail-stop model is cooperative: the injector names a chunk
        // ordinal, and when this node completes that many chunks it
        // "crashes" — the DSM cache and all volatile band state are lost
        // and the band loop restarts from the last checkpoint. Durable
        // state (modeled as surviving the crash): the checkpoint cursors
        // below, the per-band log of popped top borders, the count of
        // chunks already pushed downstream, and columns already written
        // by immediate I/O.
        let crash_at = if config.checkpoint {
            node.crash_point()
        } else {
            None
        };
        let mut chunks_done = 0u64;
        let mut crashed = false;
        let mut ckpt_band = p; // band to resume from
        let mut ckpt_best = 0i32;
        let mut ckpt_saved_len = 0usize; // deferred columns in the checkpoint
        let mut ckpt_cols_seen = 0u64;
        let mut cols_seen = 0u64; // save events so far (logical order)
        let mut cols_saved = 0u64; // columns durably written (immediate I/O)
        let mut top_log: Vec<Vec<i32>> = Vec::new(); // borders popped this band
        let mut pushed = 0usize; // chunks already sent downstream this band

        let mut band = p;
        'bands: while band < nbands {
            let (i0, i1) = bands[band];
            let h = i1 + 1 - i0;
            let mut hits_row = vec![0i64; groups];
            // The striped kernel counts hits only for positive thresholds
            // (a non-positive threshold makes every cell a hit, which only
            // the scalar loop reproduces), so gate on that before asking
            // for a scorer; `BandScorer::new` handles every other
            // applicability condition (choice, ISA, i16 head-room).
            let mut scorer = if config.threshold >= 1 {
                BandScorer::new(
                    config.kernel,
                    &s[i0 - 1..i1],
                    (m, n),
                    scoring,
                    config.threshold,
                    save_every,
                )
            } else {
                None
            };
            // Saves a selected column, honoring the durable-write cursor:
            // during post-crash replay, columns immediate I/O already put
            // on disk are skipped (and not re-charged) so the file stays
            // bit-identical to a fault-free run.
            macro_rules! save_column {
                ($column:expr) => {{
                    let column: SavedColumn = $column;
                    match config.io_mode {
                        IoMode::Immediate => {
                            if cols_seen >= cols_saved {
                                let mut buf = Vec::with_capacity(12 + 4 * column.values.len());
                                encode_column(&mut buf, &column);
                                let failed = match writer.as_mut() {
                                    Some(w) => w.write_all(&buf).err(),
                                    None => None, // already failed; keep computing
                                };
                                if let Some(e) = failed {
                                    writer = None;
                                    io_err.get_or_insert((
                                        format!("write saved-column file node_{p}.cols"),
                                        e,
                                    ));
                                }
                                node.advance(crate::costs::cells(config.io_byte_cost, buf.len()));
                                cols_saved += 1;
                            }
                        }
                        IoMode::Deferred => saved.push(column),
                        IoMode::None => unreachable!("save_every is None without I/O"),
                    }
                    cols_seen += 1;
                }};
            }
            // Fail-stop crash at a chunk boundary: lose all volatile band
            // state, charge the downtime, and resume from the checkpoint.
            macro_rules! crash_check {
                () => {{
                    chunks_done += 1;
                    if !crashed && crash_at == Some(chunks_done) {
                        crashed = true;
                        node.crash_restart(config.restart_cost);
                        best_score = ckpt_best;
                        saved.truncate(ckpt_saved_len);
                        cols_seen = ckpt_cols_seen;
                        band = ckpt_band;
                        continue 'bands;
                    }
                }};
            }
            // Fetches the chunk's top border: band 0 regenerates zeros;
            // otherwise a replayed chunk reads the logged border, and a
            // fresh chunk pops the ring (logging the border when
            // checkpointing is on, so a later replay can reproduce it
            // without re-consuming the ring).
            macro_rules! top_border {
                ($k:expr, $width:expr) => {{
                    if band == 0 {
                        vec![0i32; $width + 1]
                    } else if $k < top_log.len() {
                        top_log[$k].clone()
                    } else {
                        let border = rings[from_ring].pop(node, $width + 1);
                        if config.checkpoint {
                            top_log.push(border.clone());
                        }
                        border
                    }
                }};
            }
            // Sends the chunk's bottom border downstream, unless a
            // pre-crash execution already delivered it (the consumer's pop
            // cursor has moved past it; re-pushing would corrupt the ring).
            macro_rules! push_bottom {
                ($k:expr, $bottom:expr) => {{
                    if band + 1 < nbands && $k >= pushed {
                        rings[p].push(node, $bottom);
                        pushed = $k + 1;
                    }
                }};
            }

            if let Some(scorer) = scorer.as_mut() {
                // Striped SIMD inner loop: the same cells, vectorized.
                let mut corner = 0i32; // H[i1][c_lo - 1]; 0 at the left border
                for (k, &(c_lo, c_hi)) in chunks.iter().enumerate() {
                    let width = c_hi + 1 - c_lo;
                    let top: Vec<i32> = top_border!(k, width);
                    let mut bottom_vals = Vec::with_capacity(width);
                    let mut col_hits = Vec::with_capacity(width);
                    let mut saved_cols = Vec::new();
                    scorer.advance(
                        &t[c_lo - 1..c_hi],
                        &top,
                        c_lo,
                        &mut bottom_vals,
                        &mut col_hits,
                        &mut saved_cols,
                    );
                    for (idx, &hits) in col_hits.iter().enumerate() {
                        let j = c_lo + idx;
                        hits_row[(j - 1) / config.result_interleave] += hits as i64;
                    }
                    for (col, values) in saved_cols {
                        save_column!(SavedColumn {
                            band: band as u32,
                            col: col as u32,
                            values,
                        });
                    }
                    let mut bottom = Vec::with_capacity(width + 1);
                    bottom.push(corner);
                    bottom.append(&mut bottom_vals);
                    let Some(&last) = bottom.last() else {
                        unreachable!("bottom always carries the corner plus the chunk")
                    };
                    corner = last;
                    node.advance(crate::costs::cells(config.cell_cost, h * width));
                    push_bottom!(k, &bottom);
                    crash_check!();
                }
                best_score = best_score.max(scorer.best_score());
            } else {
                // Left border column (column 0 of the band): zeros.
                let mut left_col = vec![0i32; h + 1];
                for (k, &(c_lo, c_hi)) in chunks.iter().enumerate() {
                    let width = c_hi + 1 - c_lo;
                    let top: Vec<i32> = top_border!(k, width);
                    // Process the chunk column by column, top to bottom.
                    let mut bottom = vec![0i32; width + 1];
                    bottom[0] = left_col[h];
                    let mut prev_col = left_col.clone();
                    prev_col[0] = top[0];
                    let mut cur_col = vec![0i32; h + 1];
                    for j in c_lo..=c_hi {
                        cur_col[0] = top[j - c_lo + 1];
                        let tc = t[j - 1];
                        let mut col_best = 0i32;
                        for r in 1..=h {
                            let i = i0 + r - 1;
                            let diag = prev_col[r - 1] + scoring.subst(s[i - 1], tc);
                            let up = cur_col[r - 1] + scoring.gap;
                            let left = prev_col[r] + scoring.gap;
                            let v = diag.max(up).max(left).max(0);
                            cur_col[r] = v;
                            if v >= config.threshold {
                                hits_row[(j - 1) / config.result_interleave] += 1;
                            }
                            col_best = col_best.max(v);
                        }
                        best_score = best_score.max(col_best);
                        bottom[j - c_lo + 1] = cur_col[h];
                        // Column saving (save interleave).
                        if config.io_mode != IoMode::None
                            && config.save_interleave > 0
                            && j % config.save_interleave == 0
                        {
                            save_column!(SavedColumn {
                                band: band as u32,
                                col: j as u32,
                                values: cur_col[1..].to_vec(),
                            });
                        }
                        std::mem::swap(&mut prev_col, &mut cur_col);
                    }
                    left_col.copy_from_slice(&prev_col);
                    node.advance(crate::costs::cells(config.cell_cost, h * width));
                    push_bottom!(k, &bottom);
                    crash_check!();
                }
            }
            // Publish this band's result-matrix row (local-home write).
            if groups > 0 {
                node.vec_write_range(&result_rows[band], 0, &hits_row);
            }
            if config.checkpoint {
                // Band-boundary checkpoint: flush the result row to its
                // home (durable on a surviving machine) and persist the
                // deferred columns appended since the last checkpoint,
                // plus the cursors, to local stable storage.
                node.flush_modified();
                let ckpt_bytes = 32
                    + groups * 8
                    + saved[ckpt_saved_len..]
                        .iter()
                        .map(|c| 12 + 4 * c.values.len())
                        .sum::<usize>();
                node.advance(crate::costs::cells(config.io_byte_cost, ckpt_bytes));
                ckpt_band = band + nprocs;
                ckpt_best = best_score;
                ckpt_saved_len = saved.len();
                ckpt_cols_seen = cols_seen;
            }
            top_log.clear();
            pushed = 0;
            band += nprocs;
        }
        let core = node.now() - core_start;

        // Termination: deferred I/O, then the final barrier.
        let term_start = node.now();
        if config.io_mode == IoMode::Deferred {
            let Some(dir) = config.save_dir.as_ref() else {
                unreachable!("deferred IoMode is only configured with a save_dir")
            };
            let path = dir.join(format!("node_{p}.cols"));
            let mut bytes = 0usize;
            if let Err(e) = write_role_file(&path, &saved, &mut bytes) {
                io_err.get_or_insert((format!("write saved-column file {}", path.display()), e));
            }
            node.advance(crate::costs::cells(config.io_byte_cost, bytes));
        }
        if let Some(w) = writer.take() {
            if let Err(e) = w.finish() {
                io_err.get_or_insert((format!("finish saved-column file node_{p}.cols"), e));
            }
        }
        node.barrier();
        // Node 0 gathers the result matrix for reporting.
        let gathered = if p == 0 && groups > 0 {
            let mut flat = Vec::with_capacity(nbands * groups);
            for row in &result_rows {
                flat.extend(node.vec_read_range(row, 0..groups));
            }
            flat
        } else {
            Vec::new()
        };
        node.barrier();
        let term = node.now() - term_start;
        NodeOut {
            init,
            core,
            term,
            best: best_score,
            gathered,
            io_err,
        }
    });

    let mut init = Vec::new();
    let mut core = Vec::new();
    let mut term = Vec::new();
    let mut best_score = 0;
    let mut flat = Vec::new();
    for out in run.results {
        if let Some((context, source)) = out.io_err {
            return Err(StrategyError::io(context, source));
        }
        init.push(out.init);
        core.push(out.core);
        term.push(out.term);
        best_score = best_score.max(out.best);
        if !out.gathered.is_empty() {
            flat = out.gathered;
        }
    }
    let result: Vec<Vec<i64>> = if groups == 0 {
        vec![Vec::new(); nbands]
    } else {
        flat.chunks(groups).map(<[i64]>::to_vec).collect()
    };
    let files = match (&config.save_dir, config.io_mode) {
        (Some(dir), IoMode::Immediate | IoMode::Deferred) => (0..nprocs)
            .map(|p| dir.join(format!("node_{p}.cols")))
            .filter(|f| f.exists())
            .collect(),
        _ => Vec::new(),
    };
    Ok(PreprocessOutcome {
        result,
        band_bounds: bands,
        best_score,
        init,
        core,
        term,
        wall: run.stats.iter().map(|s| s.total).max().unwrap_or_default(),
        host_wall: t_start.elapsed(),
        per_node: run.stats,
        files,
    })
}

// ---------------------------------------------------------------------------
// Tolerant (takeover-capable) worker
// ---------------------------------------------------------------------------

/// Shared read-only inputs of the tolerant worker.
struct PpCtx<'a> {
    s: &'a [u8],
    t: &'a [u8],
    scoring: &'a Scoring,
    config: &'a PreprocessConfig,
    bands: &'a [(usize, usize)],
    chunks: &'a [(usize, usize)],
    groups: usize,
    nprocs: usize,
    max_chunk: usize,
}

/// One executed role's results: the bands' best score and the columns it
/// selected for disk, in deterministic band-then-column order (an adopter
/// reproduces the dead owner's file byte for byte).
struct RoleRun {
    role: usize,
    best: i32,
    saved: Vec<SavedColumn>,
}

/// Accumulator of one takeover attempt (see
/// [`crate::checkpoint::run_with_takeover`]).
#[derive(Default)]
struct PpAcc {
    runs: Vec<RoleRun>,
}

fn entry(acc: &mut PpAcc, role: usize) -> &mut RoleRun {
    if let Some(i) = acc.runs.iter().position(|r| r.role == role) {
        return &mut acc.runs[i];
    }
    acc.runs.push(RoleRun {
        role,
        best: 0,
        saved: Vec::new(),
    });
    let Some(run) = acc.runs.last_mut() else {
        unreachable!("a run record was pushed just above")
    };
    run
}

/// Strategy 3 worker in tolerant mode: bands flow through the per-role
/// [`Ledger`] log and [`run_with_takeover`] re-executes dead roles on
/// survivors. Saved columns are buffered per role and written atomically
/// at termination; the result matrix is gathered by the lowest alive
/// node; each role's best score is published in its ledger user word so a
/// completed-then-died role still contributes.
fn tolerant_pp_worker(node: &mut Node, ctx: &PpCtx<'_>) -> NodeOut {
    let nprocs = ctx.nprocs;
    let nbands = ctx.bands.len();
    let nchunks = ctx.chunks.len();
    // Role r pushes at most one chunk per passage-band chunk of each of
    // its bands.
    let log_entries = nbands.div_ceil(nprocs.max(1)) * nchunks.max(1);
    let ledger = Ledger::<i32>::new(node, nprocs, log_entries, ctx.max_chunk);
    let result_rows: Vec<GlobalVec<i64>> = (0..nbands)
        .map(|b| node.alloc_vec_on::<i64>(ctx.groups.max(1), b % nprocs))
        .collect();
    node.barrier();
    let init = node.now();
    let core_start = node.now();
    let crash_at = node.crash_point();
    let mut units = 0u64;

    // One work unit is one band×chunk tile; a scheduled rejoin's virtual
    // downtime is priced at that granularity.
    let tile_cells = (ctx.s.len() / nbands.max(1)).max(1) * (ctx.t.len() / nchunks.max(1)).max(1);
    let unit_time = crate::costs::cells(ctx.config.cell_cost, tile_cells.min(u32::MAX as usize));
    // A single workload wrapped in the elastic driver: a victim with a
    // scheduled rejoin is re-admitted at the closing boundary, after the
    // survivors have gathered the results. Budget: takeover sweep (at
    // most nprocs rounds) plus the two termination barriers.
    let mut rounds = run_elastic(node, 1, nprocs.max(1) + 3, unit_time, |node, _| {
        let pieces = run_with_takeover(node, nprocs, |node, execute, resume, acc: &mut PpAcc| {
            run_pp_bands(
                node,
                ctx,
                &ledger,
                &result_rows,
                execute,
                resume,
                crash_at,
                &mut units,
                acc,
            )
        });
        let Some(pieces) = pieces else {
            return NodeOut::default(); // this worker fail-stopped
        };
        let core = node.now() - core_start;
        let term_start = node.now();

        // Merge role runs: at most one *surviving* node holds a given
        // role (adoption only changes when the adopter itself dies), and
        // replayed duplicates within this node are identical — last wins.
        let mut by_role: std::collections::BTreeMap<usize, RoleRun> = Default::default();
        for run in pieces.into_iter().flat_map(|a| a.runs) {
            by_role.insert(run.role, run);
        }
        let mut best = 0i32;
        let mut io_err: Option<(String, io::Error)> = None;
        for run in by_role.values() {
            best = best.max(run.best);
            if ctx.config.io_mode != IoMode::None {
                let Some(dir) = ctx.config.save_dir.as_ref() else {
                    unreachable!("io_mode != None is only configured with a save_dir")
                };
                let path = dir.join(format!("node_{}.cols", run.role));
                let mut bytes = 0usize;
                let res = write_role_file(&path, &run.saved, &mut bytes);
                if ctx.config.io_mode == IoMode::Deferred {
                    // Immediate mode already charged each column as it
                    // was selected; deferred pays for the whole file
                    // here.
                    node.advance(crate::costs::cells(ctx.config.io_byte_cost, bytes));
                }
                if let Err(e) = res {
                    io_err
                        .get_or_insert((format!("write saved-column file {}", path.display()), e));
                }
            }
        }

        let dead = node.barrier_wait();
        let gatherer = (0..nprocs).find(|q| !dead.contains(q)).unwrap_or(0);
        let mut gathered = Vec::new();
        if node.id() == gatherer {
            if ctx.groups > 0 {
                for row in &result_rows {
                    node.invalidate_vec(row);
                    gathered.extend(node.vec_read_range(row, 0..ctx.groups));
                }
            }
            // Fold the per-role best scores published in the ledger: this
            // covers a role whose worker completed, published, and only
            // then died — its memory is gone but its user word survives.
            for r in 0..nprocs {
                best = best.max(ledger.snapshot(node, r).user as i32);
            }
        }
        node.barrier_wait();
        let term = node.now() - term_start;
        NodeOut {
            init,
            core,
            term,
            best,
            gathered,
            io_err,
        }
    });
    rounds.pop().unwrap_or_default()
}

/// Executes every band whose role is in `execute`, ascending — the
/// wavefront order; band `b` consumes band `b-1`'s chunks either from
/// this very loop (internal role) or from a live external producer.
#[allow(clippy::too_many_arguments)]
fn run_pp_bands(
    node: &mut Node,
    ctx: &PpCtx<'_>,
    ledger: &Ledger<i32>,
    result_rows: &[GlobalVec<i64>],
    execute: &[usize],
    resume: bool,
    crash_at: Option<u64>,
    units: &mut u64,
    acc: &mut PpAcc,
) -> Result<(), DsmError> {
    let config = ctx.config;
    let nprocs = ctx.nprocs;
    let nbands = ctx.bands.len();
    let (m, n) = (ctx.s.len(), ctx.t.len());
    // Ring q carries passage-band chunks from role q to role (q+1) mod P;
    // capacity = one whole passage band, as in the plain path's rings.
    let mut channels: Vec<FlowChannel> = (0..nprocs)
        .map(|q| {
            FlowChannel::new(
                node,
                ledger,
                q,
                (q + 1) % nprocs,
                (2 * q) as u32,
                (2 * q + 1) as u32,
                ctx.chunks.len().max(1) as u64,
                resume,
            )
        })
        .collect();
    // Per-role dense chunk ordinals: every band but the first pops, every
    // band but the last pushes, in ascending band order.
    let mut pops = vec![0u64; nprocs];
    let mut pushes = vec![0u64; nprocs];
    // Every executed role gets an entry (and so a column file) even if it
    // owns no bands, mirroring the plain path's one-file-per-node.
    for &r in execute {
        entry(acc, r);
    }
    let save_every = if config.io_mode != IoMode::None && config.save_interleave > 0 {
        Some(config.save_interleave)
    } else {
        None
    };
    for band in 0..nbands {
        let role = band % nprocs;
        if !execute.contains(&role) {
            continue;
        }
        let in_ring = (role + nprocs - 1) % nprocs;
        let (i0, i1) = ctx.bands[band];
        let h = i1 + 1 - i0;
        let mut hits_row = vec![0i64; ctx.groups];
        let mut band_best = 0i32;
        let mut scorer = if config.threshold >= 1 {
            BandScorer::new(
                config.kernel,
                &ctx.s[i0 - 1..i1],
                (m, n),
                ctx.scoring,
                config.threshold,
                save_every,
            )
        } else {
            None
        };
        macro_rules! save_col {
            ($column:expr) => {{
                let column: SavedColumn = $column;
                if config.io_mode == IoMode::Immediate {
                    let bytes = 12 + 4 * column.values.len();
                    node.advance(crate::costs::cells(config.io_byte_cost, bytes));
                }
                entry(acc, role).saved.push(column);
            }};
        }
        macro_rules! unit_done {
            () => {{
                *units += 1;
                if crash_at == Some(*units) {
                    node.fail_stop();
                    return Err(DsmError::Disconnected("injected fail-stop"));
                }
                if (*units).is_multiple_of(64) {
                    node.heartbeat();
                }
            }};
        }
        if let Some(scorer) = scorer.as_mut() {
            let mut corner = 0i32;
            for (k, &(c_lo, c_hi)) in ctx.chunks.iter().enumerate() {
                let width = c_hi + 1 - c_lo;
                let top: Vec<i32> = if band == 0 {
                    vec![0i32; width + 1]
                } else {
                    let ord = pops[role];
                    pops[role] += 1;
                    channels[in_ring].consume(node, ledger, execute, ord, width + 1)?
                };
                let mut bottom_vals = Vec::with_capacity(width);
                let mut col_hits = Vec::with_capacity(width);
                let mut saved_cols = Vec::new();
                scorer.advance(
                    &ctx.t[c_lo - 1..c_hi],
                    &top,
                    c_lo,
                    &mut bottom_vals,
                    &mut col_hits,
                    &mut saved_cols,
                );
                for (idx, &hits) in col_hits.iter().enumerate() {
                    let j = c_lo + idx;
                    hits_row[(j - 1) / config.result_interleave] += hits as i64;
                }
                for (col, values) in saved_cols {
                    save_col!(SavedColumn {
                        band: band as u32,
                        col: col as u32,
                        values,
                    });
                }
                let mut bottom = Vec::with_capacity(width + 1);
                bottom.push(corner);
                bottom.append(&mut bottom_vals);
                let Some(&last) = bottom.last() else {
                    unreachable!("bottom always carries the corner plus the chunk")
                };
                corner = last;
                node.advance(crate::costs::cells(config.cell_cost, h * width));
                unit_done!();
                if band + 1 < nbands {
                    let ord = pushes[role];
                    pushes[role] += 1;
                    channels[role].produce(node, ledger, execute, ord, &bottom)?;
                }
                let _ = k;
            }
            band_best = band_best.max(scorer.best_score());
        } else {
            let mut left_col = vec![0i32; h + 1];
            for (k, &(c_lo, c_hi)) in ctx.chunks.iter().enumerate() {
                let width = c_hi + 1 - c_lo;
                let top: Vec<i32> = if band == 0 {
                    vec![0i32; width + 1]
                } else {
                    let ord = pops[role];
                    pops[role] += 1;
                    channels[in_ring].consume(node, ledger, execute, ord, width + 1)?
                };
                let mut bottom = vec![0i32; width + 1];
                bottom[0] = left_col[h];
                let mut prev_col = left_col.clone();
                prev_col[0] = top[0];
                let mut cur_col = vec![0i32; h + 1];
                for j in c_lo..=c_hi {
                    cur_col[0] = top[j - c_lo + 1];
                    let tc = ctx.t[j - 1];
                    let mut col_best = 0i32;
                    for r in 1..=h {
                        let i = i0 + r - 1;
                        let diag = prev_col[r - 1] + ctx.scoring.subst(ctx.s[i - 1], tc);
                        let up = cur_col[r - 1] + ctx.scoring.gap;
                        let left = prev_col[r] + ctx.scoring.gap;
                        let v = diag.max(up).max(left).max(0);
                        cur_col[r] = v;
                        if v >= config.threshold {
                            hits_row[(j - 1) / config.result_interleave] += 1;
                        }
                        col_best = col_best.max(v);
                    }
                    band_best = band_best.max(col_best);
                    bottom[j - c_lo + 1] = cur_col[h];
                    if config.io_mode != IoMode::None
                        && config.save_interleave > 0
                        && j % config.save_interleave == 0
                    {
                        save_col!(SavedColumn {
                            band: band as u32,
                            col: j as u32,
                            values: cur_col[1..].to_vec(),
                        });
                    }
                    std::mem::swap(&mut prev_col, &mut cur_col);
                }
                left_col.copy_from_slice(&prev_col);
                node.advance(crate::costs::cells(config.cell_cost, h * width));
                unit_done!();
                if band + 1 < nbands {
                    let ord = pushes[role];
                    pushes[role] += 1;
                    channels[role].produce(node, ledger, execute, ord, &bottom)?;
                }
                let _ = k;
            }
        }
        let run = entry(acc, role);
        run.best = run.best.max(band_best);
        // Publish the band's result-matrix row and flush it to its home
        // (a self-send for the owner; a remote write only during
        // takeover) so it survives this worker's later death.
        if ctx.groups > 0 {
            node.vec_write_range(&result_rows[band], 0, &hits_row);
            node.flush_vec(&result_rows[band]);
        }
    }
    // Publish completion: the user word (best score) strictly before the
    // done flag, so a death in between re-executes rather than trusting a
    // stale word.
    for run in &acc.runs {
        ledger.set_user(node, run.role, run.best as i64);
        ledger.mark_done(node, run.role);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Saved-column files
// ---------------------------------------------------------------------------

/// Serializes one column record (band, col, len, values — all LE).
fn encode_column(buf: &mut Vec<u8>, c: &SavedColumn) {
    buf.extend_from_slice(&c.band.to_le_bytes());
    buf.extend_from_slice(&c.col.to_le_bytes());
    buf.extend_from_slice(&(c.values.len() as u32).to_le_bytes());
    for v in &c.values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Writes a whole saved-column file crash-safely (temp file + checksummed
/// footer + fsync + atomic rename), reporting the payload size in
/// `bytes`.
fn write_role_file(path: &Path, cols: &[SavedColumn], bytes: &mut usize) -> io::Result<()> {
    let mut w = AtomicFileWriter::create(path)?;
    let mut buf = Vec::new();
    for c in cols {
        buf.clear();
        encode_column(&mut buf, c);
        w.write_all(&buf)?;
        *bytes += buf.len();
    }
    w.finish()
}

/// Reads back a per-node column file written by [`preprocess_align`],
/// first verifying the checksummed footer (see
/// [`crate::checkpoint::read_verified`]).
///
/// A truncated or corrupted file — torn footer, bad magic, length or
/// checksum mismatch, or a malformed record inside a valid envelope —
/// yields a typed [`std::io::ErrorKind::InvalidData`] error rather than a
/// panic, so a recovery path probing a half-written file can fall back
/// cleanly.
pub fn read_saved_columns(path: &std::path::Path) -> std::io::Result<Vec<SavedColumn>> {
    fn bad(what: &str) -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
    }
    fn take_u32(data: &[u8], pos: &mut usize) -> std::io::Result<u32> {
        let end = pos
            .checked_add(4)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| bad("truncated column record"))?;
        let mut a = [0u8; 4];
        a.copy_from_slice(&data[*pos..end]);
        let v = u32::from_le_bytes(a);
        *pos = end;
        Ok(v)
    }
    let data = read_verified(path)?;
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let band = take_u32(&data, &mut pos)?;
        let col = take_u32(&data, &mut pos)?;
        let len = take_u32(&data, &mut pos)? as usize;
        if len > (data.len() - pos) / 4 {
            return Err(bad("column length exceeds file size"));
        }
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(take_u32(&data, &mut pos)? as i32);
        }
        out.push(SavedColumn { band, col, values });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::linear::sw_score_linear;
    use genomedsm_core::matrix::sw_matrix;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    const SC: Scoring = Scoring::paper();

    fn workload(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>) {
        let (s, t, _) = planted_pair(len, len, &HomologyPlan::paper_density(len * 10), seed);
        (s.into_bytes(), t.into_bytes())
    }

    #[test]
    fn band_schemes_cover_all_rows() {
        for scheme in [
            BandScheme::Fixed(10),
            BandScheme::Fixed(7),
            BandScheme::Equal,
            BandScheme::Balanced(13),
        ] {
            let bands = scheme.bands(101, 4);
            assert_eq!(bands[0].0, 1);
            assert_eq!(bands.last().unwrap().1, 101);
            for w in bands.windows(2) {
                assert_eq!(w[0].1 + 1, w[1].0);
            }
        }
    }

    #[test]
    fn balanced_scheme_gives_every_node_equal_bands() {
        let bands = BandScheme::Balanced(1000).bands(8192, 4);
        // All bands but possibly the last have the same height.
        let h0 = bands[0].1 + 1 - bands[0].0;
        for &(lo, hi) in &bands[..bands.len() - 1] {
            assert_eq!(hi + 1 - lo, h0);
        }
    }

    #[test]
    fn chunk_plans_cover_all_columns() {
        for plan in [
            ChunkPlan::Fixed(100),
            ChunkPlan::Arithmetic {
                start: 10,
                step: 20,
            },
            ChunkPlan::Geometric {
                start: 8,
                factor: 2,
            },
        ] {
            let chunks = plan.chunks(777);
            assert_eq!(chunks[0].0, 1);
            assert_eq!(chunks.last().unwrap().1, 777);
            for w in chunks.windows(2) {
                assert_eq!(w[0].1 + 1, w[1].0);
            }
        }
    }

    #[test]
    fn geometric_chunks_grow() {
        let chunks = ChunkPlan::Geometric {
            start: 4,
            factor: 2,
        }
        .chunks(1000);
        let w0 = chunks[0].1 + 1 - chunks[0].0;
        let w1 = chunks[1].1 + 1 - chunks[1].0;
        assert_eq!(w0, 4);
        assert_eq!(w1, 8);
    }

    #[test]
    fn hits_and_best_match_the_oracle() {
        let (s, t) = workload(250, 21);
        let threshold = 12;
        let oracle = sw_score_linear(&s, &t, &SC, threshold);
        for nprocs in [1, 2, 4] {
            let mut config = PreprocessConfig::new(nprocs);
            config.band = BandScheme::Fixed(40);
            config.chunk = ChunkPlan::Fixed(64);
            config.threshold = threshold;
            config.result_interleave = 50;
            let out = preprocess_align(&s, &t, &SC, &config).unwrap();
            assert_eq!(out.total_hits(), oracle.hits as i64, "nprocs={nprocs}");
            assert_eq!(out.best_score, oracle.best_score, "nprocs={nprocs}");
        }
    }

    #[test]
    fn result_matrix_cells_match_full_matrix_counts() {
        let (s, t) = workload(120, 22);
        let threshold = 8;
        let mut config = PreprocessConfig::new(2);
        config.band = BandScheme::Fixed(30);
        config.chunk = ChunkPlan::Fixed(50);
        config.threshold = threshold;
        config.result_interleave = 25;
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let full = sw_matrix(&s, &t, &SC);
        for (b, &(i0, i1)) in out.band_bounds.iter().enumerate() {
            for g in 0..out.result[b].len() {
                let mut expect = 0i64;
                for i in i0..=i1 {
                    for j in 1..=t.len() {
                        if (j - 1) / 25 == g && full.get(i, j) >= threshold {
                            expect += 1;
                        }
                    }
                }
                assert_eq!(out.result[b][g], expect, "band {b} group {g}");
            }
        }
    }

    #[test]
    fn io_modes_write_identical_files() {
        let (s, t) = workload(150, 23);
        let dir = std::env::temp_dir().join("genomedsm_pp_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut results = Vec::new();
        for (mode, sub) in [(IoMode::Immediate, "imm"), (IoMode::Deferred, "def")] {
            let d = dir.join(sub);
            std::fs::create_dir_all(&d).unwrap();
            let mut config = PreprocessConfig::new(2);
            config.band = BandScheme::Fixed(40);
            config.chunk = ChunkPlan::Fixed(32);
            config.save_interleave = 16;
            config.io_mode = mode;
            config.save_dir = Some(d.clone());
            let out = preprocess_align(&s, &t, &SC, &config).unwrap();
            assert!(!out.files.is_empty());
            let mut cols: Vec<SavedColumn> = out
                .files
                .iter()
                .flat_map(|f| read_saved_columns(f).unwrap())
                .collect();
            cols.sort_by_key(|c| (c.band, c.col));
            results.push(cols);
        }
        assert_eq!(results[0], results[1], "modes must save the same data");
        assert!(!results[0].is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_columns_match_full_matrix() {
        let (s, t) = workload(100, 24);
        let dir = std::env::temp_dir().join("genomedsm_pp_cols_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = PreprocessConfig::new(2);
        config.band = BandScheme::Fixed(25);
        config.chunk = ChunkPlan::Fixed(40);
        config.save_interleave = 20;
        config.io_mode = IoMode::Immediate;
        config.save_dir = Some(dir.clone());
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let full = sw_matrix(&s, &t, &SC);
        let mut seen = 0;
        for f in &out.files {
            for col in read_saved_columns(f).unwrap() {
                let (i0, _) = out.band_bounds[col.band as usize];
                for (r, &v) in col.values.iter().enumerate() {
                    assert_eq!(v, full.get(i0 + r, col.col as usize));
                    seen += 1;
                }
            }
        }
        assert!(seen > 0, "no saved cells checked");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernel_choices_agree_with_scalar() {
        let (s, t) = workload(300, 25);
        let dir = std::env::temp_dir().join("genomedsm_pp_kernel_test");
        let mut outs = Vec::new();
        for (choice, sub) in [
            (KernelChoice::Scalar, "scalar"),
            (KernelChoice::Simd, "simd"),
        ] {
            let d = dir.join(sub);
            std::fs::create_dir_all(&d).unwrap();
            let mut config = PreprocessConfig::new(2);
            config.band = BandScheme::Fixed(37);
            config.chunk = ChunkPlan::Fixed(41);
            config.threshold = 10;
            config.result_interleave = 29;
            config.save_interleave = 23;
            config.io_mode = IoMode::Deferred;
            config.save_dir = Some(d.clone());
            config.kernel = choice;
            let out = preprocess_align(&s, &t, &SC, &config).unwrap();
            let mut cols: Vec<SavedColumn> = out
                .files
                .iter()
                .flat_map(|f| read_saved_columns(f).unwrap())
                .collect();
            cols.sort_by_key(|c| (c.band, c.col));
            outs.push((out.result.clone(), out.best_score, out.total_hits(), cols));
        }
        assert_eq!(outs[0], outs[1], "striped path must be bit-identical");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_inputs() {
        let out = preprocess_align(b"", b"ACGT", &SC, &PreprocessConfig::new(2)).unwrap();
        assert_eq!(out.total_hits(), 0);
        assert_eq!(out.best_score, 0);
    }

    #[test]
    #[should_panic(expected = "requires a save_dir")]
    fn saving_without_dir_rejected() {
        let mut config = PreprocessConfig::new(1);
        config.io_mode = IoMode::Immediate;
        let _ = preprocess_align(b"ACGT", b"ACGT", &SC, &config);
    }

    #[test]
    fn corrupt_saved_column_file_is_rejected() {
        let (s, t) = workload(80, 26);
        let dir = std::env::temp_dir().join("genomedsm_pp_corrupt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut config = PreprocessConfig::new(1);
        config.band = BandScheme::Fixed(40);
        config.chunk = ChunkPlan::Fixed(40);
        config.save_interleave = 20;
        config.io_mode = IoMode::Deferred;
        config.save_dir = Some(dir.clone());
        let out = preprocess_align(&s, &t, &SC, &config).unwrap();
        let file = &out.files[0];
        assert!(!read_saved_columns(file).unwrap().is_empty());
        let mut bytes = std::fs::read(file).unwrap();
        bytes[3] ^= 0x10;
        std::fs::write(file, &bytes).unwrap();
        let err = read_saved_columns(file).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn base_config(nprocs: usize, dir: &std::path::Path) -> PreprocessConfig {
        let mut c = PreprocessConfig::new(nprocs);
        c.band = BandScheme::Fixed(30);
        c.chunk = ChunkPlan::Fixed(48);
        c.threshold = 10;
        c.result_interleave = 40;
        c.save_interleave = 16;
        c.io_mode = IoMode::Deferred;
        c.save_dir = Some(dir.to_path_buf());
        c
    }

    fn tolerant(mut c: PreprocessConfig) -> PreprocessConfig {
        c.dsm = c.dsm.supervise(genomedsm_dsm::SupervisionConfig {
            enabled: true,
            detect_after: std::time::Duration::from_millis(40),
            watchdog: std::time::Duration::from_millis(400),
        });
        c
    }

    /// Asserts that two runs produced identical result matrices, best
    /// scores, and byte-identical per-node saved-column files.
    fn assert_identical(a: &PreprocessOutcome, b: &PreprocessOutcome, nprocs: usize) {
        assert_eq!(a.result, b.result);
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.total_hits(), b.total_hits());
        let dir_a = a.files[0].parent().unwrap();
        let dir_b = b.files[0].parent().unwrap();
        for p in 0..nprocs {
            let fa = std::fs::read(dir_a.join(format!("node_{p}.cols"))).unwrap();
            let fb = std::fs::read(dir_b.join(format!("node_{p}.cols"))).unwrap();
            assert_eq!(fa, fb, "node_{p}.cols differs");
        }
    }

    #[test]
    fn tolerant_mode_without_failures_matches_plain() {
        let (s, t) = workload(220, 31);
        let dir = std::env::temp_dir().join("genomedsm_pp_tol_parity");
        for nprocs in [1, 2, 3] {
            let d_plain = dir.join(format!("plain_{nprocs}"));
            let d_tol = dir.join(format!("tol_{nprocs}"));
            std::fs::create_dir_all(&d_plain).unwrap();
            std::fs::create_dir_all(&d_tol).unwrap();
            let plain = preprocess_align(&s, &t, &SC, &base_config(nprocs, &d_plain)).unwrap();
            let tol =
                preprocess_align(&s, &t, &SC, &tolerant(base_config(nprocs, &d_tol))).unwrap();
            assert_identical(&plain, &tol, nprocs);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_death_recovers_bit_identical_including_files() {
        // Node 1 dies mid-band; node 2 adopts its bands, re-selects its
        // columns, and writes node_1.cols itself — every artifact must
        // match the fault-free run exactly. Immediate mode exercises the
        // per-column charge path.
        let (s, t) = workload(220, 32);
        let dir = std::env::temp_dir().join("genomedsm_pp_tol_death");
        let d_plain = dir.join("plain");
        let d_tol = dir.join("tol");
        std::fs::create_dir_all(&d_plain).unwrap();
        std::fs::create_dir_all(&d_tol).unwrap();
        let mut plain_cfg = base_config(3, &d_plain);
        plain_cfg.io_mode = IoMode::Immediate;
        let plain = preprocess_align(&s, &t, &SC, &plain_cfg).unwrap();
        let mut cfg = tolerant(base_config(3, &d_tol));
        cfg.io_mode = IoMode::Immediate;
        cfg.dsm = cfg
            .dsm
            .faults(std::sync::Arc::new(crate::KillPlan::new().kill(1, 4)));
        let tol = preprocess_align(&s, &t, &SC, &cfg).unwrap();
        assert_identical(&plain, &tol, 3);
        let takeovers: u64 = tol.per_node.iter().map(|s| s.takeovers).sum();
        assert!(takeovers >= 1, "no takeover recorded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn contiguous_double_death_recovers() {
        let (s, t) = workload(240, 33);
        let dir = std::env::temp_dir().join("genomedsm_pp_tol_double");
        let d_plain = dir.join("plain");
        let d_tol = dir.join("tol");
        std::fs::create_dir_all(&d_plain).unwrap();
        std::fs::create_dir_all(&d_tol).unwrap();
        let plain = preprocess_align(&s, &t, &SC, &base_config(4, &d_plain)).unwrap();
        let mut cfg = tolerant(base_config(4, &d_tol));
        cfg.dsm = cfg.dsm.faults(std::sync::Arc::new(
            crate::KillPlan::new().kill(1, 3).kill(2, 5),
        ));
        let tol = preprocess_align(&s, &t, &SC, &cfg).unwrap();
        assert_identical(&plain, &tol, 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
