//! The paper's three parallel strategies for local sequence alignment on
//! the DSM substrate, plus phase 2 and modern shared-memory ports.
//!
//! | Strategy | Paper | Module | Character |
//! |----------|-------|--------|-----------|
//! | `heuristic` | §4.2 | [`heuristic_dsm`] | wavefront, column partition, **per-cell** border handoff via lock-free cv protocol — approximate (Martins heuristic), slow on synchronization |
//! | `heuristic_block` | §4.3 | [`blocked`] | bands × blocks with a blocking multiplier; border rows cross in **chunks** — approximate, much faster |
//! | `pre_process` | §5 | [`preprocess`] | exact SW scores, no candidate tracking; result matrix of threshold hits + selected columns saved to disk |
//! | phase 2 | §4.4 | [`phase2`] | scattered-mapping global alignment of the phase-1 regions, no locks/cvs |
//! | rayon ports | (ablation) | [`rayon_port`] | the same blocked wavefront on plain shared memory — quantifies the DSM protocol overhead |
//!
//! All strategies drive the *same* [`genomedsm_core::RowKernel`] (or plain
//! SW recurrence for `pre_process`) that the serial reference uses, so
//! parallel and serial results are identical cell-for-cell; the
//! integration tests assert exactly that.

#![warn(missing_docs)]
// Index-based loops are the clearest way to write DP stencils.
#![allow(clippy::needless_range_loop)]

pub mod blocked;
pub mod checkpoint;
pub mod costs;
pub mod hcell_data;
pub mod heuristic_dsm;
pub mod phase2;
pub mod preprocess;
pub mod rayon_port;
pub mod reverse_parallel;
pub mod ring;
pub mod wire;

pub use blocked::{heuristic_block_align, BlockedConfig, GridPlan};
pub use checkpoint::{KillPlan, StrategyError, StrategyResult};
pub use heuristic_dsm::{
    heuristic_align_dsm, heuristic_campaign, CampaignOutcome, CampaignRound, HeuristicDsmConfig,
};
pub use phase2::{
    phase2_block_mapping, phase2_scattered, phase2_scattered_pool, phase2_scattered_with,
};
pub use preprocess::{
    preprocess_align, BandScheme, ChunkPlan, IoMode, PreprocessConfig, PreprocessOutcome,
};
pub use rayon_port::{
    heuristic_antidiagonal_rayon, heuristic_block_align_shm, score_bands_shm, ShmScoreOutcome,
};
pub use reverse_parallel::reverse_align_all_parallel;
pub use wire::{WireIndexed, WireRegions};

use genomedsm_core::LocalRegion;
use genomedsm_dsm::NodeStats;
use std::time::Duration;

/// Result of a phase-1 strategy run: the finalized queue of candidate
/// alignments plus execution measurements.
#[derive(Debug, Clone)]
pub struct Phase1Outcome {
    /// Candidate local alignments, sorted by size and deduplicated.
    pub regions: Vec<LocalRegion>,
    /// Per-node DSM statistics (index = node id).
    pub per_node: Vec<NodeStats>,
    /// Total execution time of the simulated cluster: the maximum node
    /// virtual clock (computation at the calibrated per-cell cost plus
    /// protocol waits). The paper's speed-ups are computed on this.
    pub wall: Duration,
    /// Real time the simulation took on the host (diagnostic only).
    pub host_wall: Duration,
}

impl Phase1Outcome {
    /// Aggregated statistics over all nodes.
    pub fn aggregate(&self) -> NodeStats {
        let mut agg = NodeStats::default();
        for s in &self.per_node {
            agg.merge(s);
        }
        agg
    }

    /// The Fig. 10 execution-time breakdown over all nodes.
    pub fn breakdown(&self) -> genomedsm_dsm::StatsBreakdown {
        genomedsm_dsm::breakdown_many(&self.per_node)
    }
}
