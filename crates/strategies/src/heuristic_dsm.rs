//! Strategy 1 (§4.2): parallel heuristic alignment **without** blocking
//! factors.
//!
//! Work is assigned on a column basis: processor `p` computes columns
//! `p·n/P+1 ..= (p+1)·n/P` of every row (Fig. 8), keeping only two local
//! row slices. The wave-front evolves row by row: when processor `p`
//! finishes its slice of row `i`, it writes the border cell (its last
//! column) to shared memory and signals processor `p+1` through a
//! condition variable; `p+1` reads the value, acknowledges, and computes
//! its slice. "Each value of the border column is passed individually
//! between processors Pi and Pi+1. Thus, no blocking factors are used to
//! group any values" — this is exactly why the strategy synchronizes
//! heavily, the effect Table 1/Fig. 9 quantify.
//!
//! Barriers are used only at the beginning and end of the computation.

use crate::checkpoint::{run_elastic, run_with_takeover, FlowChannel, Ledger};
use crate::hcell_data::HCellData;
use crate::ring::ChunkRing;
use crate::Phase1Outcome;
use genomedsm_core::{finalize_queue, HCell, HeuristicParams, LocalRegion, RowKernel, Scoring};
use genomedsm_dsm::{DsmConfig, DsmError, DsmSystem, Node};
use std::time::Instant;

/// Configuration of the non-blocked heuristic strategy.
#[derive(Debug, Clone)]
pub struct HeuristicDsmConfig {
    /// DSM cluster configuration (node count, page size, network model).
    pub dsm: DsmConfig,
    /// Virtual cost of one heuristic cell update (era-calibrated default,
    /// see [`crate::costs`]).
    pub cell_cost: std::time::Duration,
}

impl HeuristicDsmConfig {
    /// A cluster of `nprocs` nodes with the paper-era network and kernel
    /// cost model.
    pub fn new(nprocs: usize) -> Self {
        Self {
            dsm: DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster()),
            cell_cost: crate::costs::HCELL_CELL,
        }
    }
}

/// Column range of processor `p` (1-based matrix columns, inclusive).
fn column_slice(n: usize, nprocs: usize, p: usize) -> (usize, usize) {
    let lo = p * n / nprocs + 1;
    let hi = (p + 1) * n / nprocs;
    (lo, hi)
}

/// Runs strategy 1 on a simulated cluster and returns the finalized queue
/// of candidate alignments plus execution statistics.
pub fn heuristic_align_dsm(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    config: &HeuristicDsmConfig,
) -> Phase1Outcome {
    let t0 = Instant::now();
    let nprocs = config.dsm.nprocs;
    let cell_cost = config.cell_cost;
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let n = t.len();

    let run = DsmSystem::run_wire(config.dsm.clone(), |node| {
        if node.supervised() {
            return crate::wire::WireRegions(tolerant_worker(
                node, &kernel, s, t, nprocs, cell_cost,
            ));
        }
        let p = node.id();
        // Border rings: ring `b` moves cells from processor b to b+1.
        // Collective allocation: every node builds every ring handle.
        let mut rings: Vec<ChunkRing<HCellData>> = (0..nprocs.saturating_sub(1))
            .map(|b| ChunkRing::new(node, 1, 1, b, (2 * b) as u32, (2 * b + 1) as u32))
            .collect();
        node.barrier();

        let (j_lo, j_hi) = column_slice(n, nprocs, p);
        // A slice can be empty when nprocs > n; such a node still relays
        // border cells so the pipeline stays connected.
        let width = (j_hi + 1).saturating_sub(j_lo);
        let mut queue: Vec<LocalRegion> = Vec::new();
        let mut prev = vec![HCell::fresh(); width + 1];
        let mut cur = vec![HCell::fresh(); width + 1];

        for i in 1..=m {
            // Receive this row's left-border cell from the left neighbour
            // (or the zero column if we are processor 0).
            cur[0] = if p == 0 {
                HCell::fresh()
            } else {
                rings[p - 1].pop(node, 1)[0].into()
            };
            if width > 0 {
                kernel.process_row_segment(i, s[i - 1], t, j_lo, &prev, &mut cur, &mut queue);
                node.advance(crate::costs::cells(cell_cost, width));
            }
            // Pass our border cell (the slice's last column) to the right
            // neighbour, one value per row — the strategy's signature.
            if p + 1 < nprocs {
                rings[p].push(node, &[HCellData(cur[width])]);
            } else {
                // Rightmost column of the whole matrix: flush candidates
                // running off the right edge (mirrors the serial driver).
                kernel.flush_open(&cur[width], i, n, &mut queue);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        // Bottom row: flush open candidates. Column n is excluded — the
        // right-edge rule above already flushed it on the last processor.
        for (k, cell) in prev.iter().enumerate().skip(1) {
            let j = j_lo - 1 + k;
            if j < n {
                kernel.flush_open(cell, m, j, &mut queue);
            }
        }
        node.barrier();
        crate::wire::WireRegions(queue)
    });

    let mut all: Vec<LocalRegion> = run.results.into_iter().flat_map(|w| w.0).collect();
    all = finalize_queue(all);
    let wall = run.stats.iter().map(|s| s.total).max().unwrap_or_default();
    Phase1Outcome {
        regions: all,
        per_node: run.stats,
        wall,
        host_wall: t0.elapsed(),
    }
}

/// Per-round result of an elastic campaign (see [`heuristic_campaign`]).
#[derive(Debug)]
pub struct CampaignRound {
    /// Finalized candidate regions of this round's workload.
    pub regions: Vec<LocalRegion>,
    /// Virtual wall of the round: the slowest node's elapsed virtual
    /// time across the workload, its boundary padding, and any rejoin
    /// downtime charged at the following boundary.
    pub wall: std::time::Duration,
}

/// Outcome of [`heuristic_campaign`].
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One entry per workload round, in execution order.
    pub rounds: Vec<CampaignRound>,
    /// Final per-node DSM statistics (cumulative over the campaign).
    pub per_node: Vec<genomedsm_dsm::NodeStats>,
    /// Real host time of the whole campaign.
    pub host_wall: std::time::Duration,
}

/// Runs `rounds` back-to-back strategy-1 workloads on one supervised
/// cluster — the elastic-membership campaign behind the `paper rejoin`
/// sweep (summary claim 20). A rank killed by the fault plan sits out
/// the rest of its workload (survivors adopt its role via the push
/// ledgers); if the plan also schedules a rejoin it is re-admitted at
/// the next workload boundary and later rounds run at full strength,
/// while without one the cluster stays degraded at N−k for the rest of
/// the campaign. Every round recomputes the same alignment, so each
/// round's regions must equal a fault-free run's — the bench asserts
/// exactly that bit-identity.
pub fn heuristic_campaign(
    s: &[u8],
    t: &[u8],
    scoring: &Scoring,
    params: &HeuristicParams,
    config: &HeuristicDsmConfig,
    rounds: usize,
) -> CampaignOutcome {
    let t0 = Instant::now();
    let nprocs = config.dsm.nprocs;
    let cell_cost = config.cell_cost;
    let kernel = RowKernel::new(*scoring, *params);
    let m = s.len();
    let unit_time = cell_cost.saturating_mul((t.len() / nprocs.max(1)).max(1) as u32);
    // Per-round barrier budget: 1 for the ledger barrier plus the
    // takeover sweep's worst case of 1 + (nprocs − 1) rounds.
    let budget = nprocs.max(1) + 2;

    let run = DsmSystem::run(config.dsm.clone(), |node| {
        assert!(node.supervised(), "elastic campaigns require supervision");
        let crash_at = node.crash_point();
        let mut units = 0u64;
        let mut marks: Vec<std::time::Duration> = Vec::with_capacity(rounds + 1);
        let per_round = run_elastic(node, rounds, budget, unit_time, |node, w| {
            marks.push(node.now());
            // Fresh ledger and cv range per round: a prior round's push
            // log or leftover ack-signal surplus must not leak forward.
            let ledger = Ledger::<HCellData>::new(node, nprocs, m.max(1), 1);
            node.barrier();
            let cv_base = (2 * nprocs * w) as u32;
            let pieces = run_with_takeover(node, nprocs, |node, execute, resume, queue| {
                for &r in execute {
                    run_role(
                        node, &ledger, &kernel, s, t, nprocs, cell_cost, r, cv_base, execute,
                        resume, crash_at, &mut units, queue,
                    )?;
                }
                Ok(())
            });
            match pieces {
                Some(qs) => qs.into_iter().flatten().collect::<Vec<LocalRegion>>(),
                None => Vec::new(), // dead for the rest of this round
            }
        });
        marks.push(node.now());
        (per_round, marks)
    });

    let mut results = run.results;
    let mut out = Vec::with_capacity(rounds);
    for w in 0..rounds {
        let regions: Vec<LocalRegion> = results
            .iter_mut()
            .flat_map(|(r, _)| std::mem::take(&mut r[w]))
            .collect();
        let wall = results
            .iter()
            .map(|(_, marks)| marks[w + 1].saturating_sub(marks[w]))
            .max()
            .unwrap_or_default();
        out.push(CampaignRound {
            regions: finalize_queue(regions),
            wall,
        });
    }
    CampaignOutcome {
        rounds: out,
        per_node: run.stats,
        host_wall: t0.elapsed(),
    }
}

/// Strategy 1 worker in tolerant mode (supervision enabled): border
/// cells flow through a per-role [`Ledger`] log instead of ring slots,
/// so a surviving node can adopt a dead neighbour's column slice and
/// re-execute it, replaying the corpse's recorded input/output chunks
/// bit-for-bit. The plain path above is untouched when supervision is
/// off, so a fault-free unsupervised run pays nothing.
fn tolerant_worker(
    node: &mut Node,
    kernel: &RowKernel,
    s: &[u8],
    t: &[u8],
    nprocs: usize,
    cell_cost: std::time::Duration,
) -> Vec<LocalRegion> {
    let m = s.len();
    // Role r's push log holds its border cell for every row.
    let ledger = Ledger::<HCellData>::new(node, nprocs, m.max(1), 1);
    node.barrier();
    let crash_at = node.crash_point();
    let mut units = 0u64;

    // One work unit is one row of a role's column slice; a scheduled
    // rejoin's virtual downtime is priced at that granularity.
    let unit_time = cell_cost.saturating_mul((t.len() / nprocs.max(1)).max(1) as u32);
    // A single workload wrapped in the elastic driver: a victim with a
    // scheduled rejoin is re-admitted at the closing boundary, so the run
    // always ends with full membership. Budget: the takeover sweep costs
    // at most 1 + deaths barrier rounds.
    let mut rounds = run_elastic(node, 1, nprocs.max(1) + 2, unit_time, |node, _| {
        // Roles execute in ascending order: role r's input producer is
        // r-1, so earlier merged roles fully feed later ones through the
        // log.
        run_with_takeover(node, nprocs, |node, execute, resume, queue| {
            for &r in execute {
                run_role(
                    node, &ledger, kernel, s, t, nprocs, cell_cost, r, 0, execute, resume,
                    crash_at, &mut units, queue,
                )?;
            }
            Ok(())
        })
    });
    match rounds.pop().flatten() {
        Some(qs) => qs.into_iter().flatten().collect(),
        None => Vec::new(), // this worker fail-stopped
    }
}

/// One role's complete row loop on the tolerant path. `roles` is the
/// executing node's current merged role set (decides which channel
/// endpoints are internal); `resume` replays recorded progress;
/// `cv_base` offsets the flow cv ids so campaign rounds sharing a node
/// never alias a prior round's leftover signal surplus.
#[allow(clippy::too_many_arguments)]
fn run_role(
    node: &mut Node,
    ledger: &Ledger<HCellData>,
    kernel: &RowKernel,
    s: &[u8],
    t: &[u8],
    nprocs: usize,
    cell_cost: std::time::Duration,
    r: usize,
    cv_base: u32,
    roles: &[usize],
    resume: bool,
    crash_at: Option<u64>,
    units: &mut u64,
    queue: &mut Vec<LocalRegion>,
) -> Result<(), DsmError> {
    let m = s.len();
    let n = t.len();
    let (j_lo, j_hi) = column_slice(n, nprocs, r);
    let width = (j_hi + 1).saturating_sub(j_lo);
    let mut input = (r > 0).then(|| {
        let b = r - 1;
        FlowChannel::new(
            node,
            ledger,
            b,
            r,
            cv_base + (2 * b) as u32,
            cv_base + (2 * b + 1) as u32,
            1,
            resume,
        )
    });
    let mut output = (r + 1 < nprocs).then(|| {
        FlowChannel::new(
            node,
            ledger,
            r,
            r + 1,
            cv_base + (2 * r) as u32,
            cv_base + (2 * r + 1) as u32,
            1,
            resume,
        )
    });
    let mut prev = vec![HCell::fresh(); width + 1];
    let mut cur = vec![HCell::fresh(); width + 1];
    for i in 1..=m {
        cur[0] = match input.as_mut() {
            None => HCell::fresh(),
            Some(ch) => ch.consume(node, ledger, roles, (i - 1) as u64, 1)?[0].into(),
        };
        if width > 0 {
            kernel.process_row_segment(i, s[i - 1], t, j_lo, &prev, &mut cur, queue);
            node.advance(crate::costs::cells(cell_cost, width));
        }
        *units += 1;
        if crash_at == Some(*units) {
            node.fail_stop();
            return Err(DsmError::Disconnected("injected fail-stop"));
        }
        if (*units).is_multiple_of(64) {
            node.heartbeat();
        }
        match output.as_mut() {
            Some(ch) => ch.produce(
                node,
                ledger,
                roles,
                (i - 1) as u64,
                &[HCellData(cur[width])],
            )?,
            None => kernel.flush_open(&cur[width], i, n, queue),
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    // Bottom row: flush open candidates (column n excluded — the
    // right-edge rule already flushed it on the last role).
    for (k, cell) in prev.iter().enumerate().skip(1) {
        let j = j_lo - 1 + k;
        if j < n {
            kernel.flush_open(cell, m, j, queue);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    const SC: Scoring = Scoring::paper();

    fn params() -> HeuristicParams {
        HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        }
    }

    #[test]
    fn column_slices_partition_the_matrix() {
        let n = 103;
        let mut covered = 0;
        for p in 0..8 {
            let (lo, hi) = column_slice(n, 8, p);
            covered += hi + 1 - lo;
            if p > 0 {
                assert_eq!(lo, column_slice(n, 8, p - 1).1 + 1);
            }
        }
        assert_eq!(covered, n);
        assert_eq!(column_slice(n, 8, 7).1, n);
    }

    #[test]
    fn matches_serial_reference_small() {
        let (s, t, _) = planted_pair(
            300,
            300,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 60,
                region_len_jitter: 10,
                profile: genomedsm_seq::MutationProfile::similar(),
            },
            5,
        );
        let serial = heuristic_align(&s, &t, &SC, &params());
        for nprocs in [1, 2, 3, 4] {
            let out = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(nprocs));
            assert_eq!(out.regions, serial, "nprocs = {nprocs}");
        }
    }

    #[test]
    fn empty_sequences_return_empty() {
        let out = heuristic_align_dsm(b"", b"ACGT", &SC, &params(), &HeuristicDsmConfig::new(2));
        assert!(out.regions.is_empty());
    }

    #[test]
    fn more_processors_than_columns_degenerates_gracefully() {
        // 3 columns, 8 processors: some slices are empty.
        let out = heuristic_align_dsm(
            b"ACGTACGT",
            b"ACG",
            &SC,
            &params(),
            &HeuristicDsmConfig::new(8),
        );
        let serial = heuristic_align(b"ACGTACGT", b"ACG", &SC, &params());
        assert_eq!(out.regions, serial);
    }

    fn tolerant(nprocs: usize) -> HeuristicDsmConfig {
        let mut c = HeuristicDsmConfig::new(nprocs);
        c.dsm = c.dsm.supervise(genomedsm_dsm::SupervisionConfig {
            enabled: true,
            detect_after: std::time::Duration::from_millis(40),
            watchdog: std::time::Duration::from_millis(400),
        });
        c
    }

    fn test_pair() -> (genomedsm_seq::DnaSeq, genomedsm_seq::DnaSeq) {
        let (s, t, _) = planted_pair(
            260,
            260,
            &HomologyPlan {
                region_count: 3,
                region_len_mean: 50,
                region_len_jitter: 10,
                profile: genomedsm_seq::MutationProfile::similar(),
            },
            11,
        );
        (s, t)
    }

    #[test]
    fn tolerant_mode_without_failures_matches_serial() {
        let (s, t) = test_pair();
        let serial = heuristic_align(&s, &t, &SC, &params());
        for nprocs in [1, 2, 4] {
            let out = heuristic_align_dsm(&s, &t, &SC, &params(), &tolerant(nprocs));
            assert_eq!(out.regions, serial, "nprocs = {nprocs}");
        }
    }

    #[test]
    fn single_death_mid_run_recovers_bit_identical() {
        let (s, t) = test_pair();
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(3);
        cfg.dsm = cfg
            .dsm
            .faults(std::sync::Arc::new(crate::KillPlan::new().kill(1, 97)));
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
        let agg = out.aggregate();
        assert!(agg.takeovers >= 1, "takeovers {}", agg.takeovers);
    }

    #[test]
    fn last_node_death_is_recovered_by_the_barrier_sweep() {
        // The last role's border feeds no one, so its death goes
        // unnoticed until the final barrier; the sweep re-executes it
        // (adoption wraps to node 0).
        let (s, t) = test_pair();
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(3);
        cfg.dsm = cfg
            .dsm
            .faults(std::sync::Arc::new(crate::KillPlan::new().kill(2, 150)));
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
    }

    #[test]
    fn contiguous_double_death_folds_onto_one_adopter() {
        let (s, t) = test_pair();
        let serial = heuristic_align(&s, &t, &SC, &params());
        let mut cfg = tolerant(4);
        cfg.dsm = cfg.dsm.faults(std::sync::Arc::new(
            crate::KillPlan::new().kill(1, 60).kill(2, 120),
        ));
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &cfg);
        assert_eq!(out.regions, serial);
    }

    #[test]
    fn stats_reflect_heavy_synchronization() {
        let (s, t, _) = planted_pair(400, 400, &HomologyPlan::paper_density(400), 6);
        let out = heuristic_align_dsm(&s, &t, &SC, &params(), &HeuristicDsmConfig::new(4));
        let agg = out.aggregate();
        // 400 rows x 3 boundaries x (data + ack) = at least 2400 cv ops.
        assert!(agg.msgs_sent > 2000, "msgs {}", agg.msgs_sent);
    }
}
