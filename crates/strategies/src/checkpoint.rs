//! Shared takeover machinery: per-role progress ledgers in DSM, adopter
//! selection, and crash-safe on-disk checkpoint files.
//!
//! The supervision layer (crate `genomedsm-dsm`) turns a fail-stopped
//! node into typed [`DsmError::NodeFailed`] errors at every blocked
//! synchronization point. This module supplies the *application-level*
//! half of fault tolerance that all three phase-1 strategies (and the
//! phase-2 gather) build on:
//!
//! * a [`Ledger`] — per-role `[pushes, pops, done]` meta plus a push
//!   *log* of every border chunk a role has produced, all living in DSM
//!   and flushed at work-unit boundaries. Meta and log are homed on the
//!   role's own node, so per-op flushes are self-sends with **zero
//!   virtual network cost** on the fault-free path; the surviving daemon
//!   keeps them readable after the worker dies ("the process dies, the
//!   machine and its memory survive");
//! * [`adopter_of`] / [`adopted_roles`] — the deterministic takeover
//!   assignment: a dead role is re-executed by the next *alive* node in
//!   cyclic band order, so a contiguous run of corpses folds into the
//!   single survivor that ends it and every node computes the same
//!   assignment without communicating;
//! * [`AtomicFileWriter`] / [`read_verified`] — crash-safe file writes
//!   (stream to a temp file, append a checksummed length footer, fsync,
//!   atomically rename) with a reader that rejects truncated or
//!   corrupted files with typed [`std::io::ErrorKind::InvalidData`]
//!   errors instead of silently yielding garbage.
//!
//! The replay rules the strategies implement on top (see
//! `DESIGN.md` §5.8): a chunk whose ordinal is below the recorded
//! `pushes` of its producer is read back from the log instead of the
//! ring; a pop whose ordinal is below the recorded `pops` of its
//! consumer replays without touching condition variables; pushes onto a
//! *dead* producer's ring gate on the consumer's recorded pop count
//! (its credits died with it). Because the log is written before the
//! meta that publishes it, a torn death loses at most the last
//! unpublished unit — which the adopter then recomputes.

use genomedsm_dsm::{DsmData, DsmError, FaultInjector, GlobalVec, LinkMsg, Node, TransmitFate};
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Typed error of a strategy run: an I/O failure (checkpoint and
/// saved-column files), a DSM-level failure that recovery could not
/// absorb, or a worker thread that died without producing a result.
#[derive(Debug)]
pub enum StrategyError {
    /// An I/O operation failed; `context` names the file and operation.
    Io {
        /// What was being done, e.g. `"write saved-column file node_2.cols"`.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// A DSM synchronization or transport error reached the strategy
    /// level (e.g. a `NodeFailed` in non-tolerant mode).
    Dsm(DsmError),
    /// A worker thread panicked or its result channel closed early.
    Worker(String),
}

impl fmt::Display for StrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StrategyError::Io { context, source } => write!(f, "{context}: {source}"),
            StrategyError::Dsm(e) => write!(f, "dsm: {e}"),
            StrategyError::Worker(what) => write!(f, "worker failed: {what}"),
        }
    }
}

impl std::error::Error for StrategyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StrategyError::Io { source, .. } => Some(source),
            StrategyError::Dsm(e) => Some(e),
            StrategyError::Worker(_) => None,
        }
    }
}

impl From<DsmError> for StrategyError {
    fn from(e: DsmError) -> Self {
        StrategyError::Dsm(e)
    }
}

impl StrategyError {
    /// Wraps an `io::Error` with a context string.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        StrategyError::Io {
            context: context.into(),
            source,
        }
    }
}

/// Convenience alias used by the strategy entry points.
pub type StrategyResult<T> = Result<T, StrategyError>;

// ---------------------------------------------------------------------------
// Adopter selection
// ---------------------------------------------------------------------------

/// The node that re-executes dead `role`'s work: the next *alive* node
/// cyclically after it. Panics if every node is dead (no survivors means
/// no run).
pub fn adopter_of(role: usize, nprocs: usize, dead: &[usize]) -> usize {
    assert!(role < nprocs);
    for step in 1..=nprocs {
        let cand = (role + step) % nprocs;
        if !dead.contains(&cand) {
            return cand;
        }
    }
    panic!("no survivors to adopt role {role}");
}

/// The dead roles node `me` is responsible for, in ascending role order.
/// Empty when `me` itself is dead (a corpse adopts nothing).
pub fn adopted_roles(me: usize, nprocs: usize, dead: &[usize]) -> Vec<usize> {
    if dead.contains(&me) {
        return Vec::new();
    }
    let mut mine: Vec<usize> = dead
        .iter()
        .copied()
        .filter(|&r| r < nprocs && adopter_of(r, nprocs, dead) == me)
        .collect();
    mine.sort_unstable();
    mine
}

/// The roles node `me` executes after adopting: its own plus its adopted
/// dead roles, ascending. Identical on every survivor for a given dead
/// set, which is what lets takeover proceed without any coordination
/// beyond the dead set itself.
pub fn merged_roles(me: usize, nprocs: usize, dead: &[usize]) -> Vec<usize> {
    let mut roles = adopted_roles(me, nprocs, dead);
    roles.push(me);
    roles.sort_unstable();
    roles
}

/// The inverse of [`adopter_of`] for elastic membership: the survivor
/// that carried `joiner`'s role while it was dead and hands it back at
/// the admission barrier. `dead` is the dead set *after* the joiner's
/// admission (i.e. not containing the joiner); the carrying adopter is
/// whoever the adoption assignment named while the joiner was still
/// counted dead. Like the adoption map itself, every node computes this
/// identically from the barrier round's dead vector, so handback needs
/// no coordination beyond the round grant.
pub fn handback_of(joiner: usize, nprocs: usize, dead: &[usize]) -> usize {
    let mut while_dead = dead.to_vec();
    if !while_dead.contains(&joiner) {
        while_dead.push(joiner);
    }
    adopter_of(joiner, nprocs, &while_dead)
}

// ---------------------------------------------------------------------------
// DSM progress ledger
// ---------------------------------------------------------------------------

/// Snapshot of one role's published progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerMeta {
    /// Chunks this role has pushed (log entries `0..pushes` are valid).
    pub pushes: u64,
    /// Chunks this role has consumed from its input ring.
    pub pops: u64,
    /// Whether the role finished its band loop and published results.
    pub done: bool,
    /// Strategy-defined word published at role completion (pre_process
    /// stores the role's best SW score here so a completed-then-died
    /// role's contribution survives the loss of its worker memory).
    pub user: i64,
}

const META_PUSHES: usize = 0;
const META_POPS: usize = 1;
const META_DONE: usize = 2;
const META_USER: usize = 3;
const META_LEN: usize = 4;

/// Per-role takeover ledger: `[pushes, pops, done]` meta words plus a
/// fixed-stride log of every chunk the role pushed, both homed on the
/// role's node. All methods are cheap self-sends on the fault-free path
/// and remote reads only during takeover.
#[derive(Debug)]
pub struct Ledger<T: DsmData> {
    metas: Vec<GlobalVec<i64>>,
    logs: Vec<GlobalVec<T>>,
    stride: usize,
}

impl<T: DsmData + Copy> Ledger<T> {
    /// Collectively allocates the ledger for `nroles` roles, each with a
    /// push log of `log_entries` chunks of up to `stride` elements.
    /// Role `r`'s meta and log are homed on node `r % nprocs`.
    pub fn new(node: &mut Node, nroles: usize, log_entries: usize, stride: usize) -> Self {
        assert!(stride >= 1, "degenerate ledger stride");
        let nprocs = node.nprocs();
        let mut metas = Vec::with_capacity(nroles);
        let mut logs = Vec::with_capacity(nroles);
        for r in 0..nroles {
            metas.push(node.alloc_vec_on::<i64>(META_LEN, r % nprocs));
            logs.push(node.alloc_vec_on::<T>(log_entries.max(1) * stride, r % nprocs));
        }
        Self {
            metas,
            logs,
            stride,
        }
    }

    /// Elements per log entry.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Records that `role` pushed `data` as chunk `ordinal`: the chunk is
    /// appended to the log and the published push count advances to
    /// `ordinal + 1`. Log before meta, so a readable meta always covers
    /// fully written log entries.
    pub fn record_push(&self, node: &mut Node, role: usize, ordinal: u64, data: &[T]) {
        assert!(data.len() <= self.stride, "chunk exceeds ledger stride");
        let base = ordinal as usize * self.stride;
        node.vec_write_range(&self.logs[role], base, data);
        node.flush_vec(&self.logs[role]);
        node.vec_set(&self.metas[role], META_PUSHES, ordinal as i64 + 1);
        node.flush_vec(&self.metas[role]);
    }

    /// Publishes `role`'s consumed-chunk count.
    pub fn record_pop(&self, node: &mut Node, role: usize, pops: u64) {
        node.vec_set(&self.metas[role], META_POPS, pops as i64);
        node.flush_vec(&self.metas[role]);
    }

    /// Marks `role`'s band loop complete (results published).
    pub fn mark_done(&self, node: &mut Node, role: usize) {
        node.vec_set(&self.metas[role], META_DONE, 1);
        node.flush_vec(&self.metas[role]);
    }

    /// Publishes `role`'s strategy-defined completion word (see
    /// [`LedgerMeta::user`]). Publish it *before* [`Ledger::mark_done`]:
    /// a death between the two leaves `done` unset, so the role is
    /// re-executed rather than trusted with a stale word.
    pub fn set_user(&self, node: &mut Node, role: usize, value: i64) {
        node.vec_set(&self.metas[role], META_USER, value);
        node.flush_vec(&self.metas[role]);
    }

    /// Reads `role`'s current published progress, bypassing this node's
    /// stale cached copy.
    pub fn snapshot(&self, node: &mut Node, role: usize) -> LedgerMeta {
        node.invalidate_vec(&self.metas[role]);
        let words = node.vec_read_range(&self.metas[role], 0..META_LEN);
        LedgerMeta {
            pushes: words[META_PUSHES].max(0) as u64,
            pops: words[META_POPS].max(0) as u64,
            done: words[META_DONE] != 0,
            user: words[META_USER],
        }
    }

    /// Reads back chunk `ordinal` (`len` elements) from `role`'s push
    /// log, bypassing stale cache. Only valid for `ordinal <
    /// snapshot(role).pushes`.
    pub fn read_chunk(&self, node: &mut Node, role: usize, ordinal: u64, len: usize) -> Vec<T> {
        assert!(len <= self.stride, "read exceeds ledger stride");
        node.invalidate_vec(&self.logs[role]);
        let base = ordinal as usize * self.stride;
        node.vec_read_range(&self.logs[role], base..base + len)
    }
}

// ---------------------------------------------------------------------------
// Fail-stop fault plans
// ---------------------------------------------------------------------------

/// A fault plan that fail-stops selected workers after fixed work-unit
/// ordinals and leaves the network perfect. Shared by the takeover
/// tests, the CLI's `--kill` option, and the degradation benchmark.
#[derive(Debug, Clone, Default)]
pub struct KillPlan {
    kills: Vec<(usize, u64)>,
    rejoins: Vec<(usize, u64)>,
}

impl KillPlan {
    /// An empty plan (no node dies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `node` to fail-stop after completing `after_units` work
    /// units (strategy-defined: rows for strategy 1, blocks/chunks for
    /// the banded strategies, regions for phase 2).
    pub fn kill(mut self, node: usize, after_units: u64) -> Self {
        self.kills.push((node, after_units));
        self
    }

    /// Schedules a killed `node` to rejoin the run after `units` work
    /// units of virtual downtime (elastic membership). Has no effect on a
    /// node without a scheduled kill.
    pub fn rejoin(mut self, node: usize, units: u64) -> Self {
        self.rejoins.push((node, units));
        self
    }

    /// The scheduled victims, in insertion order.
    pub fn victims(&self) -> Vec<usize> {
        self.kills.iter().map(|&(n, _)| n).collect()
    }

    /// The victims scheduled to rejoin, in insertion order.
    pub fn joiners(&self) -> Vec<usize> {
        self.rejoins.iter().map(|&(n, _)| n).collect()
    }
}

impl FaultInjector for KillPlan {
    fn fate(&self, _link: &LinkMsg) -> TransmitFate {
        TransmitFate::Deliver {
            extra_delay: std::time::Duration::ZERO,
            duplicates: 0,
        }
    }

    fn crash_point(&self, node: usize) -> Option<u64> {
        self.kills
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, u)| u)
    }

    fn rejoin_point(&self, node: usize) -> Option<u64> {
        self.rejoins
            .iter()
            .find(|&&(n, _)| n == node)
            .map(|&(_, u)| u)
    }
}

// ---------------------------------------------------------------------------
// Tolerant border flow
// ---------------------------------------------------------------------------

/// Border channel of the tolerant (takeover-capable) strategy paths.
///
/// In tolerant mode the producer's push *log* in the [`Ledger`] is the
/// data channel itself — ring slots are not used, because an adopter that
/// re-signals chunks the corpse may already have signaled could wake the
/// consumer into reading a half-overwritten slot; log entries have one
/// address per ordinal and cannot be torn that way. Condition variables
/// degrade to pure wake-up hints and the ledger meta is the one source of
/// truth:
///
/// * [`FlowChannel::consume`] waits only while the producer's published
///   push count is at or below the wanted ordinal. A spurious or
///   duplicated signal costs a wasted meta check, never a wrong read,
///   and a chunk whose signal died with a corpse is found by the meta
///   check without waiting at all.
/// * [`FlowChannel::produce`] gates on the consumer's *published* pop
///   count instead of local credits (an adopter cannot know how many ack
///   signals the corpse consumed). The gate is skipped when the consumer
///   is dead or executed by this very node — the log is unbounded in
///   ordinal space, so flow control serves no purpose there and would
///   deadlock against a ghost.
/// * a consumer records its pop *before* acknowledging, so a lost ack
///   implies the pop is already published and the producer's meta gate
///   cannot block on it.
///
/// On the fault-free path (`resume == false`, no known deaths) signals
/// and records are 1:1 exactly as in [`crate::ring::ChunkRing`], so the
/// channel trusts the signal count and never reads remote meta — the
/// only cost over the plain ring is the self-homed (zero virtual cost)
/// meta flush per chunk.
#[derive(Debug)]
pub struct FlowChannel {
    producer: usize,
    consumer: usize,
    data_cv: u32,
    ack_cv: u32,
    capacity: u64,
    /// Producer-side: chunks already in the log (skip re-recording).
    recorded_pushes: u64,
    /// Consumer-side: pops already published (replay below this).
    recorded_pops: u64,
    /// Consumer-side view of the producer's push meta.
    cached_pushes: u64,
    /// Producer-side view of the consumer's pop meta.
    cached_pops: u64,
    /// Whether signal counts are still 1:1 with records (fresh channel,
    /// no deaths absorbed). Cleared conservatively on any failure.
    trust_signals: bool,
}

impl FlowChannel {
    /// Builds the channel for ring `producer → consumer`. With `resume`
    /// set (takeover or restart) the counters are initialized from the
    /// published ledger metas; a fresh channel starts from zero without
    /// touching the network.
    #[allow(clippy::too_many_arguments)]
    pub fn new<T: DsmData + Copy>(
        node: &mut Node,
        ledger: &Ledger<T>,
        producer: usize,
        consumer: usize,
        data_cv: u32,
        ack_cv: u32,
        capacity: u64,
        resume: bool,
    ) -> Self {
        assert!(capacity >= 1, "degenerate flow channel");
        let (pushes, pops) = if resume {
            (
                ledger.snapshot(node, producer).pushes,
                ledger.snapshot(node, consumer).pops,
            )
        } else {
            (0, 0)
        };
        Self {
            producer,
            consumer,
            data_cv,
            ack_cv,
            capacity,
            recorded_pushes: pushes,
            recorded_pops: pops,
            cached_pushes: pushes,
            cached_pops: pops,
            trust_signals: !resume,
        }
    }

    /// Whether `role` runs on another node that is still alive (only
    /// such roles take part in flow control and wake-ups).
    fn external_alive(&self, node: &Node, role: usize, roles: &[usize]) -> bool {
        !roles.contains(&role) && !node.known_dead().contains(&role)
    }

    /// Absorbs a failure that does not change this node's merged role
    /// set (someone else's adopter handles it — retry the operation) and
    /// propagates one that does (the caller must restart its merged
    /// loop).
    fn absorb(&mut self, node: &Node, roles: &[usize], e: DsmError) -> Result<(), DsmError> {
        self.trust_signals = false;
        match e {
            DsmError::NodeFailed { .. } => {
                let now = merged_roles(node.id(), node.nprocs(), &node.known_dead());
                if now == roles {
                    Ok(())
                } else {
                    Err(e)
                }
            }
            other => Err(other),
        }
    }

    /// Producer side: delivers chunk `ordinal` of role `producer`.
    /// Already-recorded ordinals (replay after restart) skip the log
    /// write; an adopter still re-signals them in case the corpse died
    /// between recording and signaling. `roles` is the executing node's
    /// current merged role set.
    pub fn produce<T: DsmData + Copy>(
        &mut self,
        node: &mut Node,
        ledger: &Ledger<T>,
        roles: &[usize],
        ordinal: u64,
        data: &[T],
    ) -> Result<(), DsmError> {
        let fresh = ordinal >= self.recorded_pushes;
        // Flow-control gate: fresh chunks only, and only against a live
        // consumer on another node.
        while fresh
            && ordinal >= self.cached_pops + self.capacity
            && self.external_alive(node, self.consumer, roles)
        {
            match node.try_waitcv(self.ack_cv) {
                Ok(()) if self.trust_signals => self.cached_pops += 1,
                Ok(()) => self.cached_pops = ledger.snapshot(node, self.consumer).pops,
                Err(e) => {
                    self.absorb(node, roles, e)?;
                    self.cached_pops = ledger.snapshot(node, self.consumer).pops;
                }
            }
        }
        if fresh {
            ledger.record_push(node, self.producer, ordinal, data);
            self.recorded_pushes = ordinal + 1;
            // An internal consumer (both endpoints run here) reads the
            // meta through this same channel object.
            self.cached_pushes = self.cached_pushes.max(ordinal + 1);
        }
        let adopted = self.producer != node.id();
        // Signal every external consumer — even a dead one, whose
        // adopter may be parked on this cv re-executing the role (it
        // snapshots the meta after every wake-up, so surplus signals are
        // harmless while a withheld one would strand it).
        if !roles.contains(&self.consumer) && (fresh || (adopted && ordinal >= self.cached_pops)) {
            node.setcv(self.data_cv);
        }
        Ok(())
    }

    /// Consumer side: obtains chunk `ordinal` (`len` elements) of role
    /// `producer`, waiting while it is unpublished. Already-popped
    /// ordinals (replay) read the log without touching condition
    /// variables.
    pub fn consume<T: DsmData + Copy>(
        &mut self,
        node: &mut Node,
        ledger: &Ledger<T>,
        roles: &[usize],
        ordinal: u64,
        len: usize,
    ) -> Result<Vec<T>, DsmError> {
        while self.cached_pushes <= ordinal {
            debug_assert!(
                !roles.contains(&self.producer),
                "internal chunk {ordinal} of role {} consumed before production",
                self.producer
            );
            match node.try_waitcv(self.data_cv) {
                // Fresh channel, no deaths: one signal per record, so a
                // granted wait proves the chunk is published (the
                // producer records before signaling).
                Ok(()) if self.trust_signals => self.cached_pushes = ordinal + 1,
                Ok(()) => {
                    let seen = ledger.snapshot(node, self.producer).pushes;
                    self.cached_pushes = self.cached_pushes.max(seen);
                }
                Err(e) => {
                    self.absorb(node, roles, e)?;
                    let seen = ledger.snapshot(node, self.producer).pushes;
                    self.cached_pushes = self.cached_pushes.max(seen);
                }
            }
        }
        let data = ledger.read_chunk(node, self.producer, ordinal, len);
        if ordinal >= self.recorded_pops {
            // Publish before acking: a death after the ack can then
            // never hide a pop from the producer's meta gate.
            ledger.record_pop(node, self.consumer, ordinal + 1);
            self.recorded_pops = ordinal + 1;
            if !roles.contains(&self.producer) {
                node.setcv(self.ack_cv);
            }
        }
        Ok(data)
    }
}

// ---------------------------------------------------------------------------
// Takeover driver
// ---------------------------------------------------------------------------

/// The attempt/sweep skeleton every tolerant strategy runs.
///
/// `body(node, execute, resume, acc)` must fully execute the given role
/// set (in the strategy's dependency order) and accumulate its results
/// into `acc`; with `resume` set it replays recorded progress from the
/// ledger. The driver:
///
/// 1. **Attempts**: runs the node's merged role set; a
///    [`DsmError::NodeFailed`] that body propagates (the merged set
///    changed) restarts the attempt from scratch with a fresh
///    accumulator — recorded chunks replay from the log, recomputation
///    models the real cost of checkpoint-free takeover.
/// 2. **Sweep**: loops on [`Node::barrier_wait`]; while the dead set
///    keeps growing, roles not yet handled by this node are re-executed
///    by pure replay (every producer has finished or died by then, so
///    nothing blocks). A healthy run's first barrier reports no deaths
///    and the sweep exits immediately — the fault-free path pays exactly
///    the one barrier the plain strategy already had.
///
/// The sweep's exit test compares each round's dead vector against the
/// *previous round's grant*: within one workload grants are monotone,
/// so this is equivalent to the per-node seen-union, and every live
/// node — receiving the identical global grant sequence — exits at the
/// same round.
///
/// Within one workload a fail-stop is **permanent**: this driver
/// returns `None` and the strategy returns its sentinel result. A
/// scheduled rejoin ([`Node::rejoin_point`]) is the campaign driver
/// [`run_elastic`]'s business — admission happens only at a workload
/// boundary, never mid-workload, because a joiner re-entering
/// mid-stream would race its own adopter on the flow-control condition
/// variables and desynchronize the anonymous barrier rounds.
pub fn run_with_takeover<R: Default>(
    node: &mut Node,
    nprocs: usize,
    mut body: impl FnMut(&mut Node, &[usize], bool, &mut R) -> Result<(), DsmError>,
) -> Option<Vec<R>> {
    if node.failed() {
        // A fail-stopped rank must not execute the body at all: its sync
        // ops are inert but its page reads are not, so running compute
        // here would resurrect the corpse. Campaign rounds after a
        // permanent death land here.
        return None;
    }
    let p = node.id();
    let mut pieces = Vec::new();
    let completed = loop {
        let dead = node.known_dead();
        let roles = merged_roles(p, nprocs, &dead);
        let resume = !dead.is_empty();
        let mut acc = R::default();
        match body(node, &roles, resume, &mut acc) {
            Ok(()) => {
                pieces.push(acc);
                break roles;
            }
            Err(_) if node.failed() => return None,
            Err(DsmError::NodeFailed { .. }) => continue,
            Err(e) => panic!("unrecoverable DSM error during takeover: {e}"),
        }
    };
    for &r in &completed {
        if r != p {
            node.note_takeover();
        }
    }
    let mut handled: std::collections::BTreeSet<usize> = completed.into_iter().collect();
    let mut prev_dead: Vec<usize> = Vec::new();
    loop {
        let dead = node.barrier_wait();
        if dead.iter().all(|d| prev_dead.contains(d)) {
            break;
        }
        let mine = merged_roles(p, nprocs, &dead);
        let todo: Vec<usize> = mine
            .iter()
            .copied()
            .filter(|r| !handled.contains(r))
            .collect();
        if !todo.is_empty() {
            let mut acc = R::default();
            match body(node, &todo, true, &mut acc) {
                Ok(()) => {
                    pieces.push(acc);
                    for &r in &todo {
                        handled.insert(r);
                        if r != p {
                            node.note_takeover();
                        }
                    }
                }
                Err(_) if node.failed() => return None,
                // The dead set grew mid-sweep: the next barrier round
                // recomputes the assignment and retries.
                Err(DsmError::NodeFailed { .. }) => {}
                Err(e) => panic!("unrecoverable DSM error during takeover: {e}"),
            }
        }
        prev_dead = dead;
    }
    Some(pieces)
}

/// Virtual downtime of a scheduled rejoin: `units` work units at the
/// strategy's calibrated per-unit cost.
pub fn rejoin_downtime(unit_time: Duration, units: u64) -> Duration {
    unit_time.saturating_mul(units.min(u64::from(u32::MAX)) as u32)
}

/// The elastic-membership campaign driver: runs `rounds` workloads and
/// implements the **join/handback protocol** around them.
///
/// Every node calls this with the same arguments; `body(node, w)` runs
/// workload `w` end to end (typically via [`run_with_takeover`]) and
/// must tolerate being called on a fail-stopped node (all its DSM sync
/// ops are inert; [`run_with_takeover`] returns `None` and the body
/// returns its sentinel).
///
/// The driver's contract is **round determinism**: each workload is
/// padded with empty barriers up to a fixed per-round `budget`, so the
/// global barrier-round number of every workload boundary is known to
/// every rank — even to a fail-stopped one whose own grants are inert.
/// That is what lets a joiner name its admission round: at the first
/// boundary after its crash it calls [`Node::rejoin`] with
/// `admit_at_round = base + (w+1) × budget`; daemon 0 parks the
/// announcement until the survivors' padding completes the boundary
/// round, the handback happens there, and the joiner re-enters the next
/// workload owning its original role again (the ledgers of the crashed
/// workload stay with the adopters — catch-up already replayed them).
///
/// `budget` must be at least the barrier count of the worst workload
/// **plus one**: the driver opens every round with a membership-refresh
/// barrier (the boundary round's own grant is issued before admissions
/// drain, so it still dead-credits the joiner), then the body's own
/// barriers follow — `1 + base_barriers + kills` (each observed death
/// adds at most one sweep round). The driver asserts it. `unit_time`
/// prices the joiner's virtual downtime ([`Node::rejoin_point`] is
/// denominated in work units).
///
/// Liveness assumes the transport's delivery bound: an announcement
/// sent at a boundary is delivered before the campaign's final barrier
/// tears the run down (`models::rejoin` encodes the same assumption as
/// its final-boundary gate). Schedule rejoin points inside the
/// campaign, not at its very end.
///
/// Returns one body result per workload round; rounds a late-admitted
/// joiner missed hold `R::default()`, the same sentinel a dead rank
/// reports.
pub fn run_elastic<R: Default>(
    node: &mut Node,
    rounds: usize,
    budget: usize,
    unit_time: Duration,
    mut body: impl FnMut(&mut Node, usize) -> R,
) -> Vec<R> {
    let base = node.round();
    let mut rejoined = false;
    let mut out = Vec::with_capacity(rounds);
    let mut w = 0usize;
    while w < rounds {
        // Boundary w: the first boundary after this rank's crash is
        // where it announces. Admission is deferred by daemon 0 to the
        // boundary round itself, so this blocks (in host time) until
        // every survivor has finished workload w-1 and its padding.
        if node.failed() && !rejoined {
            if let Some(units) = node.rejoin_point() {
                node.rejoin(
                    rejoin_downtime(unit_time, units),
                    base + (w as u64) * budget as u64,
                    budget as u64,
                );
                rejoined = true;
                // If the announcement missed its boundary (delayed or
                // retransmitted past it), daemon 0 re-deferred the
                // admission to a later boundary multiple. The missed
                // workloads ran without us — the survivors' adopters
                // owned our roles — so record their dead sentinel and
                // catch up to the admitted boundary's workload index.
                let admitted = node.round();
                while base + (w as u64) * (budget as u64) < admitted && w < rounds {
                    out.push(R::default());
                    w += 1;
                }
                if w >= rounds {
                    break;
                }
            }
        }
        let before = node.round();
        // Membership refresh: the boundary round's grant was issued
        // while the joiner was still dead-credited (admissions drain
        // after the grants go out), so every rank takes one barrier
        // before the body consults its membership view — this round's
        // grant reflects every admission drained at the boundary. Costs
        // one budget round; inert on a dead rank, as required.
        node.barrier_wait();
        out.push(body(node, w));
        let used = (node.round() - before) as usize;
        assert!(
            used <= budget,
            "workload {w} consumed {used} barrier rounds, budget is {budget}"
        );
        // Padding keeps every boundary at a globally known round number
        // regardless of how many sweep rounds the deaths cost. A failed
        // rank's barriers are inert, which is exactly right: it is
        // dead-credited until its admission boundary.
        for _ in used..budget {
            node.barrier_wait();
        }
        w += 1;
    }
    // Closing boundary: a rank whose crash landed in the last workload
    // (or whose scheduled downtime reaches past it) rejoins here, so a
    // campaign always ends with full membership and the rejoin is
    // observable in the run's stats. Stride 0: there is no boundary
    // after this one to re-defer a late announcement to.
    if node.failed() && !rejoined {
        if let Some(units) = node.rejoin_point() {
            node.rejoin(
                rejoin_downtime(unit_time, units),
                base + (rounds as u64) * budget as u64,
                0,
            );
        }
    }
    node.barrier();
    out
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoint files
// ---------------------------------------------------------------------------

/// Footer magic of a complete checkpoint/saved-column file.
pub const FILE_MAGIC: u64 = 0x4753_4d43_4b50_5431; // "GSMCKPT1"

/// 64-bit FNV-1a over `bytes`, seeded by the running `state` (start from
/// [`FNV_OFFSET`]).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a state.
pub fn fnv1a_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Streaming crash-safe file writer: bytes go to `<path>.tmp` while a
/// running length and FNV-1a checksum accumulate; [`finish`] appends the
/// `payload_len | checksum | magic` footer, fsyncs, and atomically
/// renames over the final path. A crash at any earlier point leaves
/// either the old file or a `.tmp` that [`read_verified`] rejects —
/// never a silently truncated checkpoint.
///
/// [`finish`]: AtomicFileWriter::finish
#[derive(Debug)]
pub struct AtomicFileWriter {
    tmp_path: PathBuf,
    final_path: PathBuf,
    out: BufWriter<File>,
    len: u64,
    fnv: u64,
}

impl AtomicFileWriter {
    /// Opens `<path>.tmp` for writing.
    pub fn create(path: &Path) -> io::Result<Self> {
        let tmp_path = tmp_sibling(path);
        let out = BufWriter::new(File::create(&tmp_path)?);
        Ok(Self {
            tmp_path,
            final_path: path.to_path_buf(),
            out,
            len: 0,
            fnv: FNV_OFFSET,
        })
    }

    /// Appends payload bytes.
    pub fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.out.write_all(bytes)?;
        self.len += bytes.len() as u64;
        self.fnv = fnv1a_fold(self.fnv, bytes);
        Ok(())
    }

    /// Payload bytes written so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no payload has been written yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Writes the footer, fsyncs, and renames onto the final path.
    pub fn finish(mut self) -> io::Result<()> {
        let mut footer = [0u8; 24];
        footer[0..8].copy_from_slice(&self.len.to_le_bytes());
        footer[8..16].copy_from_slice(&self.fnv.to_le_bytes());
        footer[16..24].copy_from_slice(&FILE_MAGIC.to_le_bytes());
        self.out.write_all(&footer)?;
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        drop(self.out);
        std::fs::rename(&self.tmp_path, &self.final_path)
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes `payload` crash-safely to `path` in one shot (see
/// [`AtomicFileWriter`]).
pub fn write_verified(path: &Path, payload: &[u8]) -> io::Result<()> {
    let mut w = AtomicFileWriter::create(path)?;
    w.write_all(payload)?;
    w.finish()
}

/// Reads a file written by [`AtomicFileWriter`], verifying the footer:
/// returns the payload bytes, or an [`io::ErrorKind::InvalidData`] error
/// naming the defect (missing footer, bad magic, length mismatch,
/// checksum mismatch) for truncated or corrupted files.
pub fn read_verified(path: &Path) -> io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let corrupt = |detail: String| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: {detail}", path.display()),
        )
    };
    if bytes.len() < 24 {
        return Err(corrupt(format!(
            "file too short for checkpoint footer ({} bytes)",
            bytes.len()
        )));
    }
    let body = bytes.len() - 24;
    let word = |at: usize| {
        let mut a = [0u8; 8];
        a.copy_from_slice(&bytes[at..at + 8]);
        u64::from_le_bytes(a)
    };
    let (len, fnv, magic) = (word(body), word(body + 8), word(body + 16));
    if magic != FILE_MAGIC {
        return Err(corrupt(format!("bad checkpoint magic {magic:#018x}")));
    }
    if len != body as u64 {
        return Err(corrupt(format!(
            "checkpoint footer claims {len} payload bytes, file has {body}"
        )));
    }
    let got = fnv1a_fold(FNV_OFFSET, &bytes[..body]);
    if got != fnv {
        return Err(corrupt(format!(
            "checkpoint checksum mismatch: footer {fnv:#018x}, computed {got:#018x}"
        )));
    }
    bytes.truncate(body);
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_dsm::{DsmConfig, DsmSystem};

    #[test]
    fn adopters_fold_contiguous_dead_runs() {
        // 8 nodes, 1/2/6 dead: 2's adopter is 3; 1's adopter skips 2 to 3;
        // 6's is 7. Node 3 thus runs bands for roles {1, 2, 3}.
        let dead = vec![1, 2, 6];
        assert_eq!(adopter_of(1, 8, &dead), 3);
        assert_eq!(adopter_of(2, 8, &dead), 3);
        assert_eq!(adopter_of(6, 8, &dead), 7);
        assert_eq!(merged_roles(3, 8, &dead), vec![1, 2, 3]);
        assert_eq!(merged_roles(7, 8, &dead), vec![6, 7]);
        assert_eq!(merged_roles(0, 8, &dead), vec![0]);
        assert!(
            adopted_roles(2, 8, &dead).is_empty(),
            "corpses adopt nothing"
        );
    }

    #[test]
    fn adoption_wraps_cyclically() {
        // Last node dead: node 0 adopts it (band order wraps).
        let dead = vec![3];
        assert_eq!(adopter_of(3, 4, &dead), 0);
        assert_eq!(merged_roles(0, 4, &dead), vec![0, 3]);
    }

    #[test]
    fn ledger_roundtrips_across_nodes() {
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let ledger = Ledger::<i32>::new(node, 2, 4, 3);
            node.barrier();
            if node.id() == 0 {
                ledger.record_push(node, 0, 0, &[1, 2, 3]);
                ledger.record_push(node, 0, 1, &[4, 5]);
                ledger.record_pop(node, 0, 7);
                ledger.set_user(node, 0, -9);
                ledger.mark_done(node, 0);
            }
            node.barrier();
            let meta = ledger.snapshot(node, 0);
            assert_eq!(
                meta,
                LedgerMeta {
                    pushes: 2,
                    pops: 7,
                    done: true,
                    user: -9
                }
            );
            let mut got = ledger.read_chunk(node, 0, 0, 3);
            got.extend(ledger.read_chunk(node, 0, 1, 2));
            node.barrier();
            got
        });
        for r in &run.results {
            assert_eq!(*r, vec![1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn ledger_survives_its_writers_death() {
        // The role's worker dies after publishing; the ledger lives in
        // its daemon, which survives, so the adopter still reads it.
        let cfg = DsmConfig::new(2).supervise(genomedsm_dsm::SupervisionConfig {
            enabled: true,
            detect_after: std::time::Duration::from_millis(100),
            watchdog: std::time::Duration::from_millis(500),
        });
        let run = DsmSystem::run(cfg, |node| {
            let ledger = Ledger::<i64>::new(node, 2, 2, 2);
            node.barrier();
            if node.id() == 1 {
                ledger.record_push(node, 1, 0, &[42, 43]);
                ledger.record_pop(node, 1, 1);
                node.fail_stop();
                return vec![];
            }
            let dead = node.barrier_wait();
            assert_eq!(dead, vec![1]);
            let meta = ledger.snapshot(node, 1);
            assert_eq!(meta.pushes, 1);
            assert_eq!(meta.pops, 1);
            assert!(!meta.done);
            ledger.read_chunk(node, 1, 0, 2)
        });
        assert_eq!(run.results[0], vec![42, 43]);
    }

    #[test]
    fn flow_channel_pipelines_fresh() {
        // Fault-free path: 40 chunks through a capacity-2 channel, data
        // carried by the ledger log, signals trusted 1:1.
        let run = DsmSystem::run(DsmConfig::new(2), |node| {
            let ledger = Ledger::<i32>::new(node, 2, 40, 3);
            node.barrier();
            let roles = [node.id()];
            let mut ch = FlowChannel::new(node, &ledger, 0, 1, 0, 1, 2, false);
            let mut got = Vec::new();
            if node.id() == 0 {
                for c in 0..40 {
                    ch.produce(node, &ledger, &roles, c, &[c as i32, c as i32 * 2])
                        .unwrap();
                }
            } else {
                for c in 0..40 {
                    got.extend(ch.consume(node, &ledger, &roles, c, 2).unwrap());
                }
            }
            node.barrier();
            got
        });
        let expect: Vec<i32> = (0..40).flat_map(|c| [c, c * 2]).collect();
        assert_eq!(run.results[1], expect);
    }

    #[test]
    fn flow_channel_internal_endpoints_replay_from_log() {
        // Both endpoints on one executor (merged roles): record-only
        // produce, wait-free consume, no condition variables at all.
        let run = DsmSystem::run(DsmConfig::new(1), |node| {
            let ledger = Ledger::<i64>::new(node, 1, 8, 1);
            node.barrier();
            let roles = [0];
            let mut ch = FlowChannel::new(node, &ledger, 0, 0, 0, 1, 1, false);
            for c in 0..8u64 {
                ch.produce(node, &ledger, &roles, c, &[c as i64 * 3])
                    .unwrap();
            }
            let mut sum = 0;
            for c in 0..8u64 {
                sum += ch.consume(node, &ledger, &roles, c, 1).unwrap()[0];
            }
            node.barrier();
            sum
        });
        assert_eq!(run.results[0], (0..8).map(|c| c * 3).sum::<i64>());
    }

    #[test]
    fn flow_channel_adopter_redelivers_after_death() {
        // Node 1 (middle of a 3-stage pipeline) dies after recording two
        // chunks but signaling only implicitly; node 2 adopts role 1,
        // replays its consumed input from node 0's log, and re-produces —
        // the downstream consumer (also node 2, internal) sees all data.
        let cfg = DsmConfig::new(3).supervise(genomedsm_dsm::SupervisionConfig {
            enabled: true,
            detect_after: std::time::Duration::from_millis(50),
            watchdog: std::time::Duration::from_millis(400),
        });
        let run = DsmSystem::run(cfg, |node| {
            let ledger = Ledger::<i32>::new(node, 3, 6, 1);
            node.barrier();
            match node.id() {
                0 => {
                    let roles = [0];
                    let mut out = FlowChannel::new(node, &ledger, 0, 1, 0, 1, 6, false);
                    for c in 0..6 {
                        out.produce(node, &ledger, &roles, c, &[10 + c as i32])
                            .unwrap();
                    }
                    let dead = node.barrier_wait();
                    assert_eq!(dead, vec![1]);
                    Vec::new()
                }
                1 => {
                    let roles = [1];
                    let mut inp = FlowChannel::new(node, &ledger, 0, 1, 0, 1, 6, false);
                    let mut out = FlowChannel::new(node, &ledger, 1, 2, 2, 3, 6, false);
                    for c in 0..2 {
                        let v = inp.consume(node, &ledger, &roles, c, 1).unwrap()[0];
                        out.produce(node, &ledger, &roles, c, &[v * 2]).unwrap();
                    }
                    node.fail_stop();
                    Vec::new()
                }
                _ => {
                    let mut got = Vec::new();
                    let mut roles = vec![2];
                    let mut inp = FlowChannel::new(node, &ledger, 1, 2, 2, 3, 6, false);
                    let mut c = 0u64;
                    while c < 6 {
                        match inp.consume(node, &ledger, &roles, c, 1) {
                            Ok(v) => {
                                got.push(v[0]);
                                c += 1;
                            }
                            Err(DsmError::NodeFailed { .. }) => {
                                // Adopt role 1: replay its input and
                                // re-produce; restart our own consume.
                                roles = merged_roles(2, 3, &node.known_dead());
                                assert_eq!(roles, vec![1, 2]);
                                let mut r_in = FlowChannel::new(node, &ledger, 0, 1, 0, 1, 6, true);
                                let mut r_out =
                                    FlowChannel::new(node, &ledger, 1, 2, 2, 3, 6, true);
                                for k in 0..6 {
                                    let v = r_in.consume(node, &ledger, &roles, k, 1).unwrap()[0];
                                    r_out.produce(node, &ledger, &roles, k, &[v * 2]).unwrap();
                                }
                                got.clear();
                                inp = FlowChannel::new(node, &ledger, 1, 2, 2, 3, 6, true);
                                // Replayed pops of our own role: consume
                                // resumes where the meta says we left off.
                                let resumed = inp.recorded_pops;
                                for k in 0..resumed {
                                    got.push(ledger.read_chunk(node, 1, k, 1)[0]);
                                }
                                c = resumed;
                            }
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                    let dead = node.barrier_wait();
                    assert_eq!(dead, vec![1]);
                    got
                }
            }
        });
        assert_eq!(run.results[2], vec![20, 22, 24, 26, 28, 30]);
    }

    #[test]
    fn verified_file_roundtrip_and_corruption_detection() {
        let dir = std::env::temp_dir().join(format!("ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cols.bin");

        let payload: Vec<u8> = (0..=255).collect();
        write_verified(&path, &payload).unwrap();
        assert_eq!(read_verified(&path).unwrap(), payload);
        assert!(!path.with_file_name("cols.bin.tmp").exists());

        // Truncation (a torn write that lost the footer) is rejected.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let err = read_verified(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A single flipped payload bit is rejected by the checksum.
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        std::fs::write(&path, &flipped).unwrap();
        let err = read_verified(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));

        // Empty payloads are representable.
        write_verified(&path, &[]).unwrap();
        assert_eq!(read_verified(&path).unwrap(), Vec::<u8>::new());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writer_matches_one_shot() {
        let dir = std::env::temp_dir().join(format!("ckpt_stream_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.bin");
        let b = dir.join("b.bin");
        let payload = b"border rows, in pieces".to_vec();

        write_verified(&a, &payload).unwrap();
        let mut w = AtomicFileWriter::create(&b).unwrap();
        for piece in payload.chunks(5) {
            w.write_all(piece).unwrap();
        }
        assert_eq!(w.len(), payload.len() as u64);
        w.finish().unwrap();

        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn handback_is_the_inverse_of_adoption() {
        // Property: for every cluster size, joiner, and dead set not
        // containing the joiner, the rank handing a role back is exactly
        // the rank that adopted it when the joiner was dead.
        for nprocs in 1..=8usize {
            for joiner in 0..nprocs {
                for mask in 0u32..(1 << nprocs) {
                    let dead: Vec<usize> = (0..nprocs).filter(|&n| mask & (1 << n) != 0).collect();
                    if dead.contains(&joiner) || dead.len() == nprocs {
                        continue;
                    }
                    let mut while_dead = dead.clone();
                    while_dead.push(joiner);
                    while_dead.sort_unstable();
                    if while_dead.len() == nprocs {
                        continue; // nobody left alive to adopt
                    }
                    assert_eq!(
                        handback_of(joiner, nprocs, &dead),
                        adopter_of(joiner, nprocs, &while_dead),
                        "nprocs={nprocs} joiner={joiner} dead={dead:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn handback_comes_from_a_live_rank_that_held_the_role() {
        // 8 ranks, 1 and 2 still dead, 3 rejoining: while 3 was dead the
        // contiguous run {1,2,3} folded onto 4, so 4 hands the role back.
        assert_eq!(handback_of(3, 8, &[1, 2]), 4);
        // Healthy cluster: the joiner's role was held by its adopter.
        assert_eq!(handback_of(5, 8, &[]), 6);
        assert_eq!(handback_of(7, 8, &[]), 0, "handback wraps cyclically");
    }

    #[test]
    fn kill_plan_schedules_rejoins() {
        let plan = KillPlan::new().kill(2, 5).rejoin(2, 7).kill(4, 9);
        assert_eq!(plan.victims(), vec![2, 4]);
        assert_eq!(plan.joiners(), vec![2]);
        assert_eq!(FaultInjector::crash_point(&plan, 2), Some(5));
        assert_eq!(FaultInjector::rejoin_point(&plan, 2), Some(7));
        assert_eq!(
            FaultInjector::rejoin_point(&plan, 4),
            None,
            "no rejoin scheduled for node 4"
        );
        assert_eq!(FaultInjector::crash_point(&plan, 0), None);
    }

    #[test]
    fn rejoin_downtime_is_units_times_unit_cost() {
        use std::time::Duration;
        assert_eq!(
            rejoin_downtime(Duration::from_millis(3), 7),
            Duration::from_millis(21)
        );
        assert_eq!(rejoin_downtime(Duration::from_millis(3), 0), Duration::ZERO);
        // Saturates instead of overflowing on absurd unit counts.
        let _ = rejoin_downtime(Duration::from_secs(1), u64::MAX);
    }

    #[test]
    fn ledger_replay_edge_cases() {
        // Satellite coverage: an empty (never-written) ledger snapshots to
        // all-zero progress; a resume-from-zero channel replays nothing
        // and then operates normally; sequential adoptions of the same
        // role pick up from the exact published cursor each time.
        let run = DsmSystem::run(DsmConfig::new(1), |node| {
            let ledger = Ledger::<i32>::new(node, 1, 8, 1);
            node.barrier();

            // Empty ledger: zero cursors, not done, zero user word.
            let meta = ledger.snapshot(node, 0);
            assert_eq!(
                meta,
                LedgerMeta {
                    pushes: 0,
                    pops: 0,
                    done: false,
                    user: 0
                }
            );

            // Replay-to-cursor-zero: a resume channel over the empty
            // ledger starts from ordinal 0 like a fresh one.
            let roles = [0usize];
            let mut ch = FlowChannel::new(node, &ledger, 0, 0, 0, 1, 1, true);
            for c in 0..3u64 {
                ch.produce(node, &ledger, &roles, c, &[c as i32 + 1])
                    .unwrap();
            }
            for c in 0..3u64 {
                assert_eq!(
                    ch.consume(node, &ledger, &roles, c, 1).unwrap(),
                    vec![c as i32 + 1]
                );
            }

            // First adoption of role 0: the adopter's channel resumes at
            // the published cursors (3 pushes, 3 pops) and extends the
            // log; a second sequential adoption resumes at the new
            // cursor (5) — nothing is replayed twice, nothing skipped.
            for round in 0..2u64 {
                let mut adopted = FlowChannel::new(node, &ledger, 0, 0, 0, 1, 1, true);
                let base = 3 + round * 2;
                for c in base..base + 2 {
                    adopted
                        .produce(node, &ledger, &roles, c, &[c as i32 + 1])
                        .unwrap();
                    assert_eq!(
                        adopted.consume(node, &ledger, &roles, c, 1).unwrap(),
                        vec![c as i32 + 1]
                    );
                }
                assert_eq!(ledger.snapshot(node, 0).pushes, base + 2);
            }

            // The full log is readable back byte-for-byte.
            let all: Vec<i32> = (0..7)
                .map(|c| ledger.read_chunk(node, 0, c, 1)[0])
                .collect();
            node.barrier();
            all
        });
        assert_eq!(run.results[0], vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn elastic_driver_readmits_at_the_boundary() {
        // Three ranks, two campaign rounds with a barrier budget of 3
        // (refresh + one body barrier + one spare).
        // Rank 2 dies in round 0 and is scheduled to rejoin; the driver
        // must re-admit it at the round-1 boundary so round 1 runs on the
        // full cluster, and every rank's boundary rounds line up.
        let cfg = DsmConfig::new(3)
            .supervise(genomedsm_dsm::SupervisionConfig {
                enabled: true,
                detect_after: std::time::Duration::from_millis(50),
                watchdog: std::time::Duration::from_millis(400),
            })
            .faults(std::sync::Arc::new(KillPlan::new().kill(2, 1).rejoin(2, 4)));
        let run = DsmSystem::run(cfg, |node| {
            node.barrier();
            let base = node.round();
            let memberships = run_elastic(
                node,
                2,
                3,
                std::time::Duration::from_millis(1),
                |node, w| {
                    if node.failed() {
                        return usize::MAX;
                    }
                    if node.id() == 2 && w == 0 {
                        node.fail_stop();
                        return usize::MAX;
                    }
                    let dead = node.barrier_wait();
                    assert_eq!(
                        node.round(),
                        base + (w as u64) * 3 + 2,
                        "refresh + body barrier land inside the round's budget"
                    );
                    3 - dead.len()
                },
            );
            assert_eq!(node.round(), base + 7, "2 rounds × budget 3 + close");
            memberships
        });
        // Round 0 ran degraded (the kill fires before the body barrier on
        // rank 2), round 1 at full strength after the boundary handback.
        for id in 0..2 {
            assert_eq!(run.results[id], vec![2, 3], "rank {id} memberships");
        }
        assert_eq!(run.results[2], vec![usize::MAX, 3], "joiner's view");
        assert_eq!(run.stats.iter().map(|s| s.rejoins).sum::<u64>(), 1);
    }

    #[test]
    fn elastic_driver_leaves_a_permanent_death_degraded() {
        // Same shape but no scheduled rejoin: the cluster stays at N−1
        // for the rest of the campaign — the degradation baseline the
        // rejoin sweep compares against.
        let cfg = DsmConfig::new(3)
            .supervise(genomedsm_dsm::SupervisionConfig {
                enabled: true,
                detect_after: std::time::Duration::from_millis(50),
                watchdog: std::time::Duration::from_millis(400),
            })
            .faults(std::sync::Arc::new(KillPlan::new().kill(2, 1)));
        let run = DsmSystem::run(cfg, |node| {
            node.barrier();
            run_elastic(
                node,
                2,
                3,
                std::time::Duration::from_millis(1),
                |node, w| {
                    if node.failed() {
                        return usize::MAX;
                    }
                    if node.id() == 2 && w == 0 {
                        node.fail_stop();
                        return usize::MAX;
                    }
                    3 - node.barrier_wait().len()
                },
            )
        });
        for id in 0..2 {
            assert_eq!(run.results[id], vec![2, 2], "rank {id} stays degraded");
        }
        assert_eq!(run.stats.iter().map(|s| s.rejoins).sum::<u64>(), 0);
    }
}
