//! Phase 2 (§4.4): retrieving the actual alignments.
//!
//! For each similar region found in phase 1, the corresponding
//! subsequences are aligned globally (Needleman–Wunsch). The distributed
//! algorithm treats the queue as a vector sorted by subsequence size and
//! uses a **scattered mapping**: processor `Pi` handles positions
//! `i, i+P, i+2P, …` of the vector and records its results at the same
//! scattered positions of a shared vector — "this strategy eliminates the
//! need for synchronization operations such as those provided by locks
//! and condition variables"; barriers are used only at the beginning and
//! the end.

use crate::checkpoint::{merged_roles, StrategyError, StrategyResult};
use crate::Phase1Outcome;
use genomedsm_core::nw::{align_region, RegionAlignment};
use genomedsm_core::{LocalRegion, Scoring};
use genomedsm_dsm::{DsmConfig, DsmSystem, NodeStats};
use std::time::{Duration, Instant};

/// Result of a phase-2 run.
#[derive(Debug, Clone)]
pub struct Phase2Outcome {
    /// One global alignment per input region, in input order.
    pub alignments: Vec<RegionAlignment>,
    /// Per-node DSM statistics.
    pub per_node: Vec<NodeStats>,
    /// Total simulated cluster time (max node virtual clock).
    pub wall: Duration,
    /// Real time the simulation took on the host (diagnostic only).
    pub host_wall: Duration,
}

impl Phase2Outcome {
    /// Aggregated statistics over all nodes.
    pub fn aggregate(&self) -> NodeStats {
        let mut agg = NodeStats::default();
        for s in &self.per_node {
            agg.merge(s);
        }
        agg
    }
}

/// Runs phase 2 on a simulated DSM cluster with the scattered mapping.
///
/// Returns one [`RegionAlignment`] per input region (same order). The
/// similarity scores are also written into a shared DSM vector at the
/// scattered positions, exactly as the paper describes, and cross-checked
/// on node 0.
pub fn phase2_scattered(
    s: &[u8],
    t: &[u8],
    regions: &[LocalRegion],
    scoring: &Scoring,
    nprocs: usize,
) -> StrategyResult<Phase2Outcome> {
    let config = DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster());
    phase2_scattered_with(s, t, regions, scoring, &config)
}

/// [`phase2_scattered`] with an explicit DSM configuration, so callers can
/// attach a fault injector, retransmission policy, or network model (the
/// chaos suite runs phase 2 under injected loss through this entry).
///
/// With supervision enabled the run tolerates fail-stop deaths: the
/// scattered mapping has no mid-run synchronization, so deaths surface at
/// the end-of-compute barrier, where survivors deterministically adopt
/// the dead roles' scattered indices (see [`merged_roles`]) and re-align
/// them — duplicates across rounds overwrite with identical alignments.
/// The cross-check falls to the lowest *alive* node. Locks and condition
/// variables stay unused either way.
///
/// # Errors
///
/// Returns [`StrategyError::Worker`] if any region ends the run
/// unaligned (every worker holding it died and no survivor adopted it —
/// cannot happen while at least one node survives).
pub fn phase2_scattered_with(
    s: &[u8],
    t: &[u8],
    regions: &[LocalRegion],
    scoring: &Scoring,
    config: &DsmConfig,
) -> StrategyResult<Phase2Outcome> {
    let t0 = Instant::now();
    let scoring = *scoring;
    // One work unit is one region alignment; a scheduled rejoin's
    // virtual downtime is priced at the mean region cost.
    let avg_cells =
        regions.iter().map(|r| r.s_len() * r.t_len()).sum::<usize>() / regions.len().max(1);
    let run = DsmSystem::run_wire(config.clone(), |node| {
        let p = node.id();
        let nprocs = node.nprocs();
        let shared_scores = node.alloc_vec::<i32>(regions.len().max(1));
        node.barrier();
        let crash_at = if node.supervised() {
            node.crash_point()
        } else {
            None
        };
        let mut units = 0u64;
        // Aligns every scattered index of `role` into `mine`; false means
        // this node fail-stopped mid-role (its memory, `mine` included,
        // is lost). Textual macro: `node` and `mine` bind at the
        // expansion site, so both the plain path and the elastic body
        // below use their own.
        macro_rules! run_role {
            ($node:expr, $mine:expr, $role:expr) => {{
                let mut idx = $role;
                let mut ok = true;
                while idx < regions.len() {
                    let r = &regions[idx];
                    let ra = align_region(s, t, r, &scoring);
                    $node.advance(crate::costs::cells(
                        crate::costs::NW_CELL,
                        r.s_len() * r.t_len(),
                    ));
                    $node.vec_set(&shared_scores, idx, ra.alignment.score);
                    $mine.push((idx, ra));
                    units += 1;
                    if crash_at == Some(units) {
                        $node.fail_stop();
                        ok = false;
                        break;
                    }
                    $node.heartbeat();
                    idx += nprocs;
                }
                ok
            }};
        }
        if node.supervised() {
            // The tolerant path runs as a one-round elastic campaign: a
            // victim with a scheduled rejoin is re-admitted at the
            // closing boundary, after the survivors' cross-check. Budget:
            // takeover sweep (at most nprocs rounds) + the final barrier.
            let unit_time = crate::costs::cells(crate::costs::NW_CELL, avg_cells.max(1));
            let mut rounds =
                crate::checkpoint::run_elastic(node, 1, nprocs.max(1) + 3, unit_time, |node, _| {
                    let mut mine: Vec<(usize, RegionAlignment)> = Vec::new();
                    if node.failed() || !run_role!(node, mine, p) {
                        return Vec::new();
                    }
                    // Takeover sweep: the scattered mapping has no locks
                    // or cvs, so deaths are only discovered here. Loop
                    // until a barrier reports no new corpses; each round
                    // re-runs the dead roles this node adopts. Re-aligning
                    // an index twice is harmless — the alignment is
                    // deterministic and overwrites itself.
                    let mut handled: std::collections::BTreeSet<usize> = [p].into();
                    let mut seen_dead: Vec<usize> = Vec::new();
                    loop {
                        let dead = node.barrier_wait();
                        if dead.iter().all(|d| seen_dead.contains(d)) {
                            break;
                        }
                        for role in merged_roles(p, nprocs, &dead) {
                            if handled.contains(&role) {
                                continue;
                            }
                            if !run_role!(node, mine, role) {
                                return Vec::new();
                            }
                            handled.insert(role);
                            node.note_takeover();
                        }
                        seen_dead = dead;
                    }
                    // Cross-check the shared vector on the lowest alive
                    // node (every score must have been merged through the
                    // multiple-writer protocol).
                    let dead = node.known_dead();
                    let checker = (0..nprocs).find(|q| !dead.contains(q)).unwrap_or(0);
                    if p == checker {
                        for i in 0..regions.len() {
                            let _ = node.vec_get(&shared_scores, i);
                        }
                    }
                    node.barrier_wait();
                    mine
                });
            return crate::wire::WireIndexed(rounds.pop().unwrap_or_default());
        }
        let mut mine: Vec<(usize, RegionAlignment)> = Vec::new();
        if !run_role!(node, mine, p) {
            return crate::wire::WireIndexed(Vec::new());
        }
        node.barrier();
        // Cross-check the shared vector on node 0 (every score must have
        // been merged through the multiple-writer protocol).
        if p == 0 {
            for i in 0..regions.len() {
                let _ = node.vec_get(&shared_scores, i);
            }
        }
        node.barrier();
        crate::wire::WireIndexed(mine)
    });

    let mut alignments: Vec<Option<RegionAlignment>> = vec![None; regions.len()];
    for per_node in run.results {
        for (idx, ra) in per_node.0 {
            alignments[idx] = Some(ra);
        }
    }
    let mut out = Vec::with_capacity(alignments.len());
    for (idx, a) in alignments.into_iter().enumerate() {
        out.push(
            a.ok_or_else(|| StrategyError::Worker(format!("region {idx} was never aligned")))?,
        );
    }
    Ok(Phase2Outcome {
        alignments: out,
        wall: run.stats.iter().map(|s| s.total).max().unwrap_or_default(),
        host_wall: t0.elapsed(),
        per_node: run.stats,
    })
}

/// The modern shared-memory port: the same scattered unit of work on the
/// batch subsystem's work-stealing scheduler
/// ([`genomedsm_batch::run_jobs`]), which steals the lowest-indexed job
/// when idle and merges results strictly in input order — so the output
/// is identical for any `threads` (ablation baseline for the DSM
/// version; previously a plain rayon pool without stealing).
///
/// # Errors
///
/// Infallible today; keeps [`StrategyResult`] so the signature matches
/// the other phase-2 entry points.
pub fn phase2_scattered_pool(
    s: &[u8],
    t: &[u8],
    regions: &[LocalRegion],
    scoring: &Scoring,
    threads: usize,
) -> StrategyResult<Vec<RegionAlignment>> {
    let scheduler = genomedsm_batch::SchedulerConfig {
        workers: threads.max(1),
        window: 0,
    };
    let mut out = Vec::with_capacity(regions.len());
    genomedsm_batch::run_jobs(
        (0..regions.len()).collect(),
        &scheduler,
        |_, i: usize| align_region(s, t, &regions[i], scoring),
        |_, ra| out.push(ra),
    );
    Ok(out)
}

/// The ablation foil for the scattered mapping: contiguous **block
/// mapping** (node `i` takes the `i`-th block of the size-sorted queue).
/// The paper chose scattered mapping because the queue is sorted by
/// subsequence size — a block mapping hands all the big alignments to
/// the first node and idles the rest; the harness quantifies exactly
/// that imbalance.
pub fn phase2_block_mapping(
    s: &[u8],
    t: &[u8],
    regions: &[LocalRegion],
    scoring: &Scoring,
    nprocs: usize,
) -> StrategyResult<Phase2Outcome> {
    let t0 = Instant::now();
    let scoring = *scoring;
    let config = DsmConfig::new(nprocs).network(genomedsm_dsm::NetworkModel::paper_cluster());
    let run = DsmSystem::run_wire(config, |node| {
        let p = node.id();
        let total = regions.len();
        let nprocs = node.nprocs();
        let lo = p * total / nprocs;
        let hi = (p + 1) * total / nprocs;
        node.barrier();
        let mut mine: Vec<(usize, RegionAlignment)> = Vec::new();
        for (idx, r) in regions.iter().enumerate().take(hi).skip(lo) {
            let ra = align_region(s, t, r, &scoring);
            node.advance(crate::costs::cells(
                crate::costs::NW_CELL,
                r.s_len() * r.t_len(),
            ));
            mine.push((idx, ra));
        }
        node.barrier();
        crate::wire::WireIndexed(mine)
    });
    let mut alignments: Vec<Option<RegionAlignment>> = vec![None; regions.len()];
    for per_node in run.results {
        for (idx, ra) in per_node.0 {
            alignments[idx] = Some(ra);
        }
    }
    let mut out = Vec::with_capacity(alignments.len());
    for (idx, a) in alignments.into_iter().enumerate() {
        out.push(
            a.ok_or_else(|| StrategyError::Worker(format!("region {idx} was never aligned")))?,
        );
    }
    Ok(Phase2Outcome {
        alignments: out,
        wall: run.stats.iter().map(|s| s.total).max().unwrap_or_default(),
        host_wall: t0.elapsed(),
        per_node: run.stats,
    })
}

/// Convenience: runs phase 1 (any strategy) then phase 2 over its regions.
pub fn phase2_from_phase1(
    s: &[u8],
    t: &[u8],
    phase1: &Phase1Outcome,
    scoring: &Scoring,
    nprocs: usize,
) -> StrategyResult<Phase2Outcome> {
    phase2_scattered(s, t, &phase1.regions, scoring, nprocs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use genomedsm_core::heuristic_align;
    use genomedsm_core::nw::nw_score;
    use genomedsm_core::HeuristicParams;
    use genomedsm_seq::{planted_pair, HomologyPlan};

    const SC: Scoring = Scoring::paper();

    fn regions_for_test(len: usize, seed: u64) -> (Vec<u8>, Vec<u8>, Vec<LocalRegion>) {
        let (s, t, _) = planted_pair(len, len, &HomologyPlan::paper_density(len * 8), seed);
        let params = HeuristicParams {
            open_threshold: 8,
            close_threshold: 8,
            min_score: 15,
        };
        let regions = heuristic_align(&s, &t, &SC, &params);
        (s.into_bytes(), t.into_bytes(), regions)
    }

    #[test]
    fn aligns_every_region_in_order() {
        let (s, t, regions) = regions_for_test(600, 31);
        assert!(!regions.is_empty(), "need regions to align");
        for nprocs in [1, 2, 4] {
            let out = phase2_scattered(&s, &t, &regions, &SC, nprocs).unwrap();
            assert_eq!(out.alignments.len(), regions.len());
            for (ra, r) in out.alignments.iter().zip(&regions) {
                assert_eq!(ra.region, *r);
                // Alignment score equals the NW score of the subsequences.
                let expect = nw_score(&s[r.s_begin..r.s_end], &t[r.t_begin..r.t_end], &SC);
                assert_eq!(ra.alignment.score, expect);
            }
        }
    }

    #[test]
    fn dsm_and_pool_agree() {
        let (s, t, regions) = regions_for_test(500, 32);
        let dsm = phase2_scattered(&s, &t, &regions, &SC, 3).unwrap();
        let pool = phase2_scattered_pool(&s, &t, &regions, &SC, 3).unwrap();
        assert_eq!(dsm.alignments, pool);
        // The scheduler's in-order merge makes the pool output identical
        // for any worker count.
        for threads in [1, 2, 8] {
            let again = phase2_scattered_pool(&s, &t, &regions, &SC, threads).unwrap();
            assert_eq!(again, pool, "threads={threads}");
        }
    }

    #[test]
    fn no_locks_are_used() {
        let (s, t, regions) = regions_for_test(400, 33);
        let out = phase2_scattered(&s, &t, &regions, &SC, 4).unwrap();
        // Scattered mapping: zero lock/cv messages; only page traffic and
        // the start/end barriers.
        for s in &out.per_node {
            // lock_cv time must be zero: no locks or cvs at all.
            assert_eq!(s.lock_cv, Duration::ZERO);
        }
    }

    #[test]
    fn block_mapping_agrees_but_balances_worse_on_sorted_queues() {
        // A size-sorted queue (phase 1's output order): the scattered
        // mapping interleaves big and small alignments; the block mapping
        // gives node 0 all the big ones.
        let (s, t, mut regions) = regions_for_test(700, 35);
        regions.sort_by_key(|r| std::cmp::Reverse(r.size()));
        // Skew the sizes so imbalance is visible even with few regions.
        let scattered = phase2_scattered(&s, &t, &regions, &SC, 4).unwrap();
        let block = phase2_block_mapping(&s, &t, &regions, &SC, 4).unwrap();
        assert_eq!(scattered.alignments, block.alignments);
        // Scattered's critical path is at most block's (usually shorter).
        assert!(scattered.wall <= block.wall + Duration::from_millis(50));
    }

    #[test]
    fn empty_region_list() {
        let out = phase2_scattered(b"ACGT", b"ACGT", &[], &SC, 2).unwrap();
        assert!(out.alignments.is_empty());
    }

    #[test]
    fn more_processors_than_regions() {
        let (s, t, regions) = regions_for_test(300, 34);
        let take = regions.into_iter().take(2).collect::<Vec<_>>();
        let out = phase2_scattered(&s, &t, &take, &SC, 8).unwrap();
        assert_eq!(out.alignments.len(), take.len());
    }

    fn tolerant_config(nprocs: usize) -> DsmConfig {
        DsmConfig::new(nprocs)
            .network(genomedsm_dsm::NetworkModel::paper_cluster())
            .supervise(genomedsm_dsm::SupervisionConfig {
                enabled: true,
                detect_after: std::time::Duration::from_millis(40),
                watchdog: std::time::Duration::from_millis(400),
            })
    }

    #[test]
    fn tolerant_mode_keeps_lockless_invariant() {
        let (s, t, regions) = regions_for_test(400, 33);
        let plain = phase2_scattered(&s, &t, &regions, &SC, 4).unwrap();
        let out = phase2_scattered_with(&s, &t, &regions, &SC, &tolerant_config(4)).unwrap();
        assert_eq!(out.alignments, plain.alignments);
        // Heartbeats and barriers only — still zero lock/cv time.
        for st in &out.per_node {
            assert_eq!(st.lock_cv, Duration::ZERO);
        }
    }

    #[test]
    fn tolerant_mode_survives_single_death() {
        let (s, t, regions) = regions_for_test(900, 31);
        assert!(regions.len() >= 6, "need enough regions to kill mid-role");
        let expect = phase2_scattered(&s, &t, &regions, &SC, 3).unwrap();
        let config =
            tolerant_config(3).faults(std::sync::Arc::new(crate::KillPlan::new().kill(1, 2)));
        let out = phase2_scattered_with(&s, &t, &regions, &SC, &config).unwrap();
        assert_eq!(out.alignments, expect.alignments);
        assert!(out.aggregate().takeovers >= 1, "no takeover recorded");
    }

    #[test]
    fn death_of_node_zero_moves_the_crosscheck() {
        let (s, t, regions) = regions_for_test(900, 32);
        assert!(regions.len() >= 4);
        let expect = phase2_scattered(&s, &t, &regions, &SC, 2).unwrap();
        let config =
            tolerant_config(2).faults(std::sync::Arc::new(crate::KillPlan::new().kill(0, 1)));
        let out = phase2_scattered_with(&s, &t, &regions, &SC, &config).unwrap();
        assert_eq!(out.alignments, expect.alignments);
    }
}
