//! Seeded-bad fixture: slice indexing reachable from a wire-decode
//! entry point. Fed to the analyzer as
//! `crates/dsm/src/indexed_decode.rs`; must produce exactly one
//! `panic-surface` finding with the call chain `decode_msg -> header`.

fn decode_msg(buf: &[u8]) -> u8 {
    header(buf)
}

fn header(buf: &[u8]) -> u8 {
    buf[0]
}
