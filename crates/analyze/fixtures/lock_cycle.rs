//! Seeded-bad fixture: an AB-BA lock inversion in live protocol code.
//! Fed to the analyzer as `crates/dsm/src/lock_cycle.rs`; must produce
//! exactly one `lock-order` cycle finding.

fn writer(node: &mut Node) {
    node.lock(PAGE_LOCK);
    node.lock(LEASE_TABLE);
    node.unlock(LEASE_TABLE);
    node.unlock(PAGE_LOCK);
}

fn leaser(node: &mut Node) {
    node.lock(LEASE_TABLE);
    node.lock(PAGE_LOCK);
    node.unlock(PAGE_LOCK);
    node.unlock(LEASE_TABLE);
}
