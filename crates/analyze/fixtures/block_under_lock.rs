//! Seeded-bad fixture: a channel `recv` while a std `Mutex` guard is
//! live. Fed to the analyzer as `crates/serve/src/block_under_lock.rs`;
//! must produce exactly one `blocking-while-locked` finding.

impl Drain {
    fn drain(&self) {
        let stats = self.stats.lock();
        let job = self.rx.recv();
        stats.note(job);
    }
}
