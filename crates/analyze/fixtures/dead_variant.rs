//! Seeded-bad fixture: a wire enum variant that is encoded and decoded
//! but never handled. Fed to the analyzer as
//! `crates/dsm/src/dead_variant.rs`; must produce exactly one
//! `wire-exhaustiveness` finding (`Msg::Pong` has no handler arm).

enum Msg {
    Ping(u32),
    Pong { n: u32 },
}

fn encode_msg(m: &Msg, w: &mut Writer) {
    match m {
        Msg::Ping(n) => w.tag(0),
        Msg::Pong { n } => w.tag(1),
    }
}

fn decode_msg(tag: u8) -> Msg {
    match tag {
        0 => Msg::Ping(0),
        _ => Msg::Pong { n: 0 },
    }
}

fn handle(m: Msg) {
    match m {
        Msg::Ping(n) => reply(n),
        _ => {}
    }
}
