//! The intra-crate call graph and name resolution.
//!
//! Resolution is deliberately over-approximate — every analysis built
//! on it is a may-analysis, so losing an edge is the failure mode and
//! spurious edges only cost precision:
//!
//! * `name(…)` resolves to every same-crate fn named `name`, free fns
//!   preferred when any exist;
//! * `.name(…)` resolves to every same-crate *method* (has a `self`
//!   receiver) named `name` — no receiver types without a type system;
//! * `Qual::name(…)` resolves to fns named `name` owned by `Qual`
//!   (`Self` maps to the caller's owner); an unmatched *uppercase*
//!   qualifier is a foreign type (leaf), an unmatched lowercase one is
//!   a module path and falls back to name-only;
//! * macros, `drop(…)`, and unresolved names are std/vendor leaves.
//!
//! Every candidate must match the call site's **arity** — an in-crate
//! call always passes exactly the declared parameter count (a
//! UFCS-style `Qual::method(recv, …)` counts the receiver). Arity is
//! what keeps common names honest: the argless std `.lock()` cannot
//! resolve to the one-argument DSM `Node::lock`, and a channel's
//! `.send(env)` cannot resolve to the three-argument `Node::send`.

use crate::parse::{CallSite, Callee, SourceFile};
use std::collections::{HashMap, HashSet, VecDeque};

/// A fn's position in the model: (file index, fn index).
pub type FnId = (usize, usize);

/// Name-resolution tables over a set of parsed files.
pub struct CallGraph {
    /// crate → name → fn ids.
    by_name: HashMap<(String, String), Vec<FnId>>,
    /// crate → (owner, name) → fn ids.
    by_owner: HashMap<(String, String, String), Vec<FnId>>,
}

impl CallGraph {
    /// Builds the tables over `files`.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut by_name: HashMap<(String, String), Vec<FnId>> = HashMap::new();
        let mut by_owner: HashMap<(String, String, String), Vec<FnId>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let id = (fi, gi);
                by_name
                    .entry((file.crate_name.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
                if let Some(owner) = &f.owner {
                    by_owner
                        .entry((file.crate_name.clone(), owner.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        Self { by_name, by_owner }
    }

    /// Resolves a call site in `caller` (for `Self::` qualifiers) within
    /// `crate_name`. Returns every arity-compatible candidate; empty
    /// means a std/vendor leaf.
    pub fn resolve(
        &self,
        files: &[SourceFile],
        caller: FnId,
        crate_name: &str,
        call: &CallSite,
    ) -> Vec<FnId> {
        let key = |n: &str| (crate_name.to_string(), n.to_string());
        // `qualified` admits the UFCS form (`Type::method(recv, args…)`).
        let arity_ok = |&(fi, gi): &FnId, qualified: bool| {
            let f = &files[fi].fns[gi];
            f.params == call.args_n || (qualified && f.has_self && call.args_n == f.params + 1)
        };
        match &call.callee {
            Callee::Macro(_) => Vec::new(),
            Callee::Plain(n) if n == "drop" => Vec::new(), // std `mem::drop`
            Callee::Method(n) => self
                .by_name
                .get(&key(n))
                .into_iter()
                .flatten()
                .copied()
                .filter(|&(fi, gi)| files[fi].fns[gi].has_self)
                .filter(|id| arity_ok(id, false))
                .collect(),
            Callee::Plain(n) => {
                let all: Vec<FnId> = self
                    .by_name
                    .get(&key(n))
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(|id| arity_ok(id, false))
                    .collect();
                let free: Vec<FnId> = all
                    .iter()
                    .copied()
                    .filter(|&(fi, gi)| files[fi].fns[gi].owner.is_none())
                    .collect();
                if free.is_empty() {
                    all
                } else {
                    free
                }
            }
            Callee::Qualified(q, n) => {
                let owner = if q == "Self" {
                    files[caller.0].fns[caller.1].owner.clone()
                } else {
                    Some(q.clone())
                };
                if let Some(owner) = owner {
                    let owned: Vec<FnId> = self
                        .by_owner
                        .get(&(crate_name.to_string(), owner, n.clone()))
                        .into_iter()
                        .flatten()
                        .copied()
                        .filter(|id| arity_ok(id, true))
                        .collect();
                    if !owned.is_empty() {
                        return owned;
                    }
                }
                // An uppercase qualifier names a type; unmatched means a
                // foreign (std/vendor) impl — do not guess by name.
                if q.chars().next().is_some_and(char::is_uppercase) {
                    return Vec::new();
                }
                // Module-qualified (`codec::decode_msg`): name-only.
                self.by_name
                    .get(&key(n))
                    .into_iter()
                    .flatten()
                    .copied()
                    .filter(|id| arity_ok(id, true))
                    .collect()
            }
        }
    }
}

/// BFS over the call graph from `entries`, following only fns that
/// `admit` accepts. Returns each reached fn with its predecessor (for
/// call-chain reconstruction); entries map to themselves.
pub fn reachable(
    files: &[SourceFile],
    graph: &CallGraph,
    entries: &[FnId],
    admit: impl Fn(FnId) -> bool,
) -> HashMap<FnId, FnId> {
    let mut pred: HashMap<FnId, FnId> = HashMap::new();
    let mut queue: VecDeque<FnId> = VecDeque::new();
    for &e in entries {
        if admit(e) && !pred.contains_key(&e) {
            pred.insert(e, e);
            queue.push_back(e);
        }
    }
    let mut seen: HashSet<FnId> = pred.keys().copied().collect();
    while let Some(id) = queue.pop_front() {
        let file = &files[id.0];
        for call in &file.fns[id.1].calls {
            for next in graph.resolve(files, id, &file.crate_name, call) {
                if admit(next) && seen.insert(next) {
                    pred.insert(next, id);
                    queue.push_back(next);
                }
            }
        }
    }
    pred
}

/// Renders the call chain from an entry to `target` using `pred`.
pub fn chain(files: &[SourceFile], pred: &HashMap<FnId, FnId>, target: FnId) -> String {
    let mut names = Vec::new();
    let mut at = target;
    for _ in 0..64 {
        let f = &files[at.0].fns[at.1];
        match &f.owner {
            Some(o) => names.push(format!("{o}::{}", f.name)),
            None => names.push(f.name.clone()),
        }
        let Some(&p) = pred.get(&at) else { break };
        if p == at {
            break;
        }
        at = p;
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_file;
    use std::path::Path;

    fn files(src: &str) -> Vec<SourceFile> {
        vec![parse_file(
            Path::new("a.rs").to_path_buf(),
            "dsm",
            false,
            src,
        )]
    }

    fn site(callee: Callee, args_n: usize) -> CallSite {
        CallSite {
            at: 0,
            callee,
            args: String::new(),
            args_n,
        }
    }

    #[test]
    fn plain_prefers_free_fns() {
        let fs = files("fn go() {}\nimpl T { fn go(&self) {} }\nfn f() { go(); }\n");
        let g = CallGraph::build(&fs);
        let caller = (0, 2);
        let r = g.resolve(&fs, caller, "dsm", &site(Callee::Plain("go".into()), 0));
        assert_eq!(r, vec![(0, 0)]);
    }

    #[test]
    fn method_resolves_to_all_same_name_methods() {
        let fs = files("impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn go() {}\n");
        let g = CallGraph::build(&fs);
        let r = g.resolve(&fs, (0, 2), "dsm", &site(Callee::Method("go".into()), 0));
        assert_eq!(r.len(), 2, "free fns are not method candidates: {r:?}");
    }

    #[test]
    fn arity_filters_candidates() {
        let fs = files(
            "impl Node { fn lock(&self, id: u32) {} }\nimpl Chan { fn send(&self, a: u32, b: u32) {} }\nfn f() {}\n",
        );
        let g = CallGraph::build(&fs);
        // Argless std `.lock()` must not resolve to the DSM `lock(id)`.
        let r = g.resolve(&fs, (0, 2), "dsm", &site(Callee::Method("lock".into()), 0));
        assert!(r.is_empty(), "{r:?}");
        let r = g.resolve(&fs, (0, 2), "dsm", &site(Callee::Method("lock".into()), 1));
        assert_eq!(r.len(), 1);
        // 1-arg channel send must not resolve to the 2-arg method.
        let r = g.resolve(&fs, (0, 2), "dsm", &site(Callee::Method("send".into()), 1));
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn qualified_narrows_to_owner_and_self_maps_to_caller_owner() {
        let fs = files(
            "impl A { fn go(&self) {} fn f(&self) { Self::go(self); } }\nimpl B { fn go(&self) {} }\n",
        );
        let g = CallGraph::build(&fs);
        // UFCS form: the receiver counts as an argument.
        let r = g.resolve(
            &fs,
            (0, 1),
            "dsm",
            &site(Callee::Qualified("Self".into(), "go".into()), 1),
        );
        assert_eq!(r, vec![(0, 0)]);
        let r = g.resolve(
            &fs,
            (0, 1),
            "dsm",
            &site(Callee::Qualified("B".into(), "go".into()), 1),
        );
        assert_eq!(r, vec![(0, 2)]);
    }

    #[test]
    fn unmatched_uppercase_qualifier_is_a_foreign_leaf() {
        let fs = files("fn new() {}\nimpl C { fn new(x: u32) -> Self { C } }\nfn f() {}\n");
        let g = CallGraph::build(&fs);
        let r = g.resolve(
            &fs,
            (0, 2),
            "dsm",
            &site(Callee::Qualified("VecDeque".into(), "new".into()), 0),
        );
        assert!(
            r.is_empty(),
            "foreign `VecDeque::new` must not hit in-crate `new`: {r:?}"
        );
    }

    #[test]
    fn plain_drop_is_std() {
        let fs = files("impl T { fn drop(&mut self) {} }\nfn f() {}\n");
        let g = CallGraph::build(&fs);
        let r = g.resolve(&fs, (0, 1), "dsm", &site(Callee::Plain("drop".into()), 1));
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn reachability_and_chain() {
        let fs = files("fn a() { b(); }\nfn b() { c(); }\nfn c() {}\nfn lonely() {}\n");
        let g = CallGraph::build(&fs);
        let pred = reachable(&fs, &g, &[(0, 0)], |_| true);
        assert!(pred.contains_key(&(0, 2)));
        assert!(!pred.contains_key(&(0, 3)));
        assert_eq!(chain(&fs, &pred, (0, 2)), "a -> b -> c");
    }
}
