//! Wire exhaustiveness: no silently-dead protocol variants.
//!
//! Every wire-protocol enum variant and tag constant must be *complete*:
//! it can be produced (an encode site), recovered (a decode site), and
//! acted on (a handler match arm outside the codec). A variant missing
//! any leg is dead weight at best — and at worst a peer that emits it
//! talks into the void. Rust's `match` exhaustiveness only checks each
//! match in isolation; it cannot say "this variant is never encoded" or
//! "decoded but never handled", which is exactly the gap this analysis
//! closes.
//!
//! Classification is structural:
//! * an occurrence inside a fn whose name contains `encode` is an
//!   encode site; `decode`/`parse` a decode site;
//! * a *handler* is a match arm (`Enum::Variant … =>`, `|` alternation,
//!   or a guarded arm) in live code, in a fn that is neither
//!   codec-named nor owned by the enum itself (so `wire_size`-style
//!   self-matches don't count as handling);
//! * tag constants (`MSG_*`, `REPLY_*`, `TPT_*`, `REQ_*`, `RSP_*`)
//!   need an encode-fn use and a live decode match arm.

use crate::parse::SourceFile;
use crate::{Finding, Model};
use std::ops::Range;

/// The workspace wire surface: (crate, enum) pairs.
const WIRE_ENUMS: &[(&str, &str)] = &[
    ("dsm", "Msg"),
    ("dsm", "Reply"),
    ("serve", "Request"),
    ("serve", "Response"),
];

/// Tag-constant families: (crate, prefix).
const TAG_FAMILIES: &[(&str, &str)] = &[
    ("dsm", "MSG_"),
    ("dsm", "REPLY_"),
    ("dsm", "TPT_"),
    ("serve", "REQ_"),
    ("serve", "RSP_"),
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn skip_balanced(bytes: &[u8], mut i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    bytes.len()
}

/// Finds the `enum name { … }` item: (variant-list span, per-variant
/// (name, offset)).
fn enum_def(file: &SourceFile, name: &str) -> Option<Vec<(String, usize)>> {
    let code = &file.code;
    let bytes = code.as_bytes();
    for at in crate::parse::word_positions(code, "enum") {
        let mut i = skip_ws(bytes, at + 4);
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        if &code[start..i] != name {
            continue;
        }
        i = skip_ws(bytes, i);
        if bytes.get(i) == Some(&b'<') {
            let mut depth = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i = skip_ws(bytes, i);
        }
        if bytes.get(i) != Some(&b'{') {
            continue;
        }
        let body: Range<usize> = i..skip_balanced(bytes, i, b'{', b'}');
        // Variants at depth 1.
        let mut variants = Vec::new();
        let mut j = body.start + 1;
        while j < body.end.saturating_sub(1) {
            j = skip_ws(bytes, j);
            match bytes.get(j) {
                Some(b'#') => {
                    // Attribute: `#[…]`.
                    let k = skip_ws(bytes, j + 1);
                    if bytes.get(k) == Some(&b'[') {
                        j = skip_balanced(bytes, k, b'[', b']');
                    } else {
                        j += 1;
                    }
                }
                Some(&b) if is_ident(b) => {
                    let vs = j;
                    while j < body.end && is_ident(bytes[j]) {
                        j += 1;
                    }
                    variants.push((code[vs..j].to_string(), vs));
                    // Skip the payload / discriminant to the `,`.
                    loop {
                        j = skip_ws(bytes, j);
                        match bytes.get(j) {
                            Some(b'(') => j = skip_balanced(bytes, j, b'(', b')'),
                            Some(b'{') => j = skip_balanced(bytes, j, b'{', b'}'),
                            Some(b',') => {
                                j += 1;
                                break;
                            }
                            Some(b'}') | None => break,
                            _ => j += 1,
                        }
                    }
                }
                _ => j += 1,
            }
        }
        return Some(variants);
    }
    None
}

/// Does the text after an occurrence (variant name end, payload
/// skipped) look like a match arm?
fn is_match_arm(bytes: &[u8], mut i: usize) -> bool {
    i = skip_ws(bytes, i);
    // Optional payload pattern.
    match bytes.get(i) {
        Some(b'(') => i = skip_ws(bytes, skip_balanced(bytes, i, b'(', b')')),
        Some(b'{') => i = skip_ws(bytes, skip_balanced(bytes, i, b'{', b'}')),
        _ => {}
    }
    match bytes.get(i) {
        Some(b'=') => bytes.get(i + 1) == Some(&b'>'),
        // `A | B =>` alternation: being one alternative of a pattern.
        Some(b'|') => bytes.get(i + 1) != Some(&b'|'),
        // Guarded arm: `… if cond =>` — accept if `=>` lands before a
        // statement boundary.
        Some(&b'i')
            if bytes.get(i + 1) == Some(&b'f') && !is_ident(*bytes.get(i + 2).unwrap_or(&b' ')) =>
        {
            let mut j = i + 2;
            while j + 1 < bytes.len() && bytes[j] != b';' && bytes[j] != b'{' {
                if bytes[j] == b'=' && bytes[j + 1] == b'>' {
                    return true;
                }
                j += 1;
            }
            false
        }
        _ => false,
    }
}

/// One classified occurrence of a variant or tag constant.
struct Occurrence {
    encode: bool,
    decode: bool,
    handler: bool,
}

/// Classifies every qualified occurrence (`Enum::Variant` / `Self::Variant`
/// inside `impl Enum`) of `variant` across the crate's files.
fn variant_occurrences(
    model: &Model,
    crate_name: &str,
    enum_name: &str,
    variant: &str,
) -> Vec<Occurrence> {
    let mut out = Vec::new();
    for file in &model.files {
        if file.crate_name != crate_name {
            continue;
        }
        let bytes = file.code.as_bytes();
        for at in crate::parse::word_positions(&file.code, variant) {
            // Require a `Qual::` prefix.
            let mut p = at;
            while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                p -= 1;
            }
            if p < 2 || bytes[p - 1] != b':' || bytes[p - 2] != b':' {
                continue;
            }
            let mut q = p - 2;
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            let mut qs = q;
            while qs > 0 && is_ident(bytes[qs - 1]) {
                qs -= 1;
            }
            let qual = &file.code[qs..q];
            let Some(fi) = file.fn_at(at) else { continue };
            let f = &file.fns[fi];
            let owner_is_enum = f.owner.as_deref() == Some(enum_name);
            if !(qual == enum_name || (qual == "Self" && owner_is_enum)) {
                continue;
            }
            let live = !file.is_test_file && !f.cfg_test;
            let fname = f.name.as_str();
            let codec_named =
                fname.contains("encode") || fname.contains("decode") || fname.contains("parse");
            let arm = is_match_arm(bytes, at + variant.len());
            out.push(Occurrence {
                encode: live && fname.contains("encode"),
                decode: live && (fname.contains("decode") || fname.contains("parse")),
                handler: live && arm && !codec_named && !owner_is_enum,
            });
        }
    }
    out
}

/// Checks one wire enum; public so fixture tests can drive it directly.
pub fn check_enum(model: &Model, crate_name: &str, enum_name: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some((file, variants)) = model.files.iter().find_map(|f| {
        (f.crate_name == crate_name && !f.is_test_file)
            .then(|| enum_def(f, enum_name).map(|v| (f, v)))
            .flatten()
    }) else {
        return out;
    };
    for (variant, at) in variants {
        let occ = variant_occurrences(model, crate_name, enum_name, &variant);
        let mut missing = Vec::new();
        if !occ.iter().any(|o| o.encode) {
            missing.push("an encode site");
        }
        if !occ.iter().any(|o| o.decode) {
            missing.push("a decode site");
        }
        if !occ.iter().any(|o| o.handler) {
            missing.push("a handler match arm");
        }
        if !missing.is_empty() {
            out.push(Finding {
                file: file.path.clone(),
                line: file.line_of(at),
                analysis: "wire-exhaustiveness",
                message: format!(
                    "`{enum_name}::{variant}` is missing {} — dead wire variant",
                    missing.join(", ")
                ),
            });
        }
    }
    out
}

/// Checks one tag-constant family; public for fixture tests.
pub fn check_tag_family(model: &Model, crate_name: &str, prefix: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    // Collect definitions: `const PREFIX…` in live src.
    let mut tags: Vec<(String, &SourceFile, usize)> = Vec::new();
    for file in &model.files {
        if file.crate_name != crate_name || file.is_test_file {
            continue;
        }
        let bytes = file.code.as_bytes();
        for at in crate::parse::word_positions(&file.code, "const") {
            let i = skip_ws(bytes, at + 5);
            let mut j = i;
            while j < bytes.len() && is_ident(bytes[j]) {
                j += 1;
            }
            let name = &file.code[i..j];
            if name.starts_with(prefix) && name.len() > prefix.len() {
                tags.push((name.to_string(), file, i));
            }
        }
    }
    for (tag, def_file, def_at) in tags {
        let mut encode = false;
        let mut arm = false;
        for file in &model.files {
            if file.crate_name != crate_name {
                continue;
            }
            let bytes = file.code.as_bytes();
            for at in crate::parse::word_positions(&file.code, &tag) {
                // Skip the definition itself (preceded by `const`).
                let p = at.saturating_sub(1);
                let before = &file.code[..p.min(file.code.len())];
                if before.trim_end().ends_with("const") {
                    continue;
                }
                let Some(fi) = file.fn_at(at) else { continue };
                let f = &file.fns[fi];
                if file.is_test_file || f.cfg_test {
                    continue;
                }
                if f.name.contains("encode") {
                    encode = true;
                }
                if is_match_arm(bytes, at + tag.len()) {
                    arm = true;
                }
            }
        }
        let mut missing = Vec::new();
        if !encode {
            missing.push("an encode-fn use");
        }
        if !arm {
            missing.push("a decode match arm");
        }
        if !missing.is_empty() {
            out.push(Finding {
                file: def_file.path.clone(),
                line: def_file.line_of(def_at),
                analysis: "wire-exhaustiveness",
                message: format!(
                    "tag `{tag}` is missing {} — dead wire tag",
                    missing.join(", ")
                ),
            });
        }
    }
    out
}

/// Findings over the workspace wire surface.
pub fn findings(model: &Model) -> Vec<Finding> {
    let mut out = Vec::new();
    for (crate_name, enum_name) in WIRE_ENUMS {
        out.extend(check_enum(model, crate_name, enum_name));
    }
    for (crate_name, prefix) in TAG_FAMILIES {
        out.extend(check_tag_family(model, crate_name, prefix));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_of;

    const COMPLETE: &str = "enum Msg {\n    Ping(u32),\n    Pong { n: u32 },\n}\n\
        fn encode_msg(m: &Msg) {\n    match m {\n        Msg::Ping(n) => {}\n        \
        Msg::Pong { n } => {}\n    }\n}\n\
        fn decode_msg(tag: u8) -> Msg {\n    match tag {\n        0 => Msg::Ping(0),\n        \
        _ => Msg::Pong { n: 0 },\n    }\n}\n\
        fn handle(m: Msg) {\n    match m {\n        Msg::Ping(n) => {}\n        \
        Msg::Pong { .. } => {}\n    }\n}\n";

    #[test]
    fn complete_enum_is_clean() {
        let m = model_of("crates/dsm/src/x.rs", "dsm", COMPLETE);
        assert!(check_enum(&m, "dsm", "Msg").is_empty());
    }

    #[test]
    fn variant_without_handler_is_flagged() {
        let src = COMPLETE.replace("Msg::Pong { .. } => {}", "_ => {}");
        let m = model_of("crates/dsm/src/x.rs", "dsm", &src);
        let f = check_enum(&m, "dsm", "Msg");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Pong"), "{}", f[0].message);
        assert!(f[0].message.contains("handler"), "{}", f[0].message);
    }

    #[test]
    fn variant_without_encode_site_is_flagged() {
        let src = COMPLETE.replace("Msg::Pong { n } => {}", "_ => {}");
        let m = model_of("crates/dsm/src/x.rs", "dsm", &src);
        let f = check_enum(&m, "dsm", "Msg");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("encode site"), "{}", f[0].message);
    }

    #[test]
    fn self_matches_in_the_enums_own_impl_are_not_handlers() {
        let src = format!(
            "{COMPLETE}impl Msg {{\n    fn wire_size(&self) -> usize {{\n        match self {{\n            \
             Msg::Ping(_) => 4,\n            Msg::Pong {{ .. }} => 4,\n        }}\n    }}\n}}\n"
        );
        let without_handler = src.replace(
            "fn handle(m: Msg) {\n    match m {\n        Msg::Ping(n) => {}\n        \
             Msg::Pong { .. } => {}\n    }\n}\n",
            "",
        );
        let m = model_of("crates/dsm/src/x.rs", "dsm", &without_handler);
        let f = check_enum(&m, "dsm", "Msg");
        assert_eq!(
            f.len(),
            2,
            "wire_size arms must not count as handlers: {f:?}"
        );
    }

    #[test]
    fn alternation_and_guards_count_as_arms() {
        let src = COMPLETE.replace(
            "Msg::Ping(n) => {}\n        Msg::Pong { .. } => {}",
            "Msg::Ping(_) | Msg::Pong { .. } if true => {}",
        );
        let m = model_of("crates/dsm/src/x.rs", "dsm", &src);
        assert!(check_enum(&m, "dsm", "Msg").is_empty());
    }

    #[test]
    fn tag_family_checks_encode_use_and_arm() {
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 2;\n\
            fn encode_x(w: &mut W) { w.u8(TAG_A); w.u8(TAG_B); }\n\
            fn decode_x(t: u8) {\n    match t {\n        TAG_A => {}\n        _ => {}\n    }\n}\n";
        let m = model_of("crates/dsm/src/x.rs", "dsm", src);
        let f = check_tag_family(&m, "dsm", "TAG_");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("TAG_B"), "{}", f[0].message);
        assert!(f[0].message.contains("match arm"), "{}", f[0].message);
    }

    #[test]
    fn test_only_usage_does_not_satisfy_the_contract() {
        let src = "const TAG_A: u8 = 1;\n\
            #[cfg(test)]\nmod tests {\n    fn encode_t(w: &mut W) { w.u8(TAG_A); }\n    \
            fn t(t: u8) { match t { TAG_A => {} _ => {} } }\n}\n";
        let m = model_of("crates/dsm/src/x.rs", "dsm", src);
        let f = check_tag_family(&m, "dsm", "TAG_");
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
