//! Structural whole-workspace static analysis for GenomeDSM.
//!
//! `genomedsm-lint` polices token-level hygiene; this crate goes one
//! layer up: a brace-aware, item-aware parse ([`parse`]) of every
//! protocol crate, an intra-crate call graph ([`callgraph`]), and four
//! analyses that prove properties over *all* source — including paths
//! no test schedule has visited:
//!
//! * [`lockorder`] — static may-hold-while-acquiring graph over every
//!   DSM lock site, cycle detection, and the superset cross-check
//!   against the runtime `dsm::lock_order` edge dump;
//! * [`blocking`] — calls that can block (`recv`, `join`, `wait`, …)
//!   reachable while a std `Mutex` guard is held;
//! * [`wire`] — every `Msg`/`Reply`/`Request`/`Response` variant and
//!   `TPT_*`/`REQ_*`/`RSP_*` tag must have an encode site, a decode
//!   site, and a handler match arm (no silently-dead variants);
//! * [`panics`] — indexing/`panic!`/`assert!`/`unwrap` reachable from
//!   the protocol decode entry points, reported with the call chain.
//!
//! Run it with `cargo run -p genomedsm-analyze` (CI runs it in the
//! `analyze` job). Like the linter there is **no allowlist**: the
//! workspace must be clean, and seeded-bad fixtures under `fixtures/`
//! prove each analysis actually fires.

#![warn(missing_docs)]

pub mod blocking;
pub mod callgraph;
pub mod lockorder;
pub mod panics;
pub mod parse;
pub mod wire;

use parse::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates the analyses cover (`src/` and `tests/`).
pub const SCOPE_CRATES: &[&str] = &["dsm", "strategies", "batch", "serve"];

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the finding is in (workspace-relative).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Stable analysis slug (`lock-order`, `blocking-while-locked`,
    /// `wire-exhaustiveness`, `panic-surface`, `lock-order-crosscheck`).
    pub analysis: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.analysis,
            self.message
        )
    }
}

/// The parsed model of every in-scope source file.
pub struct Model {
    /// All parsed files, in deterministic (sorted-path) order.
    pub files: Vec<SourceFile>,
    /// The name-resolution tables over `files`.
    pub graph: callgraph::CallGraph,
}

impl Model {
    /// Parses `sources` (workspace-relative path, crate name, text)
    /// into a model. Test context is inferred from the path.
    pub fn from_sources(sources: Vec<(PathBuf, String, String)>) -> Self {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .map(|(path, crate_name, text)| {
                let is_test = path
                    .components()
                    .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches");
                parse::parse_file(path, &crate_name, is_test, &text)
            })
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        let graph = callgraph::CallGraph::build(&files);
        Self { files, graph }
    }

    /// Walks the workspace at `root` and parses every in-scope file:
    /// `src/` and `tests/` of each [`SCOPE_CRATES`] member, plus
    /// `crates/analyze/tests/` (its cross-check harness contains DSM
    /// lock sites the runtime graph will witness).
    ///
    /// # Errors
    /// Propagates I/O errors from walking or reading the tree.
    pub fn from_workspace(root: &Path) -> std::io::Result<Self> {
        let mut sources = Vec::new();
        let mut dirs: Vec<(PathBuf, String)> = Vec::new();
        for name in SCOPE_CRATES {
            let base = root.join("crates").join(name);
            dirs.push((base.join("src"), (*name).to_string()));
            dirs.push((base.join("tests"), (*name).to_string()));
        }
        dirs.push((root.join("crates/analyze/tests"), "analyze".to_string()));
        for (dir, crate_name) in dirs {
            if !dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            rust_files(&dir, &mut files)?;
            for file in files {
                let text = std::fs::read_to_string(&file)?;
                let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
                sources.push((rel, crate_name.clone(), text));
            }
        }
        Ok(Self::from_sources(sources))
    }

    /// Runs every analysis and returns the sorted findings.
    pub fn analyze(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        findings.extend(lockorder::findings(self));
        findings.extend(blocking::findings(self));
        findings.extend(wire::findings(self));
        findings.extend(panics::findings(self));
        findings.sort_by(|a, b| (&a.file, a.line, a.analysis).cmp(&(&b.file, b.line, b.analysis)));
        findings
    }
}

/// Recursively collects `.rs` files under `dir` (sorted for determinism).
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Convenience for fixture tests: parse one file as the `src/` of a
/// pseudo-crate named `crate_name` and return the model.
pub fn model_of(path: &str, crate_name: &str, text: &str) -> Model {
    Model::from_sources(vec![(
        PathBuf::from(path),
        crate_name.to_string(),
        text.to_string(),
    )])
}
