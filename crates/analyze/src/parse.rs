//! The structural parse: items, fn bodies, and call sites.
//!
//! Built on `genomedsm_lint::lexer::scan`, which blanks comments and
//! literal interiors while preserving byte offsets — so everything here
//! operates on *masked* source where every remaining byte is code. On
//! top of that surface this module recovers the structure the analyses
//! need: `fn` items with their body spans and owning `impl`/`trait`
//! type, `#[cfg(test)]` attribution, call sites (plain, method,
//! qualified, macro — with turbofish), DSM lock/unlock events (a
//! `.lock(arg)` call with an argument is the DSM primitive; the argless
//! `.lock()` is a std `Mutex`), and syntactic indexing sites.
//!
//! The parse is deliberately not a full grammar: brace/paren/bracket
//! balancing over masked code is exact for the constructs above, and
//! every consumer is an over-approximating analysis that tolerates the
//! places (macro bodies, const generics) where token-level structure is
//! all we have.

use genomedsm_lint::lexer::scan;
use genomedsm_lint::rules::test_spans;
use std::ops::Range;
use std::path::PathBuf;

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `name(...)` — a free function in the caller's scope.
    Plain(String),
    /// `.name(...)` — a method on some receiver.
    Method(String),
    /// `Qual::name(...)` — the last two path segments, generics stripped.
    Qualified(String, String),
    /// `name!(...)` — a macro invocation.
    Macro(String),
}

impl Callee {
    /// The bare callee name (last path segment / macro name).
    pub fn name(&self) -> &str {
        match self {
            Callee::Plain(n) | Callee::Method(n) | Callee::Macro(n) => n,
            Callee::Qualified(_, n) => n,
        }
    }
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name in the masked file.
    pub at: usize,
    /// What is being called.
    pub callee: Callee,
    /// Argument text (whitespace-stripped) — captured only for the
    /// names the analyses inspect (`lock`, `unlock`, `drop`, `join`,
    /// the condvar `wait` family); empty otherwise.
    pub args: String,
    /// Number of top-level arguments at the call site (closure pipes
    /// skipped). Name resolution filters candidates by arity — an
    /// in-crate call always passes exactly the declared parameters.
    pub args_n: usize,
}

/// A DSM lock-primitive event (`.lock(arg)` / `.unlock(arg)`).
#[derive(Debug, Clone)]
pub struct LockEvent {
    /// Byte offset of the `lock`/`unlock` word.
    pub at: usize,
    /// `true` for `lock`, `false` for `unlock`.
    pub acquire: bool,
    /// Normalized (whitespace-stripped) argument text — the lock's
    /// static identity.
    pub identity: String,
}

/// One `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// Owning `impl`/`trait` type name, if inside one.
    pub owner: Option<String>,
    /// Inside a `#[cfg(test)]` item.
    pub cfg_test: bool,
    /// Number of declared parameters, `self` excluded.
    pub params: usize,
    /// The first parameter is a `self` receiver.
    pub has_self: bool,
    /// Span from the `fn` keyword to the body's `{` (or the `;`).
    pub sig: Range<usize>,
    /// Body span including braces; `None` for bodyless trait methods.
    pub body: Option<Range<usize>>,
    /// Call sites attributed to this fn (innermost-body attribution).
    pub calls: Vec<CallSite>,
    /// DSM lock/unlock events in this fn.
    pub locks: Vec<LockEvent>,
    /// Byte offsets of syntactic indexing (`expr[`).
    pub indexing: Vec<usize>,
}

impl FnItem {
    /// The signature declares a `MutexGuard` return — callers treat a
    /// call to this fn like an argless `.lock()`.
    pub fn returns_guard(&self, code: &str) -> bool {
        code.get(self.sig.clone())
            .is_some_and(|s| s.contains("MutexGuard"))
    }
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root.
    pub path: PathBuf,
    /// Short crate name (`dsm`, `serve`, …) the file belongs to.
    pub crate_name: String,
    /// Lives under a `tests/` directory (integration-test context).
    pub is_test_file: bool,
    /// Masked source (comments/literals blanked).
    pub code: String,
    /// Byte offsets of line starts, for offset→line conversion.
    line_starts: Vec<usize>,
    /// The fn items, ordered by signature start.
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// 1-based line of byte offset `at`.
    pub fn line_of(&self, at: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= at)
    }

    /// Index of the innermost fn whose body contains `at`.
    pub fn fn_at(&self, at: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if let Some(body) = &f.body {
                if body.contains(&at)
                    && best.is_none_or(|b| {
                        self.fns[b]
                            .body
                            .as_ref()
                            .is_some_and(|bb| bb.start < body.start)
                    })
                {
                    best = Some(i);
                }
            }
        }
        best
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Skips a balanced `open`…`close` group starting at `i` (which must
/// point at `open`); returns the offset just past the closing delimiter
/// (or `len` if unterminated).
fn skip_balanced(bytes: &[u8], mut i: usize, open: u8, close: u8) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == open {
            depth += 1;
        } else if b == close {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    bytes.len()
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// The identifier ending just before `end` (exclusive), if any.
fn ident_ending_at(bytes: &[u8], end: usize) -> Option<(usize, String)> {
    let mut start = end;
    while start > 0 && is_ident(bytes[start - 1]) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        return None;
    }
    std::str::from_utf8(&bytes[start..end])
        .ok()
        .map(|s| (start, s.to_string()))
}

/// Whole-word occurrences of `word` (ASCII identifier bounds).
pub(crate) fn word_positions(code: &str, word: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while let Some(rel) = code.get(i..).and_then(|s| s.find(word)) {
        let at = i + rel;
        let end = at + word.len();
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
        i = at + word.len().max(1);
    }
    out
}

/// `impl`/`trait` blocks: (type name, body span).
fn owner_spans(code: &str) -> Vec<(String, Range<usize>)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for kw in ["impl", "trait"] {
        for at in word_positions(code, kw) {
            // Header runs to the block's `{`; generics may nest.
            let mut i = at + kw.len();
            let mut angle = 0usize;
            while i < bytes.len() {
                match bytes[i] {
                    b'<' => angle += 1,
                    b'>' => angle = angle.saturating_sub(1),
                    b'{' if angle == 0 => break,
                    b'(' => i = skip_balanced(bytes, i, b'(', b')').saturating_sub(1),
                    b';' if angle == 0 => break, // e.g. `impl Trait` in a type position
                    _ => {}
                }
                i += 1;
            }
            if i >= bytes.len() || bytes[i] != b'{' {
                continue;
            }
            let Some(header) = code.get(at + kw.len()..i) else {
                continue;
            };
            let name = owner_name(header, kw == "trait");
            let end = skip_balanced(bytes, i, b'{', b'}');
            if let Some(name) = name {
                out.push((name, i..end));
            }
        }
    }
    out
}

/// Extracts the implemented type (or trait name) from an impl/trait
/// header: strips leading generics, takes the part after ` for ` when
/// present, then the last path segment with generics removed.
fn owner_name(header: &str, is_trait: bool) -> Option<String> {
    let mut h = header.trim();
    if let Some(rest) = h.strip_prefix('<') {
        // `impl<T: Bound> …` — drop the parameter list.
        let mut depth = 1usize;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        h = rest.get(cut..).unwrap_or("").trim();
    }
    if is_trait {
        let name: String = h
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        return (!name.is_empty()).then_some(name);
    }
    if let Some(pos) = h.find(" for ") {
        h = h.get(pos + 5..).unwrap_or("").trim();
    }
    // Last path segment, generics stripped.
    let h = h.split('<').next().unwrap_or(h).trim();
    let seg = h.rsplit("::").next().unwrap_or(h);
    let name: String = seg
        .trim_start_matches(['&', ' '])
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Splits a paren group starting at `open` into top-level segments.
/// Closure parameter pipes (`|a, b|` directly after `(`/`,`/`move`) are
/// skipped so their commas don't count as argument separators.
fn paren_segments(code: &str, open: usize) -> Vec<String> {
    let bytes = code.as_bytes();
    let end = skip_balanced(bytes, open, b'(', b')');
    let inner_start = open + 1;
    let inner_end = end.saturating_sub(1).max(inner_start);
    let mut segs = Vec::new();
    let mut depth = 0usize;
    let mut seg_start = inner_start;
    let mut i = inner_start;
    let mut arg_head = true; // at the start of an argument
    while i < inner_end {
        match bytes[i] {
            b'(' | b'[' | b'{' => {
                depth += 1;
                arg_head = false;
            }
            b')' | b']' | b'}' => depth = depth.saturating_sub(1),
            b',' if depth == 0 => {
                segs.push(code[seg_start..i].trim().to_string());
                seg_start = i + 1;
                arg_head = true;
            }
            b'|' if depth == 0 => {
                // Closure-open only at an argument head (possibly after
                // `move`); otherwise it's a bitwise/boolean operator.
                let is_closure = arg_head
                    || code[seg_start..i].trim() == "move"
                    || code[seg_start..i].trim().is_empty();
                if is_closure {
                    let mut j = i + 1;
                    let mut d2 = 0usize;
                    while j < inner_end {
                        match bytes[j] {
                            b'(' | b'[' | b'{' => d2 += 1,
                            b')' | b']' | b'}' => d2 = d2.saturating_sub(1),
                            b'|' if d2 == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    i = j;
                }
                arg_head = false;
            }
            b if !b.is_ascii_whitespace() => arg_head = false,
            _ => {}
        }
        i += 1;
    }
    let last = code[seg_start..inner_end].trim();
    if !last.is_empty() {
        segs.push(last.to_string());
    }
    segs.retain(|s| !s.is_empty());
    segs
}

/// Is this parameter segment a `self` receiver (`self`, `&self`,
/// `&mut self`, `&'a self`, `mut self`, `self: …`)?
fn is_self_param(seg: &str) -> bool {
    let mut s = seg.trim().trim_start_matches('&').trim_start();
    if let Some(rest) = s.strip_prefix('\'') {
        s = rest.split_whitespace().next().map_or("", |_| {
            rest.find(char::is_whitespace)
                .map_or("", |i| rest[i..].trim_start())
        });
    }
    let s = s.strip_prefix("mut ").unwrap_or(s).trim_start();
    s == "self" || s.starts_with("self:") || s.starts_with("self ")
}

/// Keywords that look like `word (` but are not calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "unsafe", "where", "impl", "dyn",
];

/// Names whose argument text the analyses need.
const CAPTURE_ARGS: &[&str] = &[
    "lock",
    "unlock",
    "drop",
    "join",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// Parses one file. `crate_name` is the short crate directory name;
/// `is_test_file` marks integration-test context (everything cfg-test).
pub fn parse_file(path: PathBuf, crate_name: &str, is_test_file: bool, src: &str) -> SourceFile {
    let scanned = scan(src);
    let code = scanned.code;
    let bytes = code.as_bytes();
    let n = bytes.len();

    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }

    let owners = owner_spans(&code);
    let tests = test_spans(&code);
    let in_tests = |at: usize| tests.iter().any(|s| s.contains(&at));

    // Collect fn items.
    let mut fns: Vec<FnItem> = Vec::new();
    for at in word_positions(&code, "fn") {
        let mut i = skip_ws(bytes, at + 2);
        let Some(name_start) =
            (i < n && is_ident(bytes[i]) && !bytes[i].is_ascii_digit()).then_some(i)
        else {
            continue; // `fn(` pointer type
        };
        while i < n && is_ident(bytes[i]) {
            i += 1;
        }
        let Ok(name) = std::str::from_utf8(&bytes[name_start..i]) else {
            continue;
        };
        let name = name.to_string();
        i = skip_ws(bytes, i);
        // Generic parameter list.
        if i < n && bytes[i] == b'<' {
            let mut depth = 0usize;
            while i < n {
                match bytes[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
            i = skip_ws(bytes, i);
        }
        if i >= n || bytes[i] != b'(' {
            continue;
        }
        let param_segs = paren_segments(&code, i);
        let has_self = param_segs.first().is_some_and(|s| is_self_param(s));
        let params = param_segs.len() - usize::from(has_self);
        i = skip_balanced(bytes, i, b'(', b')');
        // Return type / where clause up to the body `{` or a `;`.
        let mut j = i;
        while j < n {
            match bytes[j] {
                b'{' => break,
                b';' => break,
                b'(' => j = skip_balanced(bytes, j, b'(', b')').saturating_sub(1),
                b'[' => j = skip_balanced(bytes, j, b'[', b']').saturating_sub(1),
                _ => {}
            }
            j += 1;
        }
        let body = (j < n && bytes[j] == b'{').then(|| j..skip_balanced(bytes, j, b'{', b'}'));
        let owner = owners
            .iter()
            .filter(|(_, span)| span.contains(&at))
            .max_by_key(|(_, span)| span.start)
            .map(|(name, _)| name.clone());
        fns.push(FnItem {
            name,
            owner,
            cfg_test: is_test_file || in_tests(at),
            params,
            has_self,
            sig: at..j,
            body,
            calls: Vec::new(),
            locks: Vec::new(),
            indexing: Vec::new(),
        });
    }
    fns.sort_by_key(|f| f.sig.start);

    let mut file = SourceFile {
        path,
        crate_name: crate_name.to_string(),
        is_test_file,
        code,
        line_starts,
        fns,
    };

    // Whole-file event scan, attributed to the innermost containing fn.
    let code = file.code.clone();
    let bytes = code.as_bytes();
    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        if is_ident(b) && (i == 0 || !is_ident(bytes[i - 1])) && !b.is_ascii_digit() {
            let start = i;
            while i < n && is_ident(bytes[i]) {
                i += 1;
            }
            let Ok(word) = std::str::from_utf8(&bytes[start..i]) else {
                continue;
            };
            if NON_CALL_KEYWORDS.contains(&word) {
                continue;
            }
            let word = word.to_string();
            let mut k = skip_ws(bytes, i);
            // Turbofish `name::<…>(`.
            if bytes.get(k) == Some(&b':') && bytes.get(k + 1) == Some(&b':') {
                let t = skip_ws(bytes, k + 2);
                if bytes.get(t) == Some(&b'<') {
                    let mut depth = 0usize;
                    let mut m = t;
                    while m < n {
                        match bytes[m] {
                            b'<' => depth += 1,
                            b'>' => {
                                depth -= 1;
                                if depth == 0 {
                                    m += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        m += 1;
                    }
                    k = skip_ws(bytes, m);
                } else {
                    // `name::next` — not a call of `name`; keep scanning
                    // (the final segment will be picked up on its own).
                    continue;
                }
            }
            let is_macro = bytes.get(k) == Some(&b'!');
            if is_macro {
                k = skip_ws(bytes, k + 1);
            }
            if bytes.get(k).copied() != Some(b'(')
                && !(is_macro && matches!(bytes.get(k).copied(), Some(b'[') | Some(b'{')))
            {
                continue;
            }
            // Argument capture for the names the analyses inspect.
            let args = if CAPTURE_ARGS.contains(&word.as_str()) && bytes.get(k) == Some(&b'(') {
                let end = skip_balanced(bytes, k, b'(', b')');
                code.get(k + 1..end.saturating_sub(1))
                    .unwrap_or("")
                    .split_whitespace()
                    .collect::<String>()
            } else {
                String::new()
            };
            let args_n = if !is_macro && bytes.get(k) == Some(&b'(') {
                paren_segments(&code, k).len()
            } else {
                0
            };
            // Qualifier: look immediately before the name.
            let callee = if is_macro {
                Callee::Macro(word)
            } else {
                let mut p = start;
                while p > 0 && bytes[p - 1].is_ascii_whitespace() {
                    p -= 1;
                }
                if p > 0 && bytes[p - 1] == b'.' {
                    Callee::Method(word)
                } else if p >= 2 && bytes[p - 1] == b':' && bytes[p - 2] == b':' {
                    let mut q = p - 2;
                    // Skip a generic arg list `<…>` between path segments.
                    while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                        q -= 1;
                    }
                    if q > 0 && bytes[q - 1] == b'>' {
                        let mut depth = 0usize;
                        while q > 0 {
                            q -= 1;
                            match bytes[q] {
                                b'>' => depth += 1,
                                b'<' => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                    match ident_ending_at(bytes, q) {
                        Some((_, qual)) => Callee::Qualified(qual, word),
                        None => Callee::Plain(word),
                    }
                } else {
                    Callee::Plain(word)
                }
            };
            // DSM lock primitives: `.lock(arg)` / `.unlock(arg)` with a
            // non-empty argument (the argless form is a std Mutex).
            let lock_event = match &callee {
                Callee::Method(m) if (m == "lock" || m == "unlock") && !args.is_empty() => {
                    Some(LockEvent {
                        at: start,
                        acquire: m == "lock",
                        identity: args.clone(),
                    })
                }
                _ => None,
            };
            if let Some(fi) = file.fn_at(start) {
                if let Some(ev) = lock_event {
                    file.fns[fi].locks.push(ev);
                }
                file.fns[fi].calls.push(CallSite {
                    at: start,
                    callee,
                    args,
                    args_n,
                });
            }
            continue;
        }
        // Syntactic indexing: `[` directly after an expression tail.
        if b == b'['
            && i > 0
            && (is_ident(bytes[i - 1]) || bytes[i - 1] == b')' || bytes[i - 1] == b']')
        {
            if let Some(fi) = file.fn_at(i) {
                file.fns[fi].indexing.push(i);
            }
        }
        i += 1;
    }

    file
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn parse(src: &str) -> SourceFile {
        parse_file(Path::new("x.rs").to_path_buf(), "dsm", false, src)
    }

    #[test]
    fn fn_items_with_owner_and_body() {
        let f = parse(
            "impl Node {\n    fn lockit(&self) { self.inner.go(); }\n}\nfn free() {}\n\
             trait T { fn decl(&self); }\n",
        );
        let names: Vec<_> = f
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("lockit", Some("Node")),
                ("free", None),
                ("decl", Some("T"))
            ]
        );
        assert!(f.fns[0].body.is_some());
        assert!(f.fns[2].body.is_none());
    }

    #[test]
    fn impl_trait_for_type_owner_is_the_type() {
        let f = parse("impl<T: Ord> fmt::Display for Wrapper<T> { fn fmt(&self) {} }\n");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn call_sites_classified() {
        let f = parse(
            "fn f(node: &N) {\n    helper();\n    node.lock(PAGE);\n    N::make(1);\n    \
             go::<u32>(2);\n    self.array::<4>();\n    vec![1, 2];\n    node.unlock(PAGE);\n}\n",
        );
        let calls: Vec<_> = f.fns[0].calls.iter().map(|c| c.callee.clone()).collect();
        assert!(calls.contains(&Callee::Plain("helper".into())));
        assert!(calls.contains(&Callee::Method("lock".into())));
        assert!(calls.contains(&Callee::Qualified("N".into(), "make".into())));
        assert!(calls.contains(&Callee::Plain("go".into())));
        assert!(calls.contains(&Callee::Method("array".into())));
        assert!(calls.contains(&Callee::Macro("vec".into())));
        assert_eq!(f.fns[0].locks.len(), 2);
        assert!(f.fns[0].locks[0].acquire);
        assert_eq!(f.fns[0].locks[0].identity, "PAGE");
        assert!(!f.fns[0].locks[1].acquire);
    }

    #[test]
    fn std_mutex_lock_is_not_a_dsm_lock() {
        let f = parse("fn f(&self) { let g = self.inner.lock(); g.touch(); }\n");
        assert!(f.fns[0].locks.is_empty());
        assert!(f.fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("lock".into()) && c.args.is_empty()));
    }

    #[test]
    fn indexing_detected_but_not_attributes_or_slices() {
        let f = parse(
            "#[derive(Debug)]\nfn f(v: &[u8]) -> u8 {\n    let a = v[0];\n    let b: [u8; 4] = \
             [0; 4];\n    let &[x, y] = pair else { return 0 };\n    a + b[1] + x + y\n}\n",
        );
        assert_eq!(f.fns[0].indexing.len(), 2, "{:?}", f.fns[0].indexing);
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let f = parse("fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!f.fns[0].cfg_test);
        assert!(f.fns[1].cfg_test);
    }

    #[test]
    fn innermost_attribution_for_nested_fns() {
        let f = parse("fn outer() {\n    fn inner() { deep(); }\n    shallow();\n}\n");
        let outer = &f.fns[0];
        let inner = &f.fns[1];
        assert_eq!(outer.name, "outer");
        assert!(outer.calls.iter().all(|c| c.callee.name() != "deep"));
        assert!(outer.calls.iter().any(|c| c.callee.name() == "shallow"));
        assert!(inner.calls.iter().any(|c| c.callee.name() == "deep"));
    }

    #[test]
    fn line_numbers_are_one_based() {
        let f = parse("fn a() {}\nfn b() { c(); }\n");
        let call = &f.fns[1].calls[0];
        assert_eq!(f.line_of(call.at), 2);
    }
}
