//! Panic-freedom surface: the wire-decode paths must not be able to
//! panic on attacker-shaped bytes.
//!
//! A malformed datagram or client frame is the one input the system
//! does not control, so everything reachable from a protocol entry
//! point (`decode*`, `parse_datagram`, `handle_datagram`,
//! `accept_in_order`, `recv_loop`, `from_hex_line`) must fail *typed*,
//! never by unwinding: a panic in the UDP pump kills the transport
//! thread and partitions the node.
//!
//! Banned in the reachable set (live fns of the protocol crates):
//! syntactic indexing (`buf[i]` — use `get`), the panicking macros
//! (`panic!`, `unreachable!`, `assert!*`, `todo!`, `unimplemented!`),
//! and `.unwrap()`/`.expect()`. `debug_assert!*` is deliberately
//! allowed — it vanishes in release builds and documents invariants.
//! Each finding carries the call chain from the entry point so the
//! report is actionable without re-deriving reachability.

use crate::callgraph::{chain, reachable, FnId};
use crate::parse::Callee;
use crate::{Finding, Model};

/// Fn names that receive bytes from the wire.
const ENTRY_FNS: &[&str] = &[
    "decode",
    "decode_msg",
    "decode_reply",
    "parse_datagram",
    "handle_datagram",
    "accept_in_order",
    "recv_loop",
    "from_hex_line",
];

/// Macros that unwind.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "assert",
    "assert_eq",
    "assert_ne",
    "todo",
    "unimplemented",
];

/// Findings: panic sources reachable from the decode surface.
pub fn findings(model: &Model) -> Vec<Finding> {
    let live = |id: FnId| {
        let f = &model.files[id.0];
        !f.is_test_file && !f.fns[id.1].cfg_test
    };
    let entries: Vec<FnId> = model
        .files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| {
            f.fns
                .iter()
                .enumerate()
                .filter(|(_, g)| ENTRY_FNS.contains(&g.name.as_str()))
                .map(move |(gi, _)| (fi, gi))
        })
        .filter(|&id| live(id))
        .collect();

    let pred = reachable(&model.files, &model.graph, &entries, live);

    let mut out = Vec::new();
    let mut ids: Vec<FnId> = pred.keys().copied().collect();
    ids.sort();
    for id in ids {
        let file = &model.files[id.0];
        let f = &file.fns[id.1];
        let via = chain(&model.files, &pred, id);
        for &at in &f.indexing {
            out.push(Finding {
                file: file.path.clone(),
                line: file.line_of(at),
                analysis: "panic-surface",
                message: format!(
                    "indexing on the decode path can panic on malformed input — use `get` \
                     (reached via {via})"
                ),
            });
        }
        for c in &f.calls {
            match &c.callee {
                Callee::Macro(m) if PANIC_MACROS.contains(&m.as_str()) => {
                    out.push(Finding {
                        file: file.path.clone(),
                        line: file.line_of(c.at),
                        analysis: "panic-surface",
                        message: format!(
                            "`{m}!` reachable from the decode surface (reached via {via})"
                        ),
                    });
                }
                Callee::Method(m) if m == "unwrap" || m == "expect" => {
                    out.push(Finding {
                        file: file.path.clone(),
                        line: file.line_of(c.at),
                        analysis: "panic-surface",
                        message: format!(
                            "`.{m}()` reachable from the decode surface (reached via {via})"
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_of;

    #[test]
    fn indexing_in_a_decode_entry_is_flagged_with_chain() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn decode_msg(buf: &[u8]) -> u8 {\n    inner(buf)\n}\n\
             fn inner(buf: &[u8]) -> u8 {\n    buf[0]\n}\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("decode_msg -> inner"),
            "{}",
            f[0].message
        );
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn panic_macro_reachable_is_flagged_but_debug_assert_is_not() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn parse_datagram(n: usize) {\n    debug_assert!(n < 10);\n    check(n);\n}\n\
             fn check(n: usize) {\n    assert!(n < 10);\n}\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`assert!`"), "{}", f[0].message);
    }

    #[test]
    fn unreachable_code_and_test_code_are_out_of_scope() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn decode_msg(buf: &[u8]) -> u8 { 0 }\n\
             fn helper(buf: &[u8]) -> u8 { buf[0] }\n\
             #[cfg(test)]\nmod tests {\n    fn t(buf: &[u8]) { decode_msg(buf); buf[0]; }\n}\n",
        );
        assert!(findings(&m).is_empty());
    }

    #[test]
    fn unwrap_on_the_surface_is_flagged() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn from_hex_line(s: &str) -> u8 {\n    s.bytes().next().unwrap()\n}\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("unwrap"), "{}", f[0].message);
    }
}
