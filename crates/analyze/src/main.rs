//! The `analyze` binary: run every structural analysis over the
//! workspace and fail on any finding.
//!
//! ```text
//! genomedsm-analyze [ROOT] [--crosscheck EDGE_FILE]
//! ```
//!
//! `ROOT` defaults to the workspace this binary was built from.
//! `--crosscheck` additionally verifies that every runtime lock-order
//! edge in `EDGE_FILE` (the dump written by the `lock_order_dump` test
//! under `GENOMEDSM_LOCK_EDGES_OUT`) has a static counterpart — the
//! static graph must be a superset of anything the runtime witnessed.

use genomedsm_analyze::{lockorder, Model};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut crosscheck: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--crosscheck" => {
                let Some(path) = args.next() else {
                    eprintln!("--crosscheck requires a file argument");
                    return ExitCode::FAILURE;
                };
                crosscheck = Some(PathBuf::from(path));
            }
            other => root = Some(PathBuf::from(other)),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));

    let model = match Model::from_workspace(&root) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("failed to read workspace at {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let mut findings = model.analyze();
    if let Some(path) = crosscheck {
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let lines: Vec<String> = text.lines().map(str::to_string).collect();
                println!(
                    "cross-checking {} runtime lock-order edges from {}",
                    lines.iter().filter(|l| !l.trim().is_empty()).count(),
                    path.display()
                );
                findings.extend(lockorder::crosscheck(&model, &lines));
            }
            Err(e) => {
                eprintln!("failed to read crosscheck file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let files = model.files.len();
    let fns: usize = model.files.iter().map(|f| f.fns.len()).sum();
    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "analyzed {files} files / {fns} fns: {} finding(s)",
        findings.len()
    );
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
