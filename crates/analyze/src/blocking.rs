//! Blocking-while-locked: blockable calls reachable under a live guard.
//!
//! A call that can park the thread — channel `recv`, `thread::join`,
//! condvar `wait`, socket reads, `accept` — made while a std `Mutex`
//! guard is held turns a short critical section into an unbounded one,
//! and in a DSM node that means every peer contending for that state
//! stalls behind one slow socket. The lint layer cannot see this (it is
//! a *structural* property: which guards are live at the call), so this
//! analysis walks each live fn body tracking guard lifetimes:
//!
//! * a guard is born at an argless `.lock()` / `.try_lock()` or a call
//!   to an in-crate fn whose signature returns a `MutexGuard`;
//! * a `let`-bound guard lives until its block closes or an explicit
//!   `drop(name)`; a statement temporary dies at the statement's `;`;
//! * the condvar `wait(guard)` family is the sanctioned way to block
//!   while locked — the guard passed by name is exempt for that call
//!   (the condvar releases it), but any *other* live guard still flags;
//! * blocking propagates through the intra-crate call graph: calling an
//!   in-crate fn that may block is as bad as blocking directly.
//!
//! `.join(arg)` with arguments is `Path::join`/`[str]::join`, not
//! `JoinHandle::join` — the parse captures `join` args so the two can
//! be told apart.

use crate::callgraph::FnId;
use crate::parse::Callee;
use crate::{Finding, Model};
use std::collections::HashMap;

/// Names that can park the calling thread. The bool is
/// `only_when_argless` (`join()` blocks; `join(path)` concatenates).
const BLOCKING: &[(&str, bool)] = &[
    ("recv", false),
    ("recv_timeout", false),
    ("recv_deadline", false),
    ("recv_from", false),
    ("join", true),
    ("wait", false),
    ("wait_timeout", false),
    ("wait_while", false),
    ("park", false),
    ("park_timeout", false),
    ("sleep", false),
    ("accept", false),
    ("read_line", false),
    ("read_exact", false),
    ("read_to_end", false),
    ("read_to_string", false),
];

/// The condvar family: blocking by design, but the guard named in the
/// arguments is released while parked.
const WAIT_FAMILY: &[&str] = &["wait", "wait_timeout", "wait_while"];

fn direct_blocking(callee: &Callee, args: &str) -> Option<&'static str> {
    let name = match callee {
        Callee::Macro(_) => return None,
        c => c.name(),
    };
    BLOCKING
        .iter()
        .find(|(n, argless)| *n == name && (!argless || args.is_empty()))
        .map(|(n, _)| *n)
}

/// Fixpoint: which fns may block, and via what primitive.
fn may_block(model: &Model) -> HashMap<FnId, &'static str> {
    let ids: Vec<FnId> = model
        .files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| (0..f.fns.len()).map(move |gi| (fi, gi)))
        .collect();
    let mut blocks: HashMap<FnId, &'static str> = HashMap::new();
    for &id in &ids {
        for c in &model.files[id.0].fns[id.1].calls {
            if let Some(why) = direct_blocking(&c.callee, &c.args) {
                blocks.entry(id).or_insert(why);
            }
        }
    }
    loop {
        let mut changed = false;
        for &id in &ids {
            if blocks.contains_key(&id) {
                continue;
            }
            let crate_name = model.files[id.0].crate_name.clone();
            let mut found = None;
            for c in &model.files[id.0].fns[id.1].calls {
                for g in model.graph.resolve(&model.files, id, &crate_name, c) {
                    if g == id {
                        continue;
                    }
                    if let Some(&why) = blocks.get(&g) {
                        found = Some(why);
                        break;
                    }
                }
                if found.is_some() {
                    break;
                }
            }
            if let Some(why) = found {
                blocks.insert(id, why);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    blocks
}

/// A live guard in the body walk.
struct Guard {
    /// `let`-bound name, if any; `None` is a statement temporary.
    name: Option<String>,
    /// Byte offset of the bearing call (for the finding message).
    born_at: usize,
    /// Unified delimiter depth at birth.
    depth: usize,
}

/// Extracts the bound name from the statement text before a guard-
/// bearing call: first `let`-pattern identifier that could bind (skips
/// `mut`/`ref` and uppercase-initial path heads like `Ok`/`Some`).
fn let_bound_name(stmt: &str) -> Option<String> {
    let at = crate::parse::word_positions(stmt, "let")
        .into_iter()
        .next()?;
    let rest = &stmt[at + 3..];
    let rest = rest.split('=').next().unwrap_or(rest);
    for word in rest.split(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
        if word.is_empty() || word == "mut" || word == "ref" || word == "_" {
            continue;
        }
        let head = word.chars().next()?;
        if head.is_ascii_uppercase() || head.is_ascii_digit() {
            continue; // pattern constructor (`Ok`, `Some`) or literal
        }
        return Some(word.to_string());
    }
    None
}

/// Is this call a guard birth? (argless `.lock()`/`.try_lock()`, or a
/// call to an in-crate fn returning a `MutexGuard`.)
fn is_guard_birth(model: &Model, id: FnId, call: &crate::parse::CallSite) -> bool {
    if let Callee::Method(m) = &call.callee {
        if (m == "lock" || m == "try_lock") && call.args.is_empty() {
            return true;
        }
    }
    let crate_name = &model.files[id.0].crate_name;
    model
        .graph
        .resolve(&model.files, id, crate_name, call)
        .into_iter()
        .any(|(fi, gi)| {
            let f = &model.files[fi];
            f.fns[gi].returns_guard(&f.code)
        })
}

/// Findings: blockable calls made while a std `Mutex` guard is live, in
/// live (non-test) code of the scope crates.
pub fn findings(model: &Model) -> Vec<Finding> {
    let blocks = may_block(model);
    let mut out = Vec::new();

    for (fi, file) in model.files.iter().enumerate() {
        if file.is_test_file {
            continue;
        }
        for (gi, f) in file.fns.iter().enumerate() {
            if f.cfg_test {
                continue;
            }
            let Some(body) = f.body.clone() else { continue };
            let id: FnId = (fi, gi);
            let bytes = file.code.as_bytes();

            // Call events by position within the body.
            let mut calls: Vec<&crate::parse::CallSite> =
                f.calls.iter().filter(|c| body.contains(&c.at)).collect();
            calls.sort_by_key(|c| c.at);
            let mut next_call = 0usize;

            let mut guards: Vec<Guard> = Vec::new();
            let mut depth = 0usize;
            let mut stmt_start = body.start;
            let mut i = body.start;
            while i < body.end {
                // Handle any call event at this offset first.
                while next_call < calls.len() && calls[next_call].at == i {
                    let c = calls[next_call];
                    next_call += 1;

                    // Explicit release.
                    if matches!(&c.callee, Callee::Plain(n) if n == "drop") {
                        guards.retain(|g| g.name.as_deref() != Some(c.args.as_str()));
                        continue;
                    }

                    // Blocking check happens before the call's own guard
                    // (if any) is born — a birth cannot flag itself.
                    let why = direct_blocking(&c.callee, &c.args).or_else(|| {
                        model
                            .graph
                            .resolve(&model.files, id, &file.crate_name, c)
                            .into_iter()
                            .filter(|&g| g != id)
                            .find_map(|g| blocks.get(&g).copied())
                    });
                    if let Some(why) = why {
                        let exempt: Vec<&str> = if WAIT_FAMILY.contains(&c.callee.name()) {
                            c.args
                                .split(|ch: char| !(ch.is_ascii_alphanumeric() || ch == '_'))
                                .filter(|s| !s.is_empty())
                                .collect()
                        } else {
                            Vec::new()
                        };
                        if let Some(g) = guards
                            .iter()
                            .find(|g| !g.name.as_deref().is_some_and(|n| exempt.contains(&n)))
                        {
                            let held = match &g.name {
                                Some(n) => format!("guard `{n}`"),
                                None => "a temporary guard".to_string(),
                            };
                            let call_desc = if direct_blocking(&c.callee, &c.args).is_some() {
                                format!("`{}` can block", c.callee.name())
                            } else {
                                format!("`{}` may block (reaches `{why}`)", c.callee.name())
                            };
                            out.push(Finding {
                                file: file.path.clone(),
                                line: file.line_of(c.at),
                                analysis: "blocking-while-locked",
                                message: format!(
                                    "{call_desc} while {held} (born line {}) is held",
                                    file.line_of(g.born_at)
                                ),
                            });
                        }
                    }

                    // Guard birth.
                    if is_guard_birth(model, id, c) {
                        let stmt = file.code.get(stmt_start..c.at).unwrap_or("");
                        let name = stmt.contains("let").then(|| let_bound_name(stmt)).flatten();
                        // `let _ = m.lock()` binds nothing: dead at once.
                        if !(stmt.contains("let") && name.is_none() && stmt.contains("_")) {
                            guards.push(Guard {
                                name,
                                born_at: c.at,
                                depth,
                            });
                        }
                    }
                }

                match bytes[i] {
                    b'{' | b'(' | b'[' => {
                        depth += 1;
                        // A block/group opener starts a fresh statement
                        // context for `let`-name extraction.
                        if bytes[i] == b'{' {
                            stmt_start = i + 1;
                        }
                    }
                    b'}' | b')' | b']' => {
                        depth = depth.saturating_sub(1);
                        guards.retain(|g| g.depth <= depth);
                        if bytes[i] == b'}' {
                            stmt_start = i + 1;
                        }
                    }
                    b';' => {
                        guards.retain(|g| !(g.name.is_none() && g.depth == depth));
                        stmt_start = i + 1;
                    }
                    _ => {}
                }
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_of;

    #[test]
    fn recv_under_named_guard_flags() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn f(&self) {\n    let g = self.state.lock();\n    let msg = self.rx.recv();\n    \
             g.apply(msg);\n}\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("recv"), "{}", f[0].message);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn guard_dropped_before_recv_is_clean() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn f(&self) {\n    let g = self.state.lock();\n    drop(g);\n    \
             let msg = self.rx.recv();\n}\n",
        );
        assert!(findings(&m).is_empty());
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn f(&self) {\n    {\n        let g = self.state.lock();\n        g.touch();\n    }\n    \
             let msg = self.rx.recv();\n}\n",
        );
        assert!(findings(&m).is_empty());
    }

    #[test]
    fn statement_temporary_dies_at_semicolon() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn f(&self) {\n    self.state.lock().bump();\n    let msg = self.rx.recv();\n}\n",
        );
        assert!(findings(&m).is_empty());
    }

    #[test]
    fn condvar_wait_exempts_its_own_guard_only() {
        let clean = model_of(
            "crates/batch/src/x.rs",
            "batch",
            "fn f(&self) {\n    let mut g = self.q.lock();\n    g = self.cv.wait(g);\n    \
             g.pop();\n}\n",
        );
        assert!(findings(&clean).is_empty(), "{:?}", findings(&clean));
        let dirty = model_of(
            "crates/batch/src/x.rs",
            "batch",
            "fn f(&self) {\n    let other = self.stats.lock();\n    let mut g = self.q.lock();\n    \
             g = self.cv.wait(g);\n    other.bump();\n}\n",
        );
        let f = findings(&dirty);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("other"), "{}", f[0].message);
    }

    #[test]
    fn path_join_is_not_thread_join() {
        let m = model_of(
            "crates/serve/src/x.rs",
            "serve",
            "fn f(&self) {\n    let g = self.state.lock();\n    let p = self.root.join(name);\n    \
             g.set(p);\n    self.handle.join();\n}\n",
        );
        // `root.join(name)` is fine; the argless `handle.join()` flags
        // (the guard is still live — no drop, no scope exit).
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("join"), "{}", f[0].message);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn blocking_propagates_through_the_call_graph() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn pump(&self) { let d = self.sock.recv_from(buf); }\n\
             fn f(&self) {\n    let g = self.state.lock();\n    self.pump();\n    g.apply();\n}\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("reaches `recv_from`"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn test_code_is_out_of_scope() {
        let m = model_of(
            "crates/serve/tests/x.rs",
            "serve",
            "fn f(&self) {\n    let g = self.state.lock();\n    let msg = self.rx.recv();\n}\n",
        );
        assert!(findings(&m).is_empty());
    }
}
