//! Static lock-order: the may-hold-while-acquiring graph.
//!
//! DSM lock acquisitions are syntactically unmistakable — the primitive
//! takes the lock id as an argument (`node.lock(PAGE)`), while a std
//! `Mutex` lock is argless — so every acquisition site can be extracted
//! from the parse. Per fn, a linear scan tracks the held set through
//! `lock`/`unlock` events (an over-approximation: branches merge, so a
//! lock taken in either arm counts as held after both). Calls are
//! recorded with the held snapshot, and a fixpoint propagates each
//! callee's may-acquire set (identity + concrete site) up the call
//! graph, producing edges whose *sites* match what the runtime graph's
//! `#[track_caller]` records: held-lock acquisition site → acquired-lock
//! acquisition site.
//!
//! Two consumers:
//! * **cycle detection** — an SCC over lock identities; a cycle is
//!   reported only when at least one of its edges is acquired in live
//!   (non-test) code, because the dsm test suite deliberately seeds an
//!   AB-BA inversion to regression-test the runtime detector;
//! * **the superset cross-check** — every edge the runtime graph
//!   witnessed during the test suite must exist statically at the same
//!   `file:line` pair. A missing edge fails CI: it means the extractor
//!   lost an acquisition site, which would silently blind the cycle
//!   detection.
//!
//! Known approximation: a callee's *exit-held* set (locks it leaves
//! acquired for the caller) is folded in one level deep — enough for
//! lock-helper wrappers; deeper hold-across-return chains would be
//! caught by the cross-check failing, which is the cue to deepen it.

use crate::callgraph::FnId;
use crate::parse::CallSite;
use crate::{Finding, Model};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// One static acquisition edge: `from` may be held when `to` is
/// acquired.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticEdge {
    /// Held lock's normalized identity (argument text).
    pub from_identity: String,
    /// Acquired lock's normalized identity.
    pub to_identity: String,
    /// Held lock's acquisition site: (file index, byte offset).
    pub from: (usize, usize),
    /// Acquired lock's acquisition site.
    pub to: (usize, usize),
    /// The acquisition happens in live code (src, non-`cfg(test)`).
    pub to_live: bool,
}

/// A lock identity + its acquisition site.
type Acq = (String, (usize, usize));

/// Per-fn linear-scan facts.
#[derive(Default, Clone)]
struct FnFacts {
    /// Edges from this fn's own lock nesting.
    edges: Vec<(Acq, Acq)>,
    /// This fn's own acquisitions.
    acquires: Vec<Acq>,
    /// Calls with the held set at the call.
    calls: Vec<(CallSite, Vec<Acq>)>,
    /// Locks still held at fn exit (own events only).
    exit_held: Vec<Acq>,
}

/// Linear scan of one fn. `exit_of` supplies the one-level exit-held
/// fold for callees (empty map on the prepass).
fn scan_fn(model: &Model, id: FnId, exit_of: &HashMap<FnId, Vec<Acq>>) -> FnFacts {
    let file = &model.files[id.0];
    let f = &file.fns[id.1];
    let mut facts = FnFacts::default();
    // Merge lock events and calls by position. Lock events also appear
    // as `.lock(…)`/`.unlock(…)` call sites; skip those as calls.
    let lock_positions: HashSet<usize> = f.locks.iter().map(|l| l.at).collect();
    let mut events: Vec<(usize, bool, usize)> = Vec::new(); // (pos, is_lock, idx)
    for (i, l) in f.locks.iter().enumerate() {
        events.push((l.at, true, i));
    }
    for (i, c) in f.calls.iter().enumerate() {
        if !lock_positions.contains(&c.at) {
            events.push((c.at, false, i));
        }
    }
    events.sort();

    let mut held: Vec<Acq> = Vec::new();
    for (_, is_lock, i) in events {
        if is_lock {
            let l = &f.locks[i];
            if l.acquire {
                for h in &held {
                    if h.0 != l.identity {
                        facts
                            .edges
                            .push((h.clone(), (l.identity.clone(), (id.0, l.at))));
                    }
                }
                let acq = (l.identity.clone(), (id.0, l.at));
                facts.acquires.push(acq.clone());
                held.push(acq);
            } else if let Some(p) = held.iter().rposition(|h| h.0 == l.identity) {
                held.remove(p);
            }
        } else {
            let c = &f.calls[i];
            facts.calls.push((c.clone(), held.clone()));
            // One-level exit-held fold: a callee that returns holding
            // locks leaves the caller holding them too.
            for g in model.graph.resolve(&model.files, id, &file.crate_name, c) {
                for acq in exit_of.get(&g).into_iter().flatten() {
                    if !held.iter().any(|h| h.0 == acq.0) {
                        held.push(acq.clone());
                    }
                }
            }
        }
    }
    facts.exit_held = held;
    facts
}

/// Is the fn a live (non-test, non-`tests/`) one?
fn is_live(model: &Model, id: FnId) -> bool {
    let file = &model.files[id.0];
    !file.is_test_file && !file.fns[id.1].cfg_test
}

/// Extracts the full static edge set over every in-scope file.
pub fn edges(model: &Model) -> Vec<StaticEdge> {
    let ids: Vec<FnId> = model
        .files
        .iter()
        .enumerate()
        .flat_map(|(fi, f)| (0..f.fns.len()).map(move |gi| (fi, gi)))
        .collect();

    // Prepass: own facts, to seed exit-held.
    let empty = HashMap::new();
    let pre: HashMap<FnId, FnFacts> = ids
        .iter()
        .map(|&id| (id, scan_fn(model, id, &empty)))
        .collect();
    let exit_of: HashMap<FnId, Vec<Acq>> = pre
        .iter()
        .map(|(&id, f)| (id, f.exit_held.clone()))
        .collect();
    // Final pass with the one-level fold.
    let facts: HashMap<FnId, FnFacts> = ids
        .iter()
        .map(|&id| (id, scan_fn(model, id, &exit_of)))
        .collect();

    // May-acquire fixpoint: acq(f) ⊇ own ∪ ⋃ acq(callees).
    let mut acq: HashMap<FnId, BTreeSet<Acq>> = ids
        .iter()
        .map(|&id| (id, facts[&id].acquires.iter().cloned().collect()))
        .collect();
    loop {
        let mut changed = false;
        for &id in &ids {
            let mut add: BTreeSet<Acq> = BTreeSet::new();
            for (call, _) in &facts[&id].calls {
                for g in model
                    .graph
                    .resolve(&model.files, id, &model.files[id.0].crate_name, call)
                {
                    if let Some(s) = acq.get(&g) {
                        add.extend(s.iter().cloned());
                    }
                }
            }
            let mine = acq.entry(id).or_default();
            let before = mine.len();
            mine.extend(add);
            changed |= mine.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Edge assembly: own edges + held × acq(callee) at each call.
    let mut out: BTreeSet<StaticEdge> = BTreeSet::new();
    for &id in &ids {
        let live = is_live(model, id);
        for (from, to) in &facts[&id].edges {
            out.insert(StaticEdge {
                from_identity: from.0.clone(),
                to_identity: to.0.clone(),
                from: from.1,
                to: to.1,
                to_live: live,
            });
        }
        for (call, held) in &facts[&id].calls {
            if held.is_empty() {
                continue;
            }
            for g in model
                .graph
                .resolve(&model.files, id, &model.files[id.0].crate_name, call)
            {
                let g_live = is_live(model, g);
                if let Some(acqs) = acq.get(&g) {
                    for (to_id, to_site) in acqs {
                        for (from_id, from_site) in held {
                            if from_id != to_id {
                                out.insert(StaticEdge {
                                    from_identity: from_id.clone(),
                                    to_identity: to_id.clone(),
                                    from: *from_site,
                                    to: *to_site,
                                    to_live: g_live,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out.into_iter().collect()
}

/// Strongly connected components over lock identities (Kosaraju).
fn sccs(edges: &[StaticEdge]) -> Vec<Vec<String>> {
    let mut fwd: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut rev: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        fwd.entry(&e.from_identity)
            .or_default()
            .insert(&e.to_identity);
        rev.entry(&e.to_identity)
            .or_default()
            .insert(&e.from_identity);
        nodes.insert(&e.from_identity);
        nodes.insert(&e.to_identity);
    }
    // Pass 1: finish order (iterative DFS).
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, bool)> = vec![(start, false)];
        while let Some((at, expanded)) = stack.pop() {
            if expanded {
                order.push(at);
                continue;
            }
            if !seen.insert(at) {
                continue;
            }
            stack.push((at, true));
            for &next in fwd.get(at).into_iter().flatten() {
                if !seen.contains(next) {
                    stack.push((next, false));
                }
            }
        }
    }
    // Pass 2: reverse-graph components in reverse finish order.
    let mut comp: Vec<Vec<String>> = Vec::new();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    for &start in order.iter().rev() {
        if assigned.contains(start) {
            continue;
        }
        let mut members = Vec::new();
        let mut stack = vec![start];
        assigned.insert(start);
        while let Some(at) = stack.pop() {
            members.push(at.to_string());
            for &next in rev.get(at).into_iter().flatten() {
                if assigned.insert(next) {
                    stack.push(next);
                }
            }
        }
        comp.push(members);
    }
    comp
}

/// Cycle findings over the static graph.
pub fn findings(model: &Model) -> Vec<Finding> {
    let all = edges(model);
    let mut out = Vec::new();
    for scc in sccs(&all) {
        if scc.len() < 2 {
            continue; // same-identity self edges are skipped at insert
        }
        let members: BTreeSet<&str> = scc.iter().map(String::as_str).collect();
        let internal: Vec<&StaticEdge> = all
            .iter()
            .filter(|e| {
                members.contains(e.from_identity.as_str())
                    && members.contains(e.to_identity.as_str())
            })
            .collect();
        // The dsm test suite deliberately seeds an inversion; only a
        // cycle touched by live code is a workspace defect.
        let Some(live) = internal.iter().find(|e| e.to_live) else {
            continue;
        };
        let file = &model.files[live.to.0];
        let detail: Vec<String> = internal
            .iter()
            .map(|e| {
                let ff = &model.files[e.from.0];
                let tf = &model.files[e.to.0];
                format!(
                    "{}(held at {}:{}) -> {}(acquired at {}:{})",
                    e.from_identity,
                    ff.path.display(),
                    ff.line_of(e.from.1),
                    e.to_identity,
                    tf.path.display(),
                    tf.line_of(e.to.1)
                )
            })
            .collect();
        out.push(Finding {
            file: file.path.clone(),
            line: file.line_of(live.to.1),
            analysis: "lock-order",
            message: format!(
                "static lock-order cycle over identities {:?}: {}",
                scc,
                detail.join("; ")
            ),
        });
    }
    out
}

/// Checks that every runtime-observed edge (lines in the
/// `dsm::lock_order` dump format `from_file:from_line -> to_file:to_line`)
/// exists in the static graph. A missing edge means the extractor lost
/// an acquisition site.
pub fn crosscheck(model: &Model, runtime_lines: &[String]) -> Vec<Finding> {
    let all = edges(model);
    let static_sites: Vec<((String, usize), (String, usize))> = all
        .iter()
        .map(|e| {
            let ff = &model.files[e.from.0];
            let tf = &model.files[e.to.0];
            (
                (ff.path.display().to_string(), ff.line_of(e.from.1)),
                (tf.path.display().to_string(), tf.line_of(e.to.1)),
            )
        })
        .collect();
    let path_match = |a: &str, b: &str| a == b || a.ends_with(b) || b.ends_with(a);

    let mut out = Vec::new();
    for line in runtime_lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((from, to)) = line.split_once(" -> ") else {
            out.push(Finding {
                file: "lock-order-dump".into(),
                line: 0,
                analysis: "lock-order-crosscheck",
                message: format!("malformed runtime edge line: {line}"),
            });
            continue;
        };
        let parse_site = |s: &str| -> Option<(String, usize)> {
            let (file, lineno) = s.rsplit_once(':')?;
            Some((file.to_string(), lineno.parse().ok()?))
        };
        let (Some(fs), Some(ts)) = (parse_site(from), parse_site(to)) else {
            out.push(Finding {
                file: "lock-order-dump".into(),
                line: 0,
                analysis: "lock-order-crosscheck",
                message: format!("malformed runtime edge site: {line}"),
            });
            continue;
        };
        let covered = static_sites.iter().any(|(sf, st)| {
            sf.1 == fs.1 && st.1 == ts.1 && path_match(&sf.0, &fs.0) && path_match(&st.0, &ts.0)
        });
        if !covered {
            out.push(Finding {
                file: fs.0.clone().into(),
                line: ts.1,
                analysis: "lock-order-crosscheck",
                message: format!(
                    "runtime lock-order edge has no static counterpart (extractor lost a \
                     site): {line}"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_of;

    #[test]
    fn nested_locks_produce_edges() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn f(node: &N) {\n    node.lock(A);\n    node.lock(B);\n    node.unlock(B);\n    \
             node.unlock(A);\n}\n",
        );
        let es = edges(&m);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].from_identity, "A");
        assert_eq!(es[0].to_identity, "B");
        assert!(es[0].to_live);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn f(n: &N) { n.lock(A); n.lock(B); n.unlock(B); n.unlock(A); }\n\
             fn g(n: &N) { n.lock(A); n.lock(B); n.unlock(B); n.unlock(A); }\n",
        );
        assert!(findings(&m).is_empty());
    }

    #[test]
    fn inverted_order_is_a_cycle_in_live_code() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn f(n: &N) { n.lock(A); n.lock(B); n.unlock(B); n.unlock(A); }\n\
             fn g(n: &N) { n.lock(B); n.lock(A); n.unlock(A); n.unlock(B); }\n",
        );
        let f = findings(&m);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("cycle"), "{}", f[0].message);
    }

    #[test]
    fn test_only_inversion_is_not_reported_but_edges_exist() {
        let m = model_of(
            "crates/dsm/tests/x.rs",
            "dsm",
            "fn f(n: &N) { n.lock(A); n.lock(B); n.unlock(B); n.unlock(A); }\n\
             fn g(n: &N) { n.lock(B); n.lock(A); n.unlock(A); n.unlock(B); }\n",
        );
        assert!(findings(&m).is_empty());
        assert_eq!(edges(&m).len(), 2);
    }

    #[test]
    fn interprocedural_edges_cross_the_call_graph() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn outer(n: &N) {\n    n.lock(A);\n    inner(n);\n    n.unlock(A);\n}\n\
             fn inner(n: &N) {\n    n.lock(B);\n    n.unlock(B);\n}\n",
        );
        let es = edges(&m);
        assert!(
            es.iter()
                .any(|e| e.from_identity == "A" && e.to_identity == "B"),
            "{es:?}"
        );
    }

    #[test]
    fn exit_held_folds_one_level() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn take_a(n: &N) { n.lock(A); }\n\
             fn f(n: &N) {\n    take_a(n);\n    n.lock(B);\n    n.unlock(B);\n    n.unlock(A);\n}\n",
        );
        let es = edges(&m);
        assert!(
            es.iter()
                .any(|e| e.from_identity == "A" && e.to_identity == "B"),
            "a lock held across a helper's return must still form edges: {es:?}"
        );
    }

    #[test]
    fn crosscheck_flags_missing_edges_only() {
        let m = model_of(
            "crates/dsm/src/x.rs",
            "dsm",
            "fn f(n: &N) {\n    n.lock(A);\n    n.lock(B);\n    n.unlock(B);\n    n.unlock(A);\n}\n",
        );
        // The real static edge: A at line 2 -> B at line 3.
        let ok = vec!["crates/dsm/src/x.rs:2 -> crates/dsm/src/x.rs:3".to_string()];
        assert!(crosscheck(&m, &ok).is_empty());
        let missing = vec!["crates/dsm/src/x.rs:2 -> crates/dsm/src/other.rs:9".to_string()];
        assert_eq!(crosscheck(&m, &missing).len(), 1);
    }
}
