//! The seeded-bad corpus: each fixture under `fixtures/` must produce
//! exactly its one expected finding when analyzed as live protocol
//! code. This is the proof that every analysis actually fires — a
//! clean workspace report means nothing if the checks are vacuous.

use genomedsm_analyze::{Finding, Model};
use std::path::PathBuf;

/// Analyzes one fixture file as if it lived at `as_path` in `crate_name`.
fn analyze_fixture(fixture: &str, as_path: &str, crate_name: &str) -> Vec<Finding> {
    let src = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(fixture);
    let text = std::fs::read_to_string(&src)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", src.display()));
    let model = Model::from_sources(vec![(PathBuf::from(as_path), crate_name.to_string(), text)]);
    model.analyze()
}

#[test]
fn lock_cycle_fixture_is_caught() {
    let f = analyze_fixture("lock_cycle.rs", "crates/dsm/src/lock_cycle.rs", "dsm");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].analysis, "lock-order");
    assert!(f[0].message.contains("cycle"), "{}", f[0].message);
    assert!(
        f[0].message.contains("PAGE_LOCK") && f[0].message.contains("LEASE_TABLE"),
        "{}",
        f[0].message
    );
}

#[test]
fn block_under_lock_fixture_is_caught() {
    let f = analyze_fixture(
        "block_under_lock.rs",
        "crates/serve/src/block_under_lock.rs",
        "serve",
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].analysis, "blocking-while-locked");
    assert!(
        f[0].message.contains("`recv` can block"),
        "{}",
        f[0].message
    );
    assert!(f[0].message.contains("guard `stats`"), "{}", f[0].message);
}

#[test]
fn dead_variant_fixture_is_caught() {
    let f = analyze_fixture("dead_variant.rs", "crates/dsm/src/dead_variant.rs", "dsm");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].analysis, "wire-exhaustiveness");
    assert!(f[0].message.contains("Msg::Pong"), "{}", f[0].message);
    assert!(
        f[0].message.contains("handler match arm"),
        "{}",
        f[0].message
    );
}

#[test]
fn indexed_decode_fixture_is_caught() {
    let f = analyze_fixture(
        "indexed_decode.rs",
        "crates/dsm/src/indexed_decode.rs",
        "dsm",
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].analysis, "panic-surface");
    assert!(
        f[0].message.contains("decode_msg -> header"),
        "{}",
        f[0].message
    );
}

#[test]
fn fixtures_are_test_scoped_when_pathed_under_tests() {
    // The same seeded-bad code under a `tests/` path must NOT flag
    // blocking/panic findings (test code is out of scope), proving the
    // analyses respect the live/test boundary rather than matching text.
    let f = analyze_fixture(
        "block_under_lock.rs",
        "crates/serve/tests/block_under_lock.rs",
        "serve",
    );
    assert!(f.is_empty(), "{f:?}");
    let f = analyze_fixture(
        "indexed_decode.rs",
        "crates/dsm/tests/indexed_decode.rs",
        "dsm",
    );
    assert!(f.is_empty(), "{f:?}");
}
