//! The static/runtime superset gate, in-process.
//!
//! Runs a Record-mode DSM workload right here, takes the runtime
//! lock-order edges its `#[track_caller]` sites produced, and verifies
//! every one has a static counterpart — the acquisition sites below are
//! in this very file, which the analyzer's workspace walk includes. A
//! failure means the static extractor lost a lock site, which would
//! silently blind the cycle detection.
//!
//! Debug-only: the runtime recorder is compiled in under
//! `debug_assertions` (or dsm's `lock-order` feature, which this test
//! crate does not forward).
#![cfg(debug_assertions)]

use genomedsm_analyze::{lockorder, Model};
use genomedsm_dsm::{DsmConfig, DsmSystem, LockOrderMode};
use std::path::PathBuf;

const PAGE: u32 = 20;
const LEASE: u32 = 21;
const LEDGER: u32 = 22;

#[test]
fn static_graph_is_a_superset_of_runtime_edges() {
    let run = DsmSystem::run(
        DsmConfig::new(2).lock_order(LockOrderMode::Record),
        |node| {
            node.lock(PAGE);
            node.lock(LEASE);
            if node.id() == 0 {
                node.lock(LEDGER);
                node.unlock(LEDGER);
            }
            node.unlock(LEASE);
            node.unlock(PAGE);
            node.barrier();
        },
    );
    assert!(run.lock_order_violations.is_empty());
    assert!(
        !run.lock_order_edges.is_empty(),
        "the workload holds locks while acquiring; the runtime graph must see it"
    );

    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let model = Model::from_workspace(&root).expect("walk workspace");
    let lines: Vec<String> = run
        .lock_order_edges
        .iter()
        .map(genomedsm_dsm::LockOrderEdge::wire_format)
        .collect();
    let missing = lockorder::crosscheck(&model, &lines);
    assert!(
        missing.is_empty(),
        "runtime edges without static counterparts:\n{}",
        missing
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn crosscheck_rejects_a_fabricated_edge() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let model = Model::from_workspace(&root).expect("walk workspace");
    let bogus = vec!["crates/dsm/src/node.rs:1 -> crates/dsm/src/daemon.rs:1".to_string()];
    let missing = lockorder::crosscheck(&model, &bogus);
    assert_eq!(
        missing.len(),
        1,
        "a fabricated edge must be reported: {missing:?}"
    );
}
