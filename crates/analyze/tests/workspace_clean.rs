//! The workspace itself must be clean — zero findings, no allowlist.
//!
//! This is the same gate CI runs via the `analyze` binary; having it as
//! a test means `cargo test` alone catches a regression.

use genomedsm_analyze::Model;
use std::path::PathBuf;

#[test]
fn workspace_has_zero_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let model = Model::from_workspace(&root).expect("walk workspace");
    assert!(
        model.files.len() > 40,
        "suspiciously few files parsed ({}) — walker broken?",
        model.files.len()
    );
    let findings = model.analyze();
    assert!(
        findings.is_empty(),
        "workspace must be clean (no allowlist):\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
