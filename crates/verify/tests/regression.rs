//! Acceptance: the seeded known-bad configurations are found by the
//! checker and replay deterministically from their recorded seed.

use genomedsm_verify::models::inversion::InversionModel;
use genomedsm_verify::models::lease::LeaseModel;
use genomedsm_verify::models::merge::MergeModel;
use genomedsm_verify::models::rejoin::RejoinModel;
use genomedsm_verify::models::retransmit::RetransmitModel;
use shuttle::Config;

/// The page-lock / lease-table AB-BA inversion: random exploration finds
/// the deadlock, and replaying from nothing but the failure's seed
/// reproduces the identical schedule and reason.
#[test]
fn lock_order_inversion_is_found_and_replays_from_seed() {
    let spec = InversionModel {
        inverted: true,
        rounds: 2,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let failure = report.failure.expect("AB-BA inversion must deadlock");
    assert!(failure.reason.contains("deadlock"), "{}", failure.reason);
    let seed = failure.seed.expect("random failures record their seed");

    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    let refailure = replay.failure.expect("seed replay must re-fail");
    assert_eq!(refailure.reason, failure.reason);
    assert_eq!(refailure.schedule, failure.schedule);

    // And the recorded schedule itself replays without the seed.
    let by_schedule = shuttle::replay_schedule(&spec, &failure.schedule, &Config::default());
    let sf = by_schedule.failure.expect("schedule replay must re-fail");
    assert_eq!(sf.reason, failure.reason);
}

/// The rejected permit-counting window gate deadlocks; the correct
/// window gate on the same workload does not.
#[test]
fn permit_counting_merge_gate_deadlocks_but_window_gate_does_not() {
    let buggy = shuttle::check_exhaustive(
        &MergeModel {
            jobs: 2,
            workers: 2,
            window: 1,
            permit_bug: true,
        },
        &Config::default(),
    );
    let f = buggy.failure.expect("permit gate must deadlock");
    assert!(f.reason.contains("deadlock"), "{}", f.reason);

    let correct = shuttle::check_exhaustive(
        &MergeModel {
            jobs: 2,
            workers: 2,
            window: 1,
            permit_bug: false,
        },
        &Config::default(),
    );
    correct.assert_ok();
}

/// Evicting the cached reply before the sender's ack double-executes a
/// retransmitted request; the evict-on-ack lifetime on the same
/// adversarial workload stays exactly-once. The failure replays from
/// its recorded seed.
#[test]
fn evict_before_ack_double_executes_and_replays_from_seed() {
    let spec = RetransmitModel {
        msgs: 2,
        window: 2,
        dup_budget: 1,
        swap_budget: 1,
        bug_evict_before_ack: true,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let failure = report.failure.expect("early eviction must double-execute");
    assert!(
        failure.reason.contains("executed 2 times"),
        "{}",
        failure.reason
    );
    let seed = failure.seed.expect("random failures record their seed");
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    let refailure = replay.failure.expect("seed replay must re-fail");
    assert_eq!(refailure.reason, failure.reason);
    assert_eq!(refailure.schedule, failure.schedule);

    let healthy = shuttle::check_random(
        &RetransmitModel {
            bug_evict_before_ack: false,
            ..spec
        },
        &Config::default(),
    );
    healthy.assert_ok();
}

/// Handing the joiner its role back without invalidating its stale page
/// cache serves pre-crash column data; the checker catches the
/// divergence from the never-crashed run and the failure replays from
/// both its recorded seed and its recorded schedule. The full protocol
/// on the same workload stays clean.
#[test]
fn skipped_invalidation_diverges_and_replays_from_seed() {
    let spec = RejoinModel {
        units: 2,
        bug_skip_invalidation: true,
        bug_admit_mid_round: false,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let failure = report
        .failure
        .expect("skipped invalidation must serve stale columns");
    assert!(
        failure.reason.contains("saved columns diverge"),
        "{}",
        failure.reason
    );
    let seed = failure.seed.expect("random failures record their seed");
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    let refailure = replay.failure.expect("seed replay must re-fail");
    assert_eq!(refailure.reason, failure.reason);
    assert_eq!(refailure.schedule, failure.schedule);

    // And the recorded schedule itself replays without the seed.
    let by_schedule = shuttle::replay_schedule(&spec, &failure.schedule, &Config::default());
    let sf = by_schedule.failure.expect("schedule replay must re-fail");
    assert_eq!(sf.reason, failure.reason);

    let healthy = shuttle::check_random(
        &RejoinModel {
            bug_skip_invalidation: false,
            ..spec
        },
        &Config::default(),
    );
    healthy.assert_ok();
}

/// The obituary-grants-uncommitted-state lease bug is detected.
#[test]
fn uncommitted_lease_grant_bug_is_found() {
    let report = shuttle::check_exhaustive(
        &LeaseModel {
            victim_units: 2,
            survivor_units: 1,
            bug_grant_uncommitted: true,
        },
        &Config {
            max_schedules: 200_000,
            ..Config::default()
        },
    );
    assert!(
        report.failure.is_some(),
        "seeded lease bug must be detected"
    );
}
