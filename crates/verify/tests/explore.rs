//! Acceptance: the suite explores at least ten thousand distinct
//! schedules across the lock/cv, lease-break, and merge models with zero
//! deadlocks, lost wakeups, or invariant violations.

#[test]
fn suite_is_clean_and_explores_ten_thousand_schedules() {
    let entries = genomedsm_verify::run_suite();
    let mut distinct = 0u64;
    for entry in &entries {
        assert!(
            entry.report.failure.is_none(),
            "{} failed: {}",
            entry.name,
            entry
                .report
                .failure
                .as_ref()
                .map(|f| f.reason.as_str())
                .unwrap_or("")
        );
        distinct += entry.report.distinct;
    }
    assert!(
        distinct >= 10_000,
        "suite explored only {distinct} distinct schedules"
    );
}
