//! `genomedsm-verify`: run the model-checking suite and the seeded
//! regression checks, printing one row per model.
//!
//! Exit status is non-zero if any healthy model fails, the suite explored
//! fewer than 10 000 distinct schedules, or a seeded bug is not found and
//! deterministically replayed from its printed seed.

use genomedsm_verify::models::{
    admission::AdmissionModel, inversion::InversionModel, merge::MergeModel, rejoin::RejoinModel,
    retransmit::RetransmitModel,
};
use genomedsm_verify::run_suite;
use shuttle::Config;

fn main() {
    let mut failed = false;

    println!("== healthy protocol suite ==");
    println!(
        "{:<34} {:>9} {:>9} {:>6} {:>9}  result",
        "model", "schedules", "distinct", "depth", "exhausted"
    );
    let mut distinct_total: u64 = 0;
    for entry in run_suite() {
        let r = &entry.report;
        distinct_total += r.distinct;
        let result = match &r.failure {
            None => "ok".to_string(),
            Some(f) => {
                failed = true;
                format!("FAIL: {}", f.reason)
            }
        };
        println!(
            "{:<34} {:>9} {:>9} {:>6} {:>9}  {}",
            entry.name, r.schedules, r.distinct, r.max_depth, r.exhausted, result
        );
    }
    println!("total distinct schedules: {distinct_total}");
    if distinct_total < 10_000 {
        println!("FAIL: suite explored fewer than 10000 distinct schedules");
        failed = true;
    }

    println!();
    println!("== seeded regressions (must be found and replayed) ==");
    failed |= !check_inversion_regression();
    failed |= !check_permit_regression();
    failed |= !check_drop_on_reject_regression();
    failed |= !check_evict_before_ack_regression();
    failed |= !check_skipped_invalidation_regression();

    if failed {
        std::process::exit(1);
    }
    println!();
    println!("verify: all models clean, all seeded bugs found and replayed");
}

/// The lock-order inversion between the page lock and the lease table:
/// random exploration must hit the AB-BA deadlock, print its seed, and
/// replay the identical failing schedule from that seed alone.
fn check_inversion_regression() -> bool {
    let spec = InversionModel {
        inverted: true,
        rounds: 2,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let Some(failure) = report.failure else {
        println!("inversion/page-lock-vs-lease-table: FAIL (deadlock not found)");
        return false;
    };
    let Some(seed) = failure.seed else {
        println!("inversion/page-lock-vs-lease-table: FAIL (no seed recorded)");
        return false;
    };
    println!(
        "inversion/page-lock-vs-lease-table: found `{}`",
        failure.reason
    );
    println!("  seed {seed:#018x}, schedule {:?}", failure.schedule);
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    match replay.failure {
        Some(rf) if rf.reason == failure.reason && rf.schedule == failure.schedule => {
            println!("  replay from seed: identical failure reproduced — ok");
            true
        }
        Some(rf) => {
            println!(
                "  replay from seed: DIVERGED ({} / {:?})",
                rf.reason, rf.schedule
            );
            false
        }
        None => {
            println!("  replay from seed: FAIL (did not re-fail)");
            false
        }
    }
}

/// The rejected drop-on-reject admission design (reject returns
/// `Overloaded` without recording it) must lose a request: random
/// exploration has to find the accounting hole, print its seed, and
/// replay the identical failing schedule from that seed alone.
fn check_drop_on_reject_regression() -> bool {
    let spec = AdmissionModel {
        clients: 2,
        requests_each: 2,
        capacity: 1,
        workers: 1,
        bug_drop_on_reject: true,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let Some(failure) = report.failure else {
        println!("admission/drop-on-reject: FAIL (lost request not found)");
        return false;
    };
    if !failure.reason.contains("request lost") {
        println!(
            "admission/drop-on-reject: FAIL (wrong failure: {})",
            failure.reason
        );
        return false;
    }
    let Some(seed) = failure.seed else {
        println!("admission/drop-on-reject: FAIL (no seed recorded)");
        return false;
    };
    println!("admission/drop-on-reject: found `{}`", failure.reason);
    println!("  seed {seed:#018x}, schedule {:?}", failure.schedule);
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    match replay.failure {
        Some(rf) if rf.reason == failure.reason && rf.schedule == failure.schedule => {
            println!("  replay from seed: identical failure reproduced — ok");
            true
        }
        Some(rf) => {
            println!(
                "  replay from seed: DIVERGED ({} / {:?})",
                rf.reason, rf.schedule
            );
            false
        }
        None => {
            println!("  replay from seed: FAIL (did not re-fail)");
            false
        }
    }
}

/// The reply cache evicted when the reply is *sent* instead of when it
/// is acked: a retransmitted duplicate must then be re-executed, and
/// random exploration has to find that double execution, print its seed,
/// and replay the identical failing schedule from the seed alone.
fn check_evict_before_ack_regression() -> bool {
    let spec = RetransmitModel {
        msgs: 2,
        window: 2,
        dup_budget: 1,
        swap_budget: 1,
        bug_evict_before_ack: true,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let Some(failure) = report.failure else {
        println!("retransmit/evict-before-ack: FAIL (double execution not found)");
        return false;
    };
    if !failure.reason.contains("executed 2 times") {
        println!(
            "retransmit/evict-before-ack: FAIL (wrong failure: {})",
            failure.reason
        );
        return false;
    }
    let Some(seed) = failure.seed else {
        println!("retransmit/evict-before-ack: FAIL (no seed recorded)");
        return false;
    };
    println!("retransmit/evict-before-ack: found `{}`", failure.reason);
    println!("  seed {seed:#018x}, schedule {:?}", failure.schedule);
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    match replay.failure {
        Some(rf) if rf.reason == failure.reason && rf.schedule == failure.schedule => {
            println!("  replay from seed: identical failure reproduced — ok");
            true
        }
        Some(rf) => {
            println!(
                "  replay from seed: DIVERGED ({} / {:?})",
                rf.reason, rf.schedule
            );
            false
        }
        None => {
            println!("  replay from seed: FAIL (did not re-fail)");
            false
        }
    }
}

/// The rejoin variant that hands the joiner its role back *without*
/// invalidating its stale page cache must serve pre-crash column data:
/// random exploration has to catch the divergence from the never-crashed
/// run, print its seed, and replay the identical schedule from it.
fn check_skipped_invalidation_regression() -> bool {
    let spec = RejoinModel {
        units: 2,
        bug_skip_invalidation: true,
        bug_admit_mid_round: false,
    };
    let report = shuttle::check_random(&spec, &Config::default());
    let Some(failure) = report.failure else {
        println!("rejoin/skip-invalidation: FAIL (stale columns not found)");
        return false;
    };
    if !failure.reason.contains("saved columns diverge") {
        println!(
            "rejoin/skip-invalidation: FAIL (wrong failure: {})",
            failure.reason
        );
        return false;
    }
    let Some(seed) = failure.seed else {
        println!("rejoin/skip-invalidation: FAIL (no seed recorded)");
        return false;
    };
    println!("rejoin/skip-invalidation: found `{}`", failure.reason);
    println!("  seed {seed:#018x}, schedule {:?}", failure.schedule);
    let replay = shuttle::replay_seed(&spec, seed, &Config::default());
    match replay.failure {
        Some(rf) if rf.reason == failure.reason && rf.schedule == failure.schedule => {
            println!("  replay from seed: identical failure reproduced — ok");
            true
        }
        Some(rf) => {
            println!(
                "  replay from seed: DIVERGED ({} / {:?})",
                rf.reason, rf.schedule
            );
            false
        }
        None => {
            println!("  replay from seed: FAIL (did not re-fail)");
            false
        }
    }
}

/// The rejected permit-counting merge gate must deadlock.
fn check_permit_regression() -> bool {
    let report = shuttle::check_exhaustive(
        &MergeModel {
            jobs: 2,
            workers: 2,
            window: 1,
            permit_bug: true,
        },
        &Config::default(),
    );
    match report.failure {
        Some(f) if f.reason.contains("deadlock") => {
            println!("merge/permit-counting: found `{}` — ok", f.reason);
            true
        }
        Some(f) => {
            println!("merge/permit-counting: FAIL (wrong failure: {})", f.reason);
            false
        }
        None => {
            println!("merge/permit-counting: FAIL (deadlock not found)");
            false
        }
    }
}
