//! Model of the UDP transport's per-link retransmit/dedup window
//! (`genomedsm_dsm::transport::udp`) under reordering and duplication.
//!
//! One directed link carries `msgs` requests. The sender keeps up to
//! `window` fresh requests in flight and may retransmit any unacked one
//! at any moment (a timeout firing is a scheduler choice, not a timer).
//! The adversary may additionally duplicate in-flight datagrams
//! (`dup_budget`) and swap adjacent ones (`swap_budget`) — the loopback
//! chaos the socket tests inject for real. The receiver mirrors the
//! transport + daemon dedup discipline:
//!
//! * a fresh in-order request (`seq == next`) is **executed** (applied to
//!   the app state), its reply is cached, and the reply is sent;
//! * a future request (`seq > next`) is stashed until the gap fills
//!   (the transport's reorder stash);
//! * a duplicate (`seq < next`) is answered from the **reply cache** —
//!   re-execution would break exactly-once;
//! * the cached reply is evicted only when the sender confirms it
//!   received the reply (the ack), because until then a retransmitted
//!   duplicate can still arrive and must be answered from the cache.
//!
//! Checked properties: every request is executed **exactly once**, in
//! seq order, the stash never exceeds the window, and nothing is left in
//! flight at the end.
//!
//! The `bug_evict_before_ack` knob is the provably-broken variant: the
//! receiver evicts the cached reply the moment the reply is *sent*,
//! before the sender's ack. A duplicate that is still in flight (or a
//! retransmission racing the reply) then finds no cached reply and has
//! to re-execute the request to answer it — a double execution the
//! checker finds in a handful of steps.

use shuttle::{Ctx, Process, Spec};
use std::collections::BTreeSet;

/// How many times the sender may retransmit each request. The link never
/// loses datagrams in this model, so retransmissions are pure adversity;
/// two per request already exposes every cache-lifetime race.
const RETRIES: usize = 2;

/// Shared state of the link: the three in-flight channels plus both
/// endpoints' protocol state.
pub struct LinkWorld {
    /// In-flight request seqs, head = next to be received.
    requests: Vec<usize>,
    /// In-flight reply seqs.
    replies: Vec<usize>,
    /// In-flight "reply received" confirmations (evict permissions).
    evict_acks: Vec<usize>,
    // --- sender ---
    next_to_send: usize,
    /// Reply received for seq (sender side).
    acked: Vec<bool>,
    retransmit_left: Vec<usize>,
    // --- receiver ---
    /// Next fresh seq the receiver will execute.
    next: usize,
    /// Future seqs held back until the gap fills.
    stash: BTreeSet<usize>,
    /// Executed seqs whose reply is still cached.
    reply_cache: BTreeSet<usize>,
    /// Per-seq execution count (the exactly-once ledger).
    applied: Vec<u32>,
    /// Application order.
    log: Vec<usize>,
    // --- adversary budgets ---
    dup_budget: usize,
    swap_budget: usize,
}

impl LinkWorld {
    fn unacked_sent(&self) -> usize {
        (0..self.next_to_send).filter(|&s| !self.acked[s]).count()
    }

    /// Executes seq `s`: apply, cache the reply, send it. In bug mode the
    /// cache entry dies immediately ("evicted before ack").
    fn execute(&mut self, s: usize, bug: bool) {
        self.applied[s] += 1;
        self.log.push(s);
        self.reply_cache.insert(s);
        self.replies.push(s);
        if bug {
            self.reply_cache.remove(&s);
        }
    }
}

/// Sender half A: injects fresh requests while the window has room.
struct SendProc {
    msgs: usize,
    window: usize,
}

impl Process<LinkWorld> for SendProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        w.next_to_send < self.msgs && w.unacked_sent() < self.window
    }
    fn done(&self, w: &LinkWorld) -> bool {
        w.next_to_send == self.msgs
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        let s = w.next_to_send;
        w.requests.push(s);
        w.next_to_send += 1;
        ctx.trace(format!("send request {s}"));
    }
}

/// Sender half B: a timeout firing — retransmit the lowest unacked
/// request that still has retry budget.
struct RetransmitProc;

impl RetransmitProc {
    fn candidate(w: &LinkWorld) -> Option<usize> {
        (0..w.next_to_send).find(|&s| !w.acked[s] && w.retransmit_left[s] > 0)
    }
}

impl Process<LinkWorld> for RetransmitProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        Self::candidate(w).is_some()
    }
    fn done(&self, w: &LinkWorld) -> bool {
        // No more retransmissions will ever be possible: everything sent
        // is acked or out of budget, and sending is over.
        w.next_to_send == w.acked.len() && Self::candidate(w).is_none()
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        if let Some(s) = Self::candidate(w) {
            w.retransmit_left[s] -= 1;
            w.requests.push(s);
            ctx.trace(format!("retransmit request {s}"));
        }
    }
}

/// Sender half C: consumes replies; the first reply for a seq acks it
/// and grants the receiver permission to evict the cached reply.
struct ReplyProc;

impl Process<LinkWorld> for ReplyProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        !w.replies.is_empty()
    }
    fn done(&self, w: &LinkWorld) -> bool {
        w.replies.is_empty() && w.acked.iter().all(|&a| a) && w.requests.is_empty()
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        let s = w.replies.remove(0);
        if w.acked[s] {
            ctx.trace(format!("duplicate reply {s} ignored"));
        } else {
            w.acked[s] = true;
            w.evict_acks.push(s);
            ctx.trace(format!("reply {s} acked"));
        }
    }
}

/// The receiver: transport reorder window + daemon reply cache.
struct ReceiverProc {
    bug_evict_before_ack: bool,
}

impl Process<LinkWorld> for ReceiverProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        !w.requests.is_empty() || !w.evict_acks.is_empty()
    }
    fn done(&self, w: &LinkWorld) -> bool {
        w.requests.is_empty()
            && w.evict_acks.is_empty()
            && w.replies.is_empty()
            && w.acked.iter().all(|&a| a)
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        if !w.evict_acks.is_empty() {
            let s = w.evict_acks.remove(0);
            w.reply_cache.remove(&s);
            ctx.trace(format!("evict cached reply {s}"));
            return;
        }
        let s = w.requests.remove(0);
        if s == w.next {
            w.execute(s, self.bug_evict_before_ack);
            w.next += 1;
            ctx.trace(format!("execute request {s}"));
            // Drain the stash now that the gap filled.
            while w.stash.remove(&w.next) {
                let n = w.next;
                w.execute(n, self.bug_evict_before_ack);
                w.next += 1;
                ctx.trace(format!("execute stashed request {n}"));
            }
        } else if s > w.next {
            w.stash.insert(s);
            ctx.trace(format!("stash future request {s}"));
        } else if w.reply_cache.contains(&s) {
            w.replies.push(s);
            ctx.trace(format!("duplicate request {s}: resend cached reply"));
        } else if self.bug_evict_before_ack {
            // The dedup record is gone; the only way to answer is to run
            // the request again — the double execution the checker must
            // catch.
            w.execute(s, true);
            ctx.trace(format!("duplicate request {s}: cache miss, RE-EXECUTED"));
        } else {
            // Healthy mode: the cache is only evicted after the sender
            // acked the reply, so this duplicate is stale and needs no
            // answer.
            ctx.trace(format!("stale duplicate request {s} dropped"));
        }
    }
}

/// Adversary: duplicate the datagram at the head of the request channel.
struct DupProc;

impl Process<LinkWorld> for DupProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        w.dup_budget > 0 && !w.requests.is_empty()
    }
    fn done(&self, w: &LinkWorld) -> bool {
        // Budget spent, or no datagram will ever be in flight again.
        w.dup_budget == 0 || (w.requests.is_empty() && w.acked.iter().all(|&a| a))
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        let s = w.requests[0];
        w.requests.push(s);
        w.dup_budget -= 1;
        ctx.trace(format!("duplicate in-flight request {s}"));
    }
}

/// Adversary: swap the two head datagrams of the request channel
/// (adjacent swaps compose into arbitrary reorderings across steps).
struct SwapProc;

impl Process<LinkWorld> for SwapProc {
    fn ready(&self, w: &LinkWorld) -> bool {
        w.swap_budget > 0 && w.requests.len() >= 2
    }
    fn done(&self, w: &LinkWorld) -> bool {
        // Budget spent, or two datagrams can never be in flight again.
        w.swap_budget == 0 || (w.requests.is_empty() && w.acked.iter().all(|&a| a))
    }
    fn step(&mut self, w: &mut LinkWorld, ctx: &mut Ctx) {
        w.requests.swap(0, 1);
        w.swap_budget -= 1;
        ctx.trace(format!(
            "reorder: {} now ahead of {}",
            w.requests[0], w.requests[1]
        ));
    }
}

/// The per-link retransmit/dedup model.
pub struct RetransmitModel {
    /// Requests to deliver exactly once.
    pub msgs: usize,
    /// Sender in-flight window (also bounds the receiver stash).
    pub window: usize,
    /// Datagram duplications the adversary may inject.
    pub dup_budget: usize,
    /// Adjacent reorder swaps the adversary may perform.
    pub swap_budget: usize,
    /// Evict the cached reply when the reply is sent instead of when it
    /// is acked — the provably-broken variant.
    pub bug_evict_before_ack: bool,
}

impl Spec for RetransmitModel {
    type S = LinkWorld;

    fn build(&self) -> (LinkWorld, Vec<Box<dyn Process<LinkWorld>>>) {
        let world = LinkWorld {
            requests: Vec::new(),
            replies: Vec::new(),
            evict_acks: Vec::new(),
            next_to_send: 0,
            acked: vec![false; self.msgs],
            retransmit_left: vec![RETRIES; self.msgs],
            next: 0,
            stash: BTreeSet::new(),
            reply_cache: BTreeSet::new(),
            applied: vec![0; self.msgs],
            log: Vec::new(),
            dup_budget: self.dup_budget,
            swap_budget: self.swap_budget,
        };
        let procs: Vec<Box<dyn Process<LinkWorld>>> = vec![
            Box::new(SendProc {
                msgs: self.msgs,
                window: self.window,
            }),
            Box::new(RetransmitProc),
            Box::new(ReplyProc),
            Box::new(ReceiverProc {
                bug_evict_before_ack: self.bug_evict_before_ack,
            }),
            Box::new(DupProc),
            Box::new(SwapProc),
        ];
        (world, procs)
    }

    fn invariant(&self, w: &LinkWorld) -> Result<(), String> {
        if let Some(s) = (0..self.msgs).find(|&s| w.applied[s] > 1) {
            return Err(format!(
                "exactly-once violated: request {s} executed {} times",
                w.applied[s]
            ));
        }
        if w.stash.len() > self.window {
            return Err(format!(
                "reorder stash overran the window: {} held with window {}",
                w.stash.len(),
                self.window
            ));
        }
        if w.log.windows(2).any(|p| p[1] != p[0] + 1) || w.log.first().is_some_and(|&f| f != 0) {
            return Err(format!("delivery order violated: log {:?}", w.log));
        }
        Ok(())
    }

    fn terminal(&self, w: &LinkWorld) -> Result<(), String> {
        if let Some(s) = (0..self.msgs).find(|&s| w.applied[s] != 1) {
            return Err(format!(
                "request {s} executed {} times at the end",
                w.applied[s]
            ));
        }
        if !w.requests.is_empty() || !w.replies.is_empty() || !w.evict_acks.is_empty() {
            return Err("datagrams left in flight after completion".into());
        }
        if !w.stash.is_empty() {
            return Err(format!("stash not drained: {:?}", w.stash));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn healthy_link_is_exactly_once_exhaustively() {
        let report = shuttle::check_exhaustive(
            &RetransmitModel {
                msgs: 2,
                window: 2,
                dup_budget: 1,
                swap_budget: 1,
                bug_evict_before_ack: false,
            },
            &Config {
                max_schedules: 200_000,
                ..Config::default()
            },
        );
        assert!(
            report.failure.is_none(),
            "healthy retransmit window failed: {}",
            report.failure.unwrap()
        );
        assert!(report.schedules > 100);
    }

    #[test]
    fn evict_before_ack_double_executes() {
        let report = shuttle::check_exhaustive(
            &RetransmitModel {
                msgs: 2,
                window: 2,
                dup_budget: 1,
                swap_budget: 1,
                bug_evict_before_ack: true,
            },
            &Config {
                max_schedules: 200_000,
                ..Config::default()
            },
        );
        let failure = report.failure.expect("early eviction must double-execute");
        assert!(
            failure.reason.contains("executed 2 times"),
            "unexpected failure: {}",
            failure.reason
        );
    }
}
