//! Model of the DSM lock acquire/release protocol (daemon `LockState`).
//!
//! Mirrors `genomedsm_dsm::daemon::handle_acquire` / `handle_release` at
//! the daemon's real atomicity (one message handler = one step): a single
//! manager-owned lock with a FIFO waiter queue, an append-only notice
//! history with per-client `last_seq` watermarks, and grants that carry
//! exactly the notices newer than the acquirer's watermark. The protected
//! data is abstracted to a version counter: each critical section
//! increments the holder's cached *view* and commits it to the *home* on
//! release, exactly like a page diff flushed by `jia_unlock`.
//!
//! Checked properties:
//!
//! * **mutual exclusion** — at most one client inside a critical section,
//!   and only the manager-recorded holder;
//! * **scope consistency** — a client entering its critical section sees
//!   the home's current committed version (a dropped or stale write
//!   notice would leave it reading an old cached view);
//! * **happens-before** — the acquirer's vector clock dominates the last
//!   releaser's clock at every CS entry (the notice handoff is a real
//!   release/acquire edge);
//! * **no deadlock / no lost grant** — structural, via the checker;
//! * **terminal** — all sections ran: the home version equals the total
//!   section count and the lock ends free with no queued waiter.

use shuttle::{Ctx, Process, Spec, VectorClock};
use std::collections::VecDeque;

/// A grant reply in flight from the manager to one client.
struct Grant {
    /// The lock's notice sequence number at grant time (the client's next
    /// watermark).
    seq: u64,
    /// Latest committed version among notices newer than the client's
    /// watermark (`None` = no news; keep the cached view).
    latest: Option<u64>,
    /// The lock object's vector clock at grant time.
    clock: VectorClock,
}

/// Shared state: the manager's lock record plus the modeled data page.
pub struct LockWorld {
    holder: Option<usize>,
    waiters: VecDeque<(usize, u64)>,
    /// `(seq, committed version)` — the write-notice history.
    history: Vec<(u64, u64)>,
    next_seq: u64,
    grants: Vec<Option<Grant>>,
    /// Committed version at the home node.
    version: u64,
    /// Each client's cached view of the data.
    view: Vec<u64>,
    in_cs: Vec<bool>,
    /// Critical sections entered so far (for reporting).
    pub cs_entered: u64,
    lock_clock: VectorClock,
    last_release_clock: VectorClock,
    violations: Vec<String>,
}

impl LockWorld {
    fn new(clients: usize) -> Self {
        Self {
            holder: None,
            waiters: VecDeque::new(),
            history: Vec::new(),
            next_seq: 0,
            grants: (0..clients).map(|_| None).collect(),
            version: 0,
            view: vec![0; clients],
            in_cs: vec![false; clients],
            cs_entered: 0,
            lock_clock: VectorClock::new(clients),
            last_release_clock: VectorClock::new(clients),
            violations: Vec::new(),
        }
    }

    /// `daemon::Daemon::notices_since`, collapsed to the newest version.
    fn latest_since(&self, last_seq: u64) -> Option<u64> {
        self.history
            .iter()
            .rev()
            .find(|(s, _)| *s > last_seq)
            .map(|(_, v)| *v)
    }

    /// `handle_acquire`: immediate grant when free, else FIFO queue.
    fn handle_acquire(&mut self, from: usize, last_seq: u64) {
        if self.holder.is_none() {
            self.holder = Some(from);
            self.grants[from] = Some(Grant {
                seq: self.next_seq,
                latest: self.latest_since(last_seq),
                clock: self.lock_clock.clone(),
            });
        } else {
            self.waiters.push_back((from, last_seq));
        }
    }

    /// `handle_release`: append the interval's notice, free the lock, and
    /// grant the next queued waiter (with notices since *its* watermark).
    fn handle_release(&mut self, from: usize, committed: u64) {
        if self.holder != Some(from) {
            self.violations
                .push(format!("client {from} released a lock it does not hold"));
            return;
        }
        self.version = committed;
        self.next_seq += 1;
        self.history.push((self.next_seq, committed));
        self.holder = None;
        if let Some((next, wseq)) = self.waiters.pop_front() {
            self.holder = Some(next);
            self.grants[next] = Some(Grant {
                seq: self.next_seq,
                latest: self.latest_since(wseq),
                clock: self.lock_clock.clone(),
            });
        }
    }
}

enum ClientState {
    Acquire,
    AwaitGrant,
    Write,
    Release,
    Done,
}

struct Client {
    me: usize,
    state: ClientState,
    remaining: usize,
    last_seq: u64,
}

impl Process<LockWorld> for Client {
    fn ready(&self, w: &LockWorld) -> bool {
        match self.state {
            ClientState::AwaitGrant => w.grants[self.me].is_some(),
            ClientState::Done => false,
            _ => true,
        }
    }

    fn done(&self, _w: &LockWorld) -> bool {
        matches!(self.state, ClientState::Done)
    }

    fn step(&mut self, w: &mut LockWorld, ctx: &mut Ctx) {
        let me = self.me;
        match self.state {
            ClientState::Acquire => {
                w.handle_acquire(me, self.last_seq);
                ctx.trace(format!("acquire(last_seq={})", self.last_seq));
                self.state = ClientState::AwaitGrant;
            }
            ClientState::AwaitGrant => {
                let Some(grant) = w.grants[me].take() else {
                    w.violations
                        .push(format!("client {me} woke without a grant"));
                    return;
                };
                self.last_seq = grant.seq;
                if let Some(v) = grant.latest {
                    // Write notice: invalidate the cached copy and refetch
                    // from home (collapsed to one step; the home cannot
                    // change while this client holds the lock).
                    w.view[me] = v;
                }
                ctx.acquire(&grant.clock);
                w.in_cs[me] = true;
                w.cs_entered += 1;
                if w.view[me] != w.version {
                    w.violations.push(format!(
                        "scope consistency violated: client {me} entered its CS seeing \
                         version {} but home holds {}",
                        w.view[me], w.version
                    ));
                }
                if !ctx.clock().dominates(&w.last_release_clock) {
                    w.violations.push(format!(
                        "happens-before violated: client {me}'s CS entry is concurrent \
                         with the previous release"
                    ));
                }
                ctx.trace(format!("granted seq={} view={}", self.last_seq, w.view[me]));
                self.state = ClientState::Write;
            }
            ClientState::Write => {
                w.view[me] += 1;
                ctx.trace(format!("write view={}", w.view[me]));
                self.state = ClientState::Release;
            }
            ClientState::Release => {
                w.in_cs[me] = false;
                ctx.release(&mut w.lock_clock);
                w.last_release_clock = w.lock_clock.clone();
                let committed = w.view[me];
                w.handle_release(me, committed);
                ctx.trace(format!("release commit={committed}"));
                self.remaining -= 1;
                self.state = if self.remaining == 0 {
                    ClientState::Done
                } else {
                    ClientState::Acquire
                };
            }
            ClientState::Done => {}
        }
    }
}

/// The lock-protocol model: `clients` nodes each running `sections`
/// lock-protected increments of one shared counter.
pub struct LockModel {
    /// Number of contending client nodes.
    pub clients: usize,
    /// Critical sections per client.
    pub sections: usize,
}

impl Spec for LockModel {
    type S = LockWorld;

    fn build(&self) -> (LockWorld, Vec<Box<dyn Process<LockWorld>>>) {
        let procs: Vec<Box<dyn Process<LockWorld>>> = (0..self.clients)
            .map(|me| {
                Box::new(Client {
                    me,
                    state: ClientState::Acquire,
                    remaining: self.sections,
                    last_seq: 0,
                }) as Box<dyn Process<LockWorld>>
            })
            .collect();
        (LockWorld::new(self.clients), procs)
    }

    fn invariant(&self, w: &LockWorld) -> Result<(), String> {
        if let Some(v) = w.violations.first() {
            return Err(v.clone());
        }
        let inside: Vec<usize> = (0..w.in_cs.len()).filter(|&i| w.in_cs[i]).collect();
        if inside.len() > 1 {
            return Err(format!(
                "mutual exclusion violated: {inside:?} all inside the CS"
            ));
        }
        if let Some(&i) = inside.first() {
            if w.holder != Some(i) {
                return Err(format!(
                    "client {i} is inside the CS but the manager records holder {:?}",
                    w.holder
                ));
            }
        }
        Ok(())
    }

    fn terminal(&self, w: &LockWorld) -> Result<(), String> {
        let want = (self.clients * self.sections) as u64;
        if w.version != want {
            return Err(format!(
                "lost update: home version {} after {want} critical sections",
                w.version
            ));
        }
        if w.holder.is_some() || !w.waiters.is_empty() {
            return Err("lock not free at termination".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn exhaustive_two_clients() {
        let report = shuttle::check_exhaustive(
            &LockModel {
                clients: 2,
                sections: 2,
            },
            &Config {
                max_schedules: 20_000,
                ..Config::default()
            },
        );
        report.assert_ok();
        assert!(report.schedules > 100, "trivial exploration");
    }

    #[test]
    fn random_three_clients() {
        let report = shuttle::check_random(
            &LockModel {
                clients: 3,
                sections: 2,
            },
            &Config {
                iterations: 500,
                ..Config::default()
            },
        );
        report.assert_ok();
    }

    /// Sanity: a deliberately broken manager (watermark ignored, no
    /// notices ever granted) must be caught as a scope violation.
    struct BrokenNotices;

    impl Spec for BrokenNotices {
        type S = LockWorld;

        fn invariant(&self, w: &LockWorld) -> Result<(), String> {
            LockModel {
                clients: 2,
                sections: 2,
            }
            .invariant(w)
        }

        fn build(&self) -> (LockWorld, Vec<Box<dyn Process<LockWorld>>>) {
            // Clients whose watermark is already past any seq the manager
            // will ever issue: `latest_since` returns None forever, so no
            // write notice is ever applied — a stale-view bug by design.
            let broken: Vec<Box<dyn Process<LockWorld>>> = (0..2)
                .map(|me| {
                    Box::new(Client {
                        me,
                        state: ClientState::Acquire,
                        remaining: 2,
                        last_seq: u64::MAX,
                    }) as Box<dyn Process<LockWorld>>
                })
                .collect();
            (LockWorld::new(2), broken)
        }
    }

    #[test]
    fn stale_watermarks_are_caught_as_scope_violations() {
        let report = shuttle::check_exhaustive(&BrokenNotices, &Config::default());
        let f = report.failure.expect("stale views must be detected");
        assert!(f.reason.contains("scope consistency"), "{}", f.reason);
    }
}
