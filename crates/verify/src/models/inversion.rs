//! Model of the page-lock / lease-table lock-order discipline.
//!
//! The DSM daemon takes two internal locks on the failure path: the
//! per-page lock (guarding the cached copy and its twin) and the lease
//! table (guarding holder/waiter records for break-on-death). The
//! project-wide discipline is **page lock first, lease table second**.
//! This model runs two daemon threads through their lock-protected
//! critical sections; the `inverted` knob makes the second thread take
//! the locks in the opposite order — the classic AB-BA inversion — which
//! the checker must expose as a deadlock, with a deterministic seed
//! replay. The same seeded bug is caught at runtime by the lock-order
//! graph in `genomedsm-dsm` (see `lock_order.rs`), giving the regression
//! two independent tripwires.

use shuttle::{Ctx, Process, Spec};

/// Lock id of the per-page lock.
pub const PAGE_LOCK: usize = 0;
/// Lock id of the lease table.
pub const LEASE_TABLE: usize = 1;

/// Shared state: two plain mutexes modeled as holder slots.
pub struct TwoLocks {
    holder: [Option<usize>; 2],
    /// Completed critical sections (both locks held), per process.
    pub sections: [u32; 2],
}

enum ThreadState {
    First,
    Second,
    Work,
    Unwind,
    Done,
}

struct DaemonThread {
    me: usize,
    /// Lock ids in acquisition order for this thread.
    order: [usize; 2],
    state: ThreadState,
    rounds: u32,
}

impl Process<TwoLocks> for DaemonThread {
    fn ready(&self, w: &TwoLocks) -> bool {
        match self.state {
            ThreadState::First => w.holder[self.order[0]].is_none(),
            ThreadState::Second => w.holder[self.order[1]].is_none(),
            ThreadState::Done => false,
            _ => true,
        }
    }

    fn done(&self, _w: &TwoLocks) -> bool {
        matches!(self.state, ThreadState::Done)
    }

    fn step(&mut self, w: &mut TwoLocks, ctx: &mut Ctx) {
        match self.state {
            ThreadState::First => {
                w.holder[self.order[0]] = Some(self.me);
                ctx.trace(format!("lock {}", name(self.order[0])));
                self.state = ThreadState::Second;
            }
            ThreadState::Second => {
                w.holder[self.order[1]] = Some(self.me);
                ctx.trace(format!("lock {}", name(self.order[1])));
                self.state = ThreadState::Work;
            }
            ThreadState::Work => {
                w.sections[self.me] += 1;
                ctx.trace("critical section");
                self.state = ThreadState::Unwind;
            }
            ThreadState::Unwind => {
                w.holder[self.order[1]] = None;
                w.holder[self.order[0]] = None;
                ctx.trace("unlock both");
                self.rounds -= 1;
                self.state = if self.rounds == 0 {
                    ThreadState::Done
                } else {
                    ThreadState::First
                };
            }
            ThreadState::Done => {}
        }
    }
}

fn name(lock: usize) -> &'static str {
    if lock == PAGE_LOCK {
        "page_lock"
    } else {
        "lease_table"
    }
}

/// Two daemon threads crossing the page lock and the lease table.
pub struct InversionModel {
    /// When true, thread 1 takes lease table before page lock (AB-BA).
    pub inverted: bool,
    /// Critical sections per thread.
    pub rounds: u32,
}

impl Spec for InversionModel {
    type S = TwoLocks;

    fn build(&self) -> (TwoLocks, Vec<Box<dyn Process<TwoLocks>>>) {
        let second_order = if self.inverted {
            [LEASE_TABLE, PAGE_LOCK]
        } else {
            [PAGE_LOCK, LEASE_TABLE]
        };
        let procs: Vec<Box<dyn Process<TwoLocks>>> = vec![
            Box::new(DaemonThread {
                me: 0,
                order: [PAGE_LOCK, LEASE_TABLE],
                state: ThreadState::First,
                rounds: self.rounds,
            }),
            Box::new(DaemonThread {
                me: 1,
                order: second_order,
                state: ThreadState::First,
                rounds: self.rounds,
            }),
        ];
        (
            TwoLocks {
                holder: [None, None],
                sections: [0, 0],
            },
            procs,
        )
    }

    fn terminal(&self, w: &TwoLocks) -> Result<(), String> {
        if w.sections != [self.rounds, self.rounds] {
            return Err(format!(
                "sections ran {:?}, want {} each",
                w.sections, self.rounds
            ));
        }
        if w.holder.iter().any(Option::is_some) {
            return Err("a lock is still held at termination".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn consistent_order_is_deadlock_free() {
        let report = shuttle::check_exhaustive(
            &InversionModel {
                inverted: false,
                rounds: 2,
            },
            &Config::default(),
        );
        report.assert_ok();
        assert!(report.exhausted);
    }

    #[test]
    fn inverted_order_deadlocks_and_replays() {
        let report = shuttle::check_random(
            &InversionModel {
                inverted: true,
                rounds: 2,
            },
            &Config::default(),
        );
        let f = report.failure.expect("AB-BA inversion must deadlock");
        assert!(f.reason.contains("deadlock"), "{}", f.reason);
        let seed = f.seed.expect("random failures carry their seed");
        let replay = shuttle::replay_seed(
            &InversionModel {
                inverted: true,
                rounds: 2,
            },
            seed,
            &Config::default(),
        );
        let rf = replay.failure.expect("seed replay must re-fail");
        assert_eq!(rf.reason, f.reason);
        assert_eq!(rf.schedule, f.schedule);
    }
}
