//! Model of the DSM condition-variable handoff (daemon `CvState`).
//!
//! The daemon gives `setcv`/`waitcv` *counting* semantics: a signal that
//! arrives while no waiter is queued is remembered as a pending grant
//! (with the signaller's data snapshot and vector clock), and a waiter
//! that arrives while grants are pending consumes one immediately. This
//! is what makes the real protocol immune to the classic lost-wakeup
//! race, and it is exactly the property this model checks: across every
//! interleaving of producers signalling and consumers waiting,
//!
//! * **no lost wakeup** — every signal is eventually consumed by exactly
//!   one waiter (terminal: `consumed == signalled`, no process stuck —
//!   a dropped signal shows up as a structural deadlock with a consumer
//!   blocked in `AwaitGrant` forever);
//! * **handoff ordering** — each consumer's successively observed data
//!   snapshots are nondecreasing (banked signals are granted FIFO over a
//!   monotone producer counter, so a later wait can never surface an
//!   older snapshot than an earlier one);
//! * **happens-before** — the consumer's clock after the grant dominates
//!   the clock of the producer whose signal it consumed.

use shuttle::{Ctx, Process, Spec, VectorClock};
use std::collections::VecDeque;

/// A pending signal: the producer's published value and clock snapshot.
struct Signal {
    value: u64,
    clock: VectorClock,
}

/// Shared state: the manager's cv record plus the published counter.
pub struct CvWorld {
    /// Signals that arrived with no waiter queued (counting semantics).
    pending: VecDeque<Signal>,
    /// Consumers blocked in `waitcv`, FIFO.
    waiters: VecDeque<usize>,
    /// Grants in flight to consumers.
    grants: Vec<Option<Signal>>,
    /// The producers' shared published value (monotone).
    published: u64,
    /// Total signals sent.
    pub signalled: u64,
    /// Total grants consumed by waiters.
    pub consumed: u64,
    violations: Vec<String>,
}

impl CvWorld {
    fn new(procs: usize) -> Self {
        Self {
            pending: VecDeque::new(),
            waiters: VecDeque::new(),
            grants: (0..procs).map(|_| None).collect(),
            published: 0,
            signalled: 0,
            consumed: 0,
            violations: Vec::new(),
        }
    }

    /// `handle_setcv`: wake the oldest waiter, else bank the signal.
    fn handle_setcv(&mut self, sig: Signal) {
        self.signalled += 1;
        if let Some(w) = self.waiters.pop_front() {
            self.grants[w] = Some(sig);
        } else {
            self.pending.push_back(sig);
        }
    }

    /// `handle_waitcv`: consume a banked signal, else queue as a waiter.
    fn handle_waitcv(&mut self, from: usize) {
        if let Some(sig) = self.pending.pop_front() {
            self.grants[from] = Some(sig);
        } else {
            self.waiters.push_back(from);
        }
    }
}

enum ProducerState {
    Publish,
    Signal,
    Done,
}

struct Producer {
    state: ProducerState,
    remaining: usize,
}

impl Process<CvWorld> for Producer {
    fn ready(&self, _w: &CvWorld) -> bool {
        !matches!(self.state, ProducerState::Done)
    }

    fn done(&self, _w: &CvWorld) -> bool {
        matches!(self.state, ProducerState::Done)
    }

    fn step(&mut self, w: &mut CvWorld, ctx: &mut Ctx) {
        match self.state {
            ProducerState::Publish => {
                w.published += 1;
                ctx.trace(format!("publish {}", w.published));
                self.state = ProducerState::Signal;
            }
            ProducerState::Signal => {
                let sig = Signal {
                    value: w.published,
                    clock: ctx.clock().clone(),
                };
                w.handle_setcv(sig);
                ctx.trace(format!("setcv snapshot={}", w.published));
                self.remaining -= 1;
                self.state = if self.remaining == 0 {
                    ProducerState::Done
                } else {
                    ProducerState::Publish
                };
            }
            ProducerState::Done => {}
        }
    }
}

enum ConsumerState {
    Wait,
    AwaitGrant,
    Done,
}

struct Consumer {
    me: usize,
    state: ConsumerState,
    remaining: usize,
    /// Newest snapshot this consumer has observed (monotonicity check).
    last_value: u64,
}

impl Process<CvWorld> for Consumer {
    fn ready(&self, w: &CvWorld) -> bool {
        match self.state {
            ConsumerState::AwaitGrant => w.grants[self.me].is_some(),
            ConsumerState::Done => false,
            ConsumerState::Wait => true,
        }
    }

    fn done(&self, _w: &CvWorld) -> bool {
        matches!(self.state, ConsumerState::Done)
    }

    fn step(&mut self, w: &mut CvWorld, ctx: &mut Ctx) {
        match self.state {
            ConsumerState::Wait => {
                w.handle_waitcv(self.me);
                ctx.trace("waitcv");
                self.state = ConsumerState::AwaitGrant;
            }
            ConsumerState::AwaitGrant => {
                let Some(sig) = w.grants[self.me].take() else {
                    w.violations
                        .push(format!("consumer {} woke without a grant", self.me));
                    return;
                };
                ctx.acquire(&sig.clock);
                w.consumed += 1;
                if sig.value < self.last_value {
                    w.violations.push(format!(
                        "handoff ordering violated: consumer {} observed snapshot {} \
                         after already seeing {}",
                        self.me, sig.value, self.last_value
                    ));
                }
                self.last_value = sig.value;
                if !ctx.clock().dominates(&sig.clock) {
                    w.violations.push(format!(
                        "happens-before violated: consumer {} is concurrent with the \
                         producer it consumed from",
                        self.me
                    ));
                }
                ctx.trace(format!("granted snapshot={}", sig.value));
                self.remaining -= 1;
                self.state = if self.remaining == 0 {
                    ConsumerState::Done
                } else {
                    ConsumerState::Wait
                };
            }
            ConsumerState::Done => {}
        }
    }
}

/// The cv-handoff model: `producers` nodes each publishing and signalling
/// `signals_each` times, `consumers` nodes collectively consuming every
/// signal (the total signal count must be divisible by `consumers`).
pub struct CvModel {
    /// Number of signalling producer nodes.
    pub producers: usize,
    /// Number of waiting consumer nodes.
    pub consumers: usize,
    /// Signals sent by each producer.
    pub signals_each: usize,
}

impl Spec for CvModel {
    type S = CvWorld;

    fn build(&self) -> (CvWorld, Vec<Box<dyn Process<CvWorld>>>) {
        let total = self.producers * self.signals_each;
        assert!(
            total.is_multiple_of(self.consumers),
            "signal total must divide evenly across consumers"
        );
        let mut procs: Vec<Box<dyn Process<CvWorld>>> = Vec::new();
        for _ in 0..self.producers {
            procs.push(Box::new(Producer {
                state: ProducerState::Publish,
                remaining: self.signals_each,
            }));
        }
        for c in 0..self.consumers {
            procs.push(Box::new(Consumer {
                // Consumer pids follow the producers'.
                me: self.producers + c,
                state: ConsumerState::Wait,
                remaining: total / self.consumers,
                last_value: 0,
            }));
        }
        let n = procs.len();
        (CvWorld::new(n), procs)
    }

    fn invariant(&self, w: &CvWorld) -> Result<(), String> {
        if let Some(v) = w.violations.first() {
            return Err(v.clone());
        }
        if w.consumed > w.signalled {
            return Err(format!(
                "phantom wakeup: {} grants consumed but only {} signals sent",
                w.consumed, w.signalled
            ));
        }
        Ok(())
    }

    fn terminal(&self, w: &CvWorld) -> Result<(), String> {
        let want = (self.producers * self.signals_each) as u64;
        if w.consumed != want {
            return Err(format!(
                "lost wakeup: {} of {want} signals consumed at termination",
                w.consumed
            ));
        }
        if !w.pending.is_empty() || !w.waiters.is_empty() {
            return Err("cv state not drained at termination".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn exhaustive_one_to_one() {
        let report = shuttle::check_exhaustive(
            &CvModel {
                producers: 1,
                consumers: 1,
                signals_each: 3,
            },
            &Config::default(),
        );
        report.assert_ok();
        assert!(report.exhausted, "small model should be fully explored");
    }

    #[test]
    fn exhaustive_two_producers_two_consumers() {
        let report = shuttle::check_exhaustive(
            &CvModel {
                producers: 2,
                consumers: 2,
                signals_each: 1,
            },
            &Config {
                max_schedules: 50_000,
                ..Config::default()
            },
        );
        report.assert_ok();
    }

    /// Sanity: a cv *without* counting semantics (signals to an empty
    /// waiter queue are dropped) must deadlock — the classic lost wakeup.
    struct DroppingCv;

    struct DroppingProducer {
        fired: bool,
    }

    impl Process<CvWorld> for DroppingProducer {
        fn ready(&self, _w: &CvWorld) -> bool {
            !self.fired
        }
        fn done(&self, _w: &CvWorld) -> bool {
            self.fired
        }
        fn step(&mut self, w: &mut CvWorld, ctx: &mut Ctx) {
            w.signalled += 1;
            // Broken semantics: only wake a queued waiter; otherwise the
            // signal evaporates instead of being banked.
            if let Some(waiter) = w.waiters.pop_front() {
                w.grants[waiter] = Some(Signal {
                    value: 1,
                    clock: ctx.clock().clone(),
                });
            }
            self.fired = true;
        }
    }

    impl Spec for DroppingCv {
        type S = CvWorld;
        fn build(&self) -> (CvWorld, Vec<Box<dyn Process<CvWorld>>>) {
            let procs: Vec<Box<dyn Process<CvWorld>>> = vec![
                Box::new(DroppingProducer { fired: false }),
                Box::new(Consumer {
                    me: 1,
                    state: ConsumerState::Wait,
                    remaining: 1,
                    last_value: 0,
                }),
            ];
            (CvWorld::new(2), procs)
        }
    }

    #[test]
    fn dropping_signals_deadlocks_as_lost_wakeup() {
        let report = shuttle::check_exhaustive(&DroppingCv, &Config::default());
        let f = report.failure.expect("lost wakeup must be detected");
        assert!(f.reason.contains("deadlock"), "{}", f.reason);
    }
}
