//! Model of the batch scheduler's windowed in-order merge
//! (`genomedsm_batch::scheduler::run_jobs`).
//!
//! Jobs `0..jobs` are dealt round-robin into per-worker deques. Workers
//! pop their own front, or steal the **lowest-indexed front** from any
//! other deque when theirs is empty — the anti-starvation rule from the
//! real scheduler. Execution is gated by the backpressure window: a
//! worker may start job `idx` only while `idx < merged + window`. A
//! merger consumes completed jobs strictly in index order.
//!
//! Checked properties:
//!
//! * **liveness** — the window gate never wedges: whatever the
//!   interleaving of grabs, steals, executions, and merges, every job is
//!   eventually merged (structural deadlock detection plus the terminal
//!   `merged == jobs` check). This machine-checks the informal liveness
//!   argument in the scheduler's module docs;
//! * **bounded buffering** — at most `window` completed-but-unmerged jobs
//!   exist at any instant;
//! * **strict order** — the merge cursor only ever consumes index
//!   `merged` (by construction, checked via the contiguity invariant).
//!
//! The `permit_bug` knob swaps the window gate for the counting-semaphore
//! design the scheduler docs reject: take a permit to execute, return it
//! on merge. The checker must find its deadlock (a worker holding the
//! last permit for an out-of-order job starves the worker whose job the
//! merger actually needs).

use shuttle::{Ctx, Process, Spec};
use std::collections::VecDeque;

/// Shared state: the deques, the completion buffer, and the merge cursor.
pub struct MergeWorld {
    deques: Vec<VecDeque<usize>>,
    /// Completed-but-unmerged job indices.
    buffer: Vec<usize>,
    /// In-order merge cursor: jobs `0..merged` are merged.
    pub merged: usize,
    /// Permit pool (only consulted in `permit_bug` mode).
    permits: usize,
    window: usize,
    permit_bug: bool,
    violations: Vec<String>,
}

enum WorkerState {
    Grab,
    Exec(usize),
    Done,
}

struct WorkerProc {
    me: usize,
    state: WorkerState,
}

impl WorkerProc {
    /// `pop_or_steal`: own front first, else the lowest-indexed front.
    fn grab(&self, w: &mut MergeWorld) -> Option<usize> {
        if let Some(idx) = w.deques[self.me].pop_front() {
            return Some(idx);
        }
        let victim = (0..w.deques.len())
            .filter(|&d| !w.deques[d].is_empty())
            .min_by_key(|&d| w.deques[d][0])?;
        w.deques[victim].pop_front()
    }
}

impl Process<MergeWorld> for WorkerProc {
    fn ready(&self, w: &MergeWorld) -> bool {
        match self.state {
            WorkerState::Grab => true,
            WorkerState::Exec(idx) => {
                if w.permit_bug {
                    // Buggy gate: need a permit (consumed at exec start,
                    // returned only when the merger retires a job).
                    w.permits > 0
                } else {
                    // Real gate: the backpressure window over the cursor.
                    idx < w.merged + w.window
                }
            }
            WorkerState::Done => false,
        }
    }

    fn done(&self, _w: &MergeWorld) -> bool {
        matches!(self.state, WorkerState::Done)
    }

    fn step(&mut self, w: &mut MergeWorld, ctx: &mut Ctx) {
        match self.state {
            WorkerState::Grab => match self.grab(w) {
                Some(idx) => {
                    ctx.trace(format!("grab job {idx}"));
                    self.state = WorkerState::Exec(idx);
                }
                None => {
                    ctx.trace("no work left");
                    self.state = WorkerState::Done;
                }
            },
            WorkerState::Exec(idx) => {
                if w.permit_bug {
                    w.permits -= 1;
                }
                if w.buffer.contains(&idx) || idx < w.merged {
                    w.violations.push(format!("job {idx} executed twice"));
                }
                w.buffer.push(idx);
                ctx.trace(format!("exec job {idx}"));
                self.state = WorkerState::Grab;
            }
            WorkerState::Done => {}
        }
    }
}

struct MergerProc {
    jobs: usize,
}

impl Process<MergeWorld> for MergerProc {
    fn ready(&self, w: &MergeWorld) -> bool {
        w.merged < self.jobs && w.buffer.contains(&w.merged)
    }

    fn done(&self, w: &MergeWorld) -> bool {
        w.merged == self.jobs
    }

    fn step(&mut self, w: &mut MergeWorld, ctx: &mut Ctx) {
        let cursor = w.merged;
        w.buffer.retain(|&i| i != cursor);
        w.merged += 1;
        if w.permit_bug {
            w.permits += 1;
        }
        ctx.trace(format!("merge job {cursor}"));
    }
}

/// The windowed-merge model.
pub struct MergeModel {
    /// Total jobs to execute and merge.
    pub jobs: usize,
    /// Worker count (deques are dealt `idx % workers`).
    pub workers: usize,
    /// Backpressure window (or initial permit pool in bug mode).
    pub window: usize,
    /// Use the rejected counting-semaphore gate instead of the window.
    pub permit_bug: bool,
}

impl Spec for MergeModel {
    type S = MergeWorld;

    fn build(&self) -> (MergeWorld, Vec<Box<dyn Process<MergeWorld>>>) {
        let mut deques: Vec<VecDeque<usize>> = (0..self.workers).map(|_| VecDeque::new()).collect();
        for idx in 0..self.jobs {
            deques[idx % self.workers].push_back(idx);
        }
        let world = MergeWorld {
            deques,
            buffer: Vec::new(),
            merged: 0,
            permits: self.window,
            window: self.window,
            permit_bug: self.permit_bug,
            violations: Vec::new(),
        };
        let mut procs: Vec<Box<dyn Process<MergeWorld>>> = (0..self.workers)
            .map(|me| {
                Box::new(WorkerProc {
                    me,
                    state: WorkerState::Grab,
                }) as Box<dyn Process<MergeWorld>>
            })
            .collect();
        procs.push(Box::new(MergerProc { jobs: self.jobs }));
        (world, procs)
    }

    fn invariant(&self, w: &MergeWorld) -> Result<(), String> {
        if let Some(v) = w.violations.first() {
            return Err(v.clone());
        }
        if !self.permit_bug && w.buffer.len() > self.window {
            return Err(format!(
                "window overrun: {} completed jobs buffered with window {}",
                w.buffer.len(),
                self.window
            ));
        }
        if w.buffer.iter().any(|&i| i < w.merged) {
            return Err("merge order violated: an already-merged index re-buffered".into());
        }
        Ok(())
    }

    fn terminal(&self, w: &MergeWorld) -> Result<(), String> {
        if w.merged != self.jobs {
            return Err(format!("only {} of {} jobs merged", w.merged, self.jobs));
        }
        if !w.buffer.is_empty() || w.deques.iter().any(|d| !d.is_empty()) {
            return Err("work left behind after final merge".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn window_gate_is_live_exhaustively() {
        let report = shuttle::check_exhaustive(
            &MergeModel {
                jobs: 4,
                workers: 2,
                window: 1,
                permit_bug: false,
            },
            &Config {
                max_schedules: 100_000,
                ..Config::default()
            },
        );
        report.assert_ok();
        assert!(report.exhausted, "small model should be fully explored");
    }

    #[test]
    fn window_two_with_three_workers() {
        let report = shuttle::check_random(
            &MergeModel {
                jobs: 6,
                workers: 3,
                window: 2,
                permit_bug: false,
            },
            &Config {
                iterations: 1_000,
                ..Config::default()
            },
        );
        report.assert_ok();
    }

    #[test]
    fn permit_gate_deadlocks() {
        let report = shuttle::check_exhaustive(
            &MergeModel {
                jobs: 2,
                workers: 2,
                window: 1,
                permit_bug: true,
            },
            &Config::default(),
        );
        let f = report
            .failure
            .expect("the rejected permit design must deadlock");
        assert!(f.reason.contains("deadlock"), "{}", f.reason);
    }
}
