//! Model of the serve admission gate
//! (`genomedsm_serve::AdmissionQueue`): a bounded request queue with
//! per-client weighted fair dispatch.
//!
//! Clients submit requests one atomic step at a time (the real gate does
//! check-and-enqueue under one mutex): if the queue has room the request
//! is enqueued, otherwise the submitter is told `Overloaded` and the
//! rejection is recorded in the client's ledger. Workers dispatch in two
//! steps — an atomic **pick** (the weighted fair choice: minimise
//! `served_units / weight` by cross-multiplication, FIFO within a
//! client) followed by a separate **serve** step that retires the
//! request and updates the served ledger — so the fairness accounting
//! other workers read can lag a pick in flight, exactly as in the real
//! server.
//!
//! Checked properties:
//!
//! * **bounded queue** — the depth never exceeds the configured
//!   capacity, under every interleaving of submitters and workers;
//! * **no double dispatch, no reorder** — each client's requests retire
//!   exactly once and in submission order (the per-client FIFO cursor
//!   flags both repeats and skips);
//! * **nothing lost** — at quiescence every submitted request was either
//!   dispatched or recorded as rejected: `dispatched + rejected ==
//!   submitted` per client, and the queue is empty.
//!
//! The `bug_drop_on_reject` knob reproduces the rejected design where an
//! overloaded submit returns `Overloaded` to the caller but never
//! records the rejection: the request silently vanishes from the
//! accounting, and the checker must catch the loss at the terminal
//! check.

use shuttle::{Ctx, Process, Spec};
use std::collections::VecDeque;

/// Per-client ledger row, mirroring `genomedsm_serve::ClientStats`.
struct Ledger {
    weight: u64,
    submitted: u64,
    rejected: u64,
    dispatched: u64,
    served_units: u64,
    /// Next accepted request id expected at dispatch (FIFO cursor).
    next_dispatch: u64,
}

/// Shared state: per-client FIFO queues, the global depth, the ledgers.
pub struct AdmissionWorld {
    /// Per-client queued request ids, FIFO.
    queue: Vec<VecDeque<u64>>,
    /// Total queued requests across clients (the admission gate's depth).
    depth: usize,
    capacity: usize,
    ledger: Vec<Ledger>,
    bug_drop_on_reject: bool,
    violations: Vec<String>,
}

impl AdmissionWorld {
    /// The weighted fair pick, byte-for-byte the policy in
    /// `genomedsm_serve::admission`: among clients with queued work,
    /// minimise `served_units / weight` (compared by cross-multiplying
    /// in wide arithmetic), breaking ties toward the lower client index
    /// (the real gate breaks ties lexicographically on the client name).
    fn fair_pick(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for c in 0..self.queue.len() {
            if self.queue[c].is_empty() {
                continue;
            }
            best = Some(match best {
                None => c,
                Some(b) => {
                    let lhs = self.ledger[c].served_units as u128 * self.ledger[b].weight as u128;
                    let rhs = self.ledger[b].served_units as u128 * self.ledger[c].weight as u128;
                    if lhs < rhs {
                        c
                    } else {
                        b
                    }
                }
            });
        }
        best
    }

    fn all_submitted(&self, requests_each: u64) -> bool {
        self.ledger.iter().all(|l| l.submitted == requests_each)
    }
}

/// A client: submits `remaining` requests, one per step.
struct ClientProc {
    me: usize,
    next_id: u64,
    remaining: u64,
}

impl Process<AdmissionWorld> for ClientProc {
    fn ready(&self, _w: &AdmissionWorld) -> bool {
        self.remaining > 0
    }

    fn done(&self, _w: &AdmissionWorld) -> bool {
        self.remaining == 0
    }

    fn step(&mut self, w: &mut AdmissionWorld, ctx: &mut Ctx) {
        self.remaining -= 1;
        w.ledger[self.me].submitted += 1;
        if w.depth < w.capacity {
            // Ids number *accepted* requests only (a rejected request
            // never enters the queue, so it has no place in the FIFO).
            let id = self.next_id;
            self.next_id += 1;
            w.queue[self.me].push_back(id);
            w.depth += 1;
            ctx.trace(format!("client {} submit {id}: accepted", self.me));
        } else if w.bug_drop_on_reject {
            // The rejected design: tell the caller Overloaded but never
            // record it — the request is lost to the accounting.
            ctx.trace(format!("client {} submit: DROPPED", self.me));
        } else {
            w.ledger[self.me].rejected += 1;
            ctx.trace(format!("client {} submit: rejected", self.me));
        }
    }
}

enum WorkerState {
    Pick,
    Serve { client: usize, id: u64 },
}

/// A worker: fair-pick + pop atomically, then retire in a later step.
struct WorkerProc {
    state: WorkerState,
    requests_each: u64,
}

impl Process<AdmissionWorld> for WorkerProc {
    fn ready(&self, w: &AdmissionWorld) -> bool {
        match self.state {
            WorkerState::Pick => w.depth > 0,
            WorkerState::Serve { .. } => true,
        }
    }

    fn done(&self, w: &AdmissionWorld) -> bool {
        matches!(self.state, WorkerState::Pick)
            && w.depth == 0
            && w.all_submitted(self.requests_each)
    }

    fn step(&mut self, w: &mut AdmissionWorld, ctx: &mut Ctx) {
        match self.state {
            WorkerState::Pick => {
                let Some(client) = w.fair_pick() else {
                    ctx.trace("spurious wake: queue drained");
                    return;
                };
                let Some(id) = w.queue[client].pop_front() else {
                    w.violations
                        .push(format!("fair pick chose client {client} with empty queue"));
                    return;
                };
                w.depth -= 1;
                // Dispatch-order check at the pop (the gate's guarantee
                // is FIFO *dispatch* within a client; two workers may
                // then finish a client's requests in either order).
                let l = &mut w.ledger[client];
                if id < l.next_dispatch {
                    w.violations
                        .push(format!("client {client} request {id} dispatched twice"));
                } else if id > l.next_dispatch {
                    w.violations.push(format!(
                        "client {client} dispatched {id} before {} (FIFO broken)",
                        l.next_dispatch
                    ));
                } else {
                    l.next_dispatch += 1;
                }
                ctx.trace(format!("pick client {client} request {id}"));
                self.state = WorkerState::Serve { client, id };
            }
            WorkerState::Serve { client, id } => {
                let l = &mut w.ledger[client];
                l.dispatched += 1;
                l.served_units += 1;
                ctx.trace(format!("serve client {client} request {id}"));
                self.state = WorkerState::Pick;
            }
        }
    }
}

/// The admission-gate model.
pub struct AdmissionModel {
    /// Submitting clients; client `i` gets weight `i + 1`.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_each: u64,
    /// Queue capacity (the admission bound).
    pub capacity: usize,
    /// Dispatching workers.
    pub workers: usize,
    /// Use the rejected drop-on-reject design that loses requests.
    pub bug_drop_on_reject: bool,
}

impl Spec for AdmissionModel {
    type S = AdmissionWorld;

    fn build(&self) -> (AdmissionWorld, Vec<Box<dyn Process<AdmissionWorld>>>) {
        let world = AdmissionWorld {
            queue: (0..self.clients).map(|_| VecDeque::new()).collect(),
            depth: 0,
            capacity: self.capacity,
            ledger: (0..self.clients)
                .map(|c| Ledger {
                    weight: c as u64 + 1,
                    submitted: 0,
                    rejected: 0,
                    dispatched: 0,
                    served_units: 0,
                    next_dispatch: 0,
                })
                .collect(),
            bug_drop_on_reject: self.bug_drop_on_reject,
            violations: Vec::new(),
        };
        let mut procs: Vec<Box<dyn Process<AdmissionWorld>>> = (0..self.clients)
            .map(|me| {
                Box::new(ClientProc {
                    me,
                    next_id: 0,
                    remaining: self.requests_each,
                }) as Box<dyn Process<AdmissionWorld>>
            })
            .collect();
        for _ in 0..self.workers {
            procs.push(Box::new(WorkerProc {
                state: WorkerState::Pick,
                requests_each: self.requests_each,
            }));
        }
        (world, procs)
    }

    fn invariant(&self, w: &AdmissionWorld) -> Result<(), String> {
        if let Some(v) = w.violations.first() {
            return Err(v.clone());
        }
        if w.depth > w.capacity {
            return Err(format!(
                "admission bound broken: depth {} exceeds capacity {}",
                w.depth, w.capacity
            ));
        }
        let queued: usize = w.queue.iter().map(VecDeque::len).sum();
        if queued != w.depth {
            return Err(format!(
                "depth accounting drift: counter {} vs {} actually queued",
                w.depth, queued
            ));
        }
        Ok(())
    }

    fn terminal(&self, w: &AdmissionWorld) -> Result<(), String> {
        for (c, l) in w.ledger.iter().enumerate() {
            if l.submitted != self.requests_each {
                return Err(format!(
                    "client {c} submitted {} of {}",
                    l.submitted, self.requests_each
                ));
            }
            if l.dispatched + l.rejected != l.submitted {
                return Err(format!(
                    "client {c}: {} dispatched + {} rejected != {} submitted (request lost)",
                    l.dispatched, l.rejected, l.submitted
                ));
            }
        }
        if w.depth != 0 || w.queue.iter().any(|q| !q.is_empty()) {
            return Err("requests left queued after quiescence".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn bounded_gate_loses_nothing_exhaustively() {
        let report = shuttle::check_exhaustive(
            &AdmissionModel {
                clients: 2,
                requests_each: 2,
                capacity: 1,
                workers: 1,
                bug_drop_on_reject: false,
            },
            &Config {
                max_schedules: 100_000,
                ..Config::default()
            },
        );
        report.assert_ok();
        assert!(report.exhausted, "small model should be fully explored");
    }

    #[test]
    fn two_workers_three_clients_random() {
        let report = shuttle::check_random(
            &AdmissionModel {
                clients: 3,
                requests_each: 2,
                capacity: 2,
                workers: 2,
                bug_drop_on_reject: false,
            },
            &Config {
                iterations: 2_000,
                ..Config::default()
            },
        );
        report.assert_ok();
    }

    #[test]
    fn drop_on_reject_is_caught() {
        let report = shuttle::check_exhaustive(
            &AdmissionModel {
                clients: 2,
                requests_each: 2,
                capacity: 1,
                workers: 1,
                bug_drop_on_reject: true,
            },
            &Config::default(),
        );
        let f = report
            .failure
            .expect("the drop-on-reject design must lose a request");
        assert!(f.reason.contains("request lost"), "{}", f.reason);
    }
}
