//! Model of the elastic-membership **join/handback protocol**
//! (`strategies::checkpoint::run_elastic` + the DSM daemon's deferred
//! admission): a rank fail-stops mid-workload, a survivor adopts its
//! role by replaying the push ledger from the recorded cursor, the
//! corpse announces its return naming a boundary round, daemon 0 parks
//! the announcement until the barrier reaches that boundary (or the
//! *next* stride multiple, if the announcement arrives late), the
//! admitted joiner invalidates its page cache and catches up from the
//! ledger, and the role is handed back exactly at a workload boundary.
//!
//! Two ranks share two roles over two workload rounds of `units` work
//! units each. Role 1's rounds are coupled through a border page
//! (`home`): round 1's outputs are computed from the value role 0's
//! round finishes with, and the joiner holds a *cached* copy of that
//! page from before its crash — the protocol's canonical stale state.
//!
//! Processes:
//! * **survivor** — executes its own role each round, arrives at the
//!   barrier, and adopts the joiner's role from the ledger cursor when
//!   the crash leaves round-0 work unfinished (the takeover sweep). At
//!   round 1 entry it decides ownership of the joiner's role from the
//!   membership view of the moment — exactly what `run_with_takeover`
//!   does after the membership-refresh barrier.
//! * **joiner** — executes role 1 until the reaper fires, then runs the
//!   announce → await-admission → invalidate → ledger-replay → re-enter
//!   sequence.
//! * **reaper** — crashes the joiner at a scheduler-chosen work unit
//!   (or never, if the joiner finishes first: the fault-free schedule
//!   is part of the state space).
//! * **carrier** — delivers the announcement to daemon 0 after a
//!   scheduler-chosen delay, so admission races every boundary.
//!
//! Invariants: no work unit is ever executed by two owners (live
//! double-ownership), admission happens only inside a barrier-boundary
//! drain (*handback only at unit boundaries*), and the ledger a joiner
//! catches up from is complete (the adopter finished the crashed
//! round). Terminal: every unit of every round executed exactly once,
//! the joiner was readmitted, and round-1 outputs — the saved-column
//! files — are byte-identical to a never-crashed run.
//!
//! Broken variants: [`RejoinModel::bug_skip_invalidation`] (the joiner
//! keeps its pre-crash page cache and serves stale border data — caught
//! by the byte-identity terminal check on schedules where the crash
//! happens after the joiner cached the page) and
//! [`RejoinModel::bug_admit_mid_round`] (admission takes effect at
//! announcement delivery instead of the boundary drain — caught by the
//! boundary invariant, and on deeper schedules by double-ownership).

use shuttle::{Ctx, Process, Spec};

/// The border value role 1's round-0 completion publishes; round-1
/// outputs derive from it, so a stale cached `0` is detectable.
const HOME_MARK: u64 = 7;

/// Workload rounds in the campaign (round 0 crashes, round 1 is the
/// post-handback round).
const ROUNDS: usize = 2;

/// Spec for the join/handback protocol. Fields select the workload size
/// and the seeded defect, if any.
#[derive(Debug, Clone, Copy)]
pub struct RejoinModel {
    /// Work units per role per round.
    pub units: usize,
    /// Seeded defect: the joiner skips page-cache invalidation on
    /// admission and serves stale border data.
    pub bug_skip_invalidation: bool,
    /// Seeded defect: daemon 0 admits at announcement delivery instead
    /// of deferring to the boundary drain.
    pub bug_admit_mid_round: bool,
}

/// Shared state: the barrier manager (daemon 0), the membership view,
/// the push ledger for role 1's round 0, the border page, and the
/// execution bookkeeping the properties are checked against.
pub struct RejoinWorld {
    units: usize,
    bug_skip_invalidation: bool,
    bug_admit_mid_round: bool,
    /// Completed workload boundaries (0 while round 0 runs).
    round: usize,
    arrived: [bool; 2],
    crashed: bool,
    announced: bool,
    delivered: bool,
    /// Boundary the parked announcement is deferred to.
    park_target: Option<usize>,
    admitted: bool,
    /// The round the admission took effect at.
    admitted_round: Option<usize>,
    /// Whether the admission happened inside a boundary drain.
    admitted_at_boundary: bool,
    /// Push-ledger cursor: committed units of role 1, round 0.
    ledger: usize,
    /// Role 1's border page (home copy).
    home: u64,
    /// The joiner's cached copy of the border page.
    joiner_cache: Option<u64>,
    /// Execution counts per `(round, role, unit)`.
    commits: Vec<u8>,
    /// Round-1 outputs of role 1 — the "saved columns".
    out_r1: Vec<Option<u64>>,
    violations: Vec<String>,
}

impl RejoinWorld {
    fn commit(&mut self, round: usize, role: usize, unit: usize, who: &str) {
        let idx = (round * 2 + role) * self.units + unit;
        self.commits[idx] += 1;
        if self.commits[idx] > 1 {
            self.violations.push(format!(
                "round {round} role {role} unit {unit} executed by two live owners \
                 ({who} re-ran it)"
            ));
        }
    }

    /// Barrier manager: advances the round when every live rank has
    /// arrived (a crashed, unadmitted joiner is dead-credited — but the
    /// round-0 boundary additionally waits for the takeover sweep to
    /// finish the crashed role, and the round-1 boundary for the
    /// announcement to be delivered, the transport's delivery bound).
    /// After the advance, parked admissions whose boundary is reached
    /// drain — atomically with the advance, exactly like daemon 0
    /// finishing a barrier round and then draining `pending_rejoins`.
    fn try_boundary(&mut self) {
        let joiner_ok = self.arrived[1]
            || (self.crashed
                && !self.admitted
                && match self.round {
                    // Round 0's boundary additionally waits for the
                    // takeover sweep to finish the crashed role.
                    0 => self.ledger == self.units,
                    // The final boundary waits for the in-flight
                    // admission: the announcement is sent at the first
                    // boundary after the crash and delivered within the
                    // campaign (the transport's delivery bound — the
                    // driver documents that scheduled rejoins must name
                    // a boundary inside the campaign). Without this
                    // gate the joiner parks past the teardown forever.
                    _ => self.delivered,
                });
        if !(self.arrived[0] && joiner_ok && self.round < ROUNDS) {
            return;
        }
        self.arrived = [false, false];
        self.round += 1;
        if let Some(target) = self.park_target {
            if self.delivered && !self.admitted && self.round >= target {
                self.admitted = true;
                self.admitted_round = Some(self.round);
                self.admitted_at_boundary = true;
            }
        }
    }

    fn arrive(&mut self, rank: usize) {
        self.arrived[rank] = true;
        self.try_boundary();
    }
}

// --- survivor ---------------------------------------------------------------

enum SurvivorState {
    /// Round 0, own role: unit cursor.
    R0Own(usize),
    R0Arrive,
    /// Arrived; waiting for the boundary, or adopting the crashed role.
    R0Wait,
    /// Takeover sweep: read the push-ledger cursor.
    AdoptRead,
    /// Takeover sweep: replay/extend from the adopted cursor.
    AdoptExec,
    /// Round 1 entry: decide ownership from the membership view.
    R1Entry,
    R1Own(usize),
    /// Round 1 of the joiner's role, when the joiner was not back.
    R1Adopted(usize),
    R1Arrive,
    Done,
}

struct Survivor {
    state: SurvivorState,
    owns_role1: bool,
}

impl Process<RejoinWorld> for Survivor {
    fn ready(&self, s: &RejoinWorld) -> bool {
        match self.state {
            SurvivorState::R0Wait => {
                s.round >= 1 || (s.crashed && !s.admitted && s.ledger < s.units)
            }
            SurvivorState::Done => false,
            _ => true,
        }
    }

    fn done(&self, _s: &RejoinWorld) -> bool {
        matches!(self.state, SurvivorState::Done)
    }

    fn step(&mut self, s: &mut RejoinWorld, ctx: &mut Ctx) {
        match self.state {
            SurvivorState::R0Own(u) => {
                s.commit(0, 0, u, "survivor");
                self.state = if u + 1 < s.units {
                    SurvivorState::R0Own(u + 1)
                } else {
                    SurvivorState::R0Arrive
                };
            }
            SurvivorState::R0Arrive => {
                s.arrive(0);
                ctx.trace("survivor arrived at boundary 0");
                self.state = SurvivorState::R0Wait;
            }
            SurvivorState::R0Wait => {
                if s.round >= 1 {
                    self.state = SurvivorState::R1Entry;
                } else {
                    ctx.trace("death observed; takeover sweep begins");
                    self.state = SurvivorState::AdoptRead;
                }
            }
            SurvivorState::AdoptRead => {
                ctx.trace(format!("adopter read ledger cursor {}", s.ledger));
                self.state = SurvivorState::AdoptExec;
            }
            SurvivorState::AdoptExec => {
                let u = s.ledger;
                s.commit(0, 1, u, "adopter");
                s.ledger += 1;
                if s.ledger == s.units {
                    // Role completion publishes the border page.
                    s.home = HOME_MARK;
                    ctx.trace("adopter finished the crashed role; border published");
                    self.state = SurvivorState::R0Wait;
                    // The sweep's completion is what unblocks the
                    // dead-credited boundary.
                    s.try_boundary();
                }
            }
            SurvivorState::R1Entry => {
                // The membership view after the refresh barrier: adopt
                // the role again only if the joiner is still out.
                self.owns_role1 = s.crashed && !s.admitted;
                self.state = SurvivorState::R1Own(0);
            }
            SurvivorState::R1Own(u) => {
                s.commit(1, 0, u, "survivor");
                self.state = if u + 1 < s.units {
                    SurvivorState::R1Own(u + 1)
                } else if self.owns_role1 {
                    SurvivorState::R1Adopted(0)
                } else {
                    SurvivorState::R1Arrive
                };
            }
            SurvivorState::R1Adopted(u) => {
                s.commit(1, 1, u, "adopter");
                s.out_r1[u] = Some(s.home + 1 + u as u64);
                self.state = if u + 1 < s.units {
                    SurvivorState::R1Adopted(u + 1)
                } else {
                    SurvivorState::R1Arrive
                };
            }
            SurvivorState::R1Arrive => {
                s.arrive(0);
                self.state = SurvivorState::Done;
            }
            SurvivorState::Done => unreachable!("done process is never stepped"),
        }
    }
}

// --- joiner -----------------------------------------------------------------

enum JoinerState {
    /// Round 0, own role: unit cursor (live path).
    R0Exec(usize),
    R0Arrive,
    /// Live path: wait for round 1.
    Wait,
    R1Exec(usize),
    R1Arrive,
    /// Crashed path: announce the return.
    Announce,
    AwaitAdmission,
    /// Page invalidation on admission.
    Invalidate,
    /// Catch-up from the push ledger.
    Replay,
    /// Post-rejoin work, if the admission landed on round 1's boundary.
    Rejoined(usize),
    RejoinArrive,
    Done,
}

struct Joiner {
    state: JoinerState,
}

impl Process<RejoinWorld> for Joiner {
    fn ready(&self, s: &RejoinWorld) -> bool {
        match self.state {
            // The live path is interrupted by the crash: once `crashed`
            // is set these states never run again (the crashed path is
            // entered via `step` observing the flag).
            JoinerState::R0Exec(_) | JoinerState::R0Arrive => true,
            JoinerState::Wait => s.crashed || s.round >= 1,
            JoinerState::R1Exec(_) | JoinerState::R1Arrive => true,
            JoinerState::Announce => true,
            JoinerState::AwaitAdmission => s.admitted,
            JoinerState::Invalidate | JoinerState::Replay => true,
            JoinerState::Rejoined(_) | JoinerState::RejoinArrive => true,
            JoinerState::Done => false,
        }
    }

    fn done(&self, _s: &RejoinWorld) -> bool {
        matches!(self.state, JoinerState::Done)
    }

    fn step(&mut self, s: &mut RejoinWorld, ctx: &mut Ctx) {
        // Fail-stop: whatever live-path state the joiner was in, its
        // next transition is the announce step of the crashed path.
        if s.crashed
            && matches!(
                self.state,
                JoinerState::R0Exec(_)
                    | JoinerState::R0Arrive
                    | JoinerState::Wait
                    | JoinerState::R1Exec(_)
                    | JoinerState::R1Arrive
            )
        {
            self.state = JoinerState::Announce;
        }
        match self.state {
            JoinerState::R0Exec(u) => {
                if u == 0 {
                    // First touch caches the border page — the copy
                    // that goes stale while the rank is dead.
                    s.joiner_cache = Some(s.home);
                }
                s.commit(0, 1, u, "joiner");
                s.ledger += 1;
                if s.ledger == s.units {
                    s.home = HOME_MARK;
                    // The writer's own cached copy is write-through.
                    s.joiner_cache = Some(HOME_MARK);
                }
                self.state = if u + 1 < s.units {
                    JoinerState::R0Exec(u + 1)
                } else {
                    JoinerState::R0Arrive
                };
            }
            JoinerState::R0Arrive => {
                s.arrive(1);
                self.state = JoinerState::Wait;
            }
            JoinerState::Wait => {
                self.state = JoinerState::R1Exec(0);
            }
            JoinerState::R1Exec(u) => {
                let v = s.joiner_cache.unwrap_or(s.home);
                s.commit(1, 1, u, "joiner");
                s.out_r1[u] = Some(v + 1 + u as u64);
                self.state = if u + 1 < s.units {
                    JoinerState::R1Exec(u + 1)
                } else {
                    JoinerState::R1Arrive
                };
            }
            JoinerState::R1Arrive => {
                s.arrive(1);
                self.state = JoinerState::Done;
            }
            JoinerState::Announce => {
                s.announced = true;
                ctx.trace("joiner announced its return");
                self.state = JoinerState::AwaitAdmission;
            }
            JoinerState::AwaitAdmission => {
                if !s.admitted_at_boundary {
                    s.violations
                        .push("handback outside a unit boundary".to_string());
                }
                self.state = JoinerState::Invalidate;
            }
            JoinerState::Invalidate => {
                if !s.bug_skip_invalidation {
                    s.joiner_cache = None;
                    ctx.trace("joiner invalidated its page cache");
                } else {
                    ctx.trace("BUG: joiner kept its stale page cache");
                }
                self.state = JoinerState::Replay;
            }
            JoinerState::Replay => {
                if s.ledger < s.units {
                    s.violations.push(format!(
                        "joiner caught up on a still-advancing ledger (cursor {} of {})",
                        s.ledger, s.units
                    ));
                }
                ctx.trace(format!("joiner replayed ledger to cursor {}", s.ledger));
                self.state = if s.admitted_round == Some(1) {
                    // Handback landed on round 1's boundary: the role is
                    // ours again for the post-rejoin round.
                    JoinerState::Rejoined(0)
                } else {
                    // Late admission (next stride multiple = campaign
                    // end): the survivors owned the role throughout.
                    JoinerState::Done
                };
            }
            JoinerState::Rejoined(u) => {
                let v = s.joiner_cache.unwrap_or(s.home);
                s.commit(1, 1, u, "joiner");
                s.out_r1[u] = Some(v + 1 + u as u64);
                self.state = if u + 1 < s.units {
                    JoinerState::Rejoined(u + 1)
                } else {
                    JoinerState::RejoinArrive
                };
            }
            JoinerState::RejoinArrive => {
                s.arrive(1);
                self.state = JoinerState::Done;
            }
            JoinerState::Done => unreachable!("done process is never stepped"),
        }
    }
}

// --- reaper -----------------------------------------------------------------

/// Crashes the joiner at a scheduler-chosen point during its round-0
/// work — or never, if the joiner finishes first (the fault-free
/// schedule stays in the state space).
struct Reaper {
    fired: bool,
}

impl Process<RejoinWorld> for Reaper {
    fn ready(&self, s: &RejoinWorld) -> bool {
        !self.fired && !s.crashed && s.round == 0 && s.ledger < s.units
    }
    fn done(&self, s: &RejoinWorld) -> bool {
        self.fired || s.ledger >= s.units
    }
    fn step(&mut self, s: &mut RejoinWorld, ctx: &mut Ctx) {
        self.fired = true;
        s.crashed = true;
        ctx.trace(format!("joiner fail-stopped at ledger cursor {}", s.ledger));
    }
}

// --- carrier ----------------------------------------------------------------

/// Delivers the announcement to daemon 0 after a scheduler-chosen delay.
/// On delivery the daemon computes the admission boundary: the named
/// round if still in the future, else the next stride multiple strictly
/// past the current round (the re-deferral that keeps a late
/// announcement from handing the role back mid-workload). The
/// mid-round-admission bug skips the deferral entirely.
struct Carrier;

impl Process<RejoinWorld> for Carrier {
    fn ready(&self, s: &RejoinWorld) -> bool {
        s.announced && !s.delivered
    }
    fn done(&self, s: &RejoinWorld) -> bool {
        s.delivered || (!s.crashed && s.ledger >= s.units)
    }
    fn step(&mut self, s: &mut RejoinWorld, ctx: &mut Ctx) {
        s.delivered = true;
        if s.bug_admit_mid_round {
            s.admitted = true;
            s.admitted_round = Some(s.round);
            s.admitted_at_boundary = false;
            ctx.trace(format!("BUG: admitted at delivery, round {}", s.round));
            return;
        }
        // Stride is 1 here: every round is a workload boundary.
        let target = if s.round < 1 { 1 } else { s.round + 1 };
        s.park_target = Some(target);
        ctx.trace(format!("announcement parked until boundary {target}"));
        // Delivery can be the last gate a dead-credited boundary was
        // waiting on.
        s.try_boundary();
    }
}

// --- spec -------------------------------------------------------------------

impl Spec for RejoinModel {
    type S = RejoinWorld;

    fn build(&self) -> (RejoinWorld, shuttle::check::Procs<RejoinWorld>) {
        let world = RejoinWorld {
            units: self.units,
            bug_skip_invalidation: self.bug_skip_invalidation,
            bug_admit_mid_round: self.bug_admit_mid_round,
            round: 0,
            arrived: [false, false],
            crashed: false,
            announced: false,
            delivered: false,
            park_target: None,
            admitted: false,
            admitted_round: None,
            admitted_at_boundary: false,
            ledger: 0,
            home: 0,
            joiner_cache: None,
            commits: vec![0; ROUNDS * 2 * self.units],
            out_r1: vec![None; self.units],
            violations: Vec::new(),
        };
        let procs: shuttle::check::Procs<RejoinWorld> = vec![
            Box::new(Survivor {
                state: SurvivorState::R0Own(0),
                owns_role1: false,
            }),
            Box::new(Joiner {
                state: JoinerState::R0Exec(0),
            }),
            Box::new(Reaper { fired: false }),
            Box::new(Carrier),
        ];
        (world, procs)
    }

    fn invariant(&self, s: &RejoinWorld) -> Result<(), String> {
        match s.violations.first() {
            Some(v) => Err(v.clone()),
            None => Ok(()),
        }
    }

    fn terminal(&self, s: &RejoinWorld) -> Result<(), String> {
        if s.round != ROUNDS {
            return Err(format!("campaign ended at round {} of {ROUNDS}", s.round));
        }
        for round in 0..ROUNDS {
            for role in 0..2 {
                for unit in 0..s.units {
                    let n = s.commits[(round * 2 + role) * s.units + unit];
                    if n != 1 {
                        return Err(format!(
                            "round {round} role {role} unit {unit} executed {n} times"
                        ));
                    }
                }
            }
        }
        if s.crashed && !s.admitted {
            return Err("crashed rank was never readmitted".to_string());
        }
        for (u, out) in s.out_r1.iter().enumerate() {
            let expect = HOME_MARK + 1 + u as u64;
            match out {
                Some(v) if *v == expect => {}
                Some(v) => {
                    return Err(format!(
                        "joiner's saved columns diverge from the never-crashed \
                         run: unit {u} is {v}, expected {expect} (stale border \
                         page served after the handback)"
                    ));
                }
                None => return Err(format!("round-1 unit {u} produced no output")),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    fn model(units: usize) -> RejoinModel {
        RejoinModel {
            units,
            bug_skip_invalidation: false,
            bug_admit_mid_round: false,
        }
    }

    #[test]
    fn protocol_is_clean_across_every_crash_point_and_delivery_delay() {
        let report = shuttle::check_exhaustive(
            &model(2),
            &Config {
                max_schedules: 200_000,
                ..Config::default()
            },
        );
        report.assert_ok();
        assert!(
            report.schedules > 5_000,
            "rejoin model must explore ≥5k schedules, got {}",
            report.schedules
        );
    }

    #[test]
    fn skipped_invalidation_serves_stale_columns_and_is_caught() {
        let report = shuttle::check_exhaustive(
            &RejoinModel {
                units: 2,
                bug_skip_invalidation: true,
                bug_admit_mid_round: false,
            },
            &Config::default(),
        );
        let f = report.failure.expect("stale cache must be detected");
        assert!(
            f.reason.contains("saved columns diverge"),
            "unexpected reason: {}",
            f.reason
        );
    }

    #[test]
    fn mid_round_admission_is_caught_at_the_boundary_invariant() {
        let report = shuttle::check_exhaustive(
            &RejoinModel {
                units: 2,
                bug_skip_invalidation: false,
                bug_admit_mid_round: true,
            },
            &Config::default(),
        );
        let f = report
            .failure
            .expect("mid-round admission must be detected");
        assert!(
            f.reason.contains("outside a unit boundary")
                || f.reason.contains("two live owners")
                || f.reason.contains("still-advancing ledger"),
            "unexpected reason: {}",
            f.reason
        );
    }

    #[test]
    fn fault_free_schedules_stay_in_the_state_space() {
        // With one unit per role the fault-free path is short; the
        // exhaustive run must include schedules where the reaper never
        // fires (the joiner finishes first) and still be clean.
        let report = shuttle::check_exhaustive(&model(1), &Config::default());
        report.assert_ok();
        assert!(report.exhausted, "one-unit model must be fully explored");
    }
}
