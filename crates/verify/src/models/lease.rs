//! Model of the lock-lease break-on-death path (daemon `handle_obituary`)
//! plus the ledger-driven work takeover from the supervision layer.
//!
//! A *victim* node and a *survivor* node both run lock-protected work
//! units. A *reaper* process is ready at every scheduler step until it
//! fires, so the checker explores a crash at **every** protocol point:
//! while the victim is queued, while it holds the lease mid-critical-
//! section with an uncommitted write, between sections, and after it
//! finished. The reaper's single step is the daemon's atomic obituary
//! handler: purge the dead node from the waiter queue, break its lease if
//! it is the holder, and grant the next waiter from the **last released**
//! state — the victim's uncommitted write is discarded, exactly as the
//! real protocol discards a dead holder's unflushed diffs. An *adopter*
//! process becomes ready only after the crash, reads the ledger cursor
//! (the victim's committed unit count), and re-runs the remaining units
//! through the normal lock protocol.
//!
//! Checked properties:
//!
//! * **no deadlock after death** — a queued or holding victim never
//!   wedges the survivor or the adopter (lease break + waiter purge);
//! * **last-released state only** — survivors entering the critical
//!   section see the home's committed version, never the victim's
//!   uncommitted write (scope check, same as the lock model);
//! * **exactly-once units** — every victim work unit is committed exactly
//!   once, by the victim before the crash or by the adopter after it
//!   (ledger invariant);
//! * **no grant to the dead** — the manager never issues a grant to the
//!   victim after the obituary was processed.
//!
//! The `bug_grant_uncommitted` knob seeds the historical bug where the
//! obituary handed the next waiter the dead holder's in-progress state
//! instead of the last released one; the checker must flag it.

use shuttle::{Ctx, Process, Spec, VectorClock};
use std::collections::VecDeque;

const VICTIM: usize = 0;
const SURVIVOR: usize = 1;
const ADOPTER: usize = 3;

struct Grant {
    seq: u64,
    latest: Option<u64>,
    clock: VectorClock,
}

/// Shared state: lock manager, home version, ledger, and crash flag.
pub struct LeaseWorld {
    holder: Option<usize>,
    waiters: VecDeque<(usize, u64)>,
    history: Vec<(u64, u64)>,
    next_seq: u64,
    grants: Vec<Option<Grant>>,
    version: u64,
    view: Vec<u64>,
    in_cs: Vec<bool>,
    lock_clock: VectorClock,
    /// True once the reaper has delivered the obituary.
    pub crashed: bool,
    /// Commit count per victim work unit (exactly-once check).
    pub unit_commits: Vec<u32>,
    /// Ledger cursor: victim units committed, in order.
    ledger: usize,
    violations: Vec<String>,
    bug_grant_uncommitted: bool,
}

impl LeaseWorld {
    fn new(procs: usize, victim_units: usize, bug: bool) -> Self {
        Self {
            holder: None,
            waiters: VecDeque::new(),
            history: Vec::new(),
            next_seq: 0,
            grants: (0..procs).map(|_| None).collect(),
            version: 0,
            view: vec![0; procs],
            in_cs: vec![false; procs],
            lock_clock: VectorClock::new(procs),
            crashed: false,
            unit_commits: vec![0; victim_units],
            ledger: 0,
            violations: Vec::new(),
            bug_grant_uncommitted: bug,
        }
    }

    fn latest_since(&self, last_seq: u64) -> Option<u64> {
        self.history
            .iter()
            .rev()
            .find(|(s, _)| *s > last_seq)
            .map(|(_, v)| *v)
    }

    fn issue(&mut self, to: usize, last_seq: u64) {
        if self.crashed && to == VICTIM {
            self.violations
                .push("manager granted the lease to a dead node".into());
            return;
        }
        self.holder = Some(to);
        self.grants[to] = Some(Grant {
            seq: self.next_seq,
            latest: self.latest_since(last_seq),
            clock: self.lock_clock.clone(),
        });
    }

    fn handle_acquire(&mut self, from: usize, last_seq: u64) {
        if self.holder.is_none() {
            self.issue(from, last_seq);
        } else {
            self.waiters.push_back((from, last_seq));
        }
    }

    fn handle_release(&mut self, from: usize, committed: u64) {
        if self.holder != Some(from) {
            self.violations
                .push(format!("node {from} released a lease it does not hold"));
            return;
        }
        self.version = committed;
        self.next_seq += 1;
        self.history.push((self.next_seq, committed));
        self.holder = None;
        if let Some((next, wseq)) = self.waiters.pop_front() {
            self.issue(next, wseq);
        }
    }

    /// The atomic obituary handler (daemon `handle_obituary`).
    fn handle_obituary(&mut self) {
        self.crashed = true;
        self.waiters.retain(|&(n, _)| n != VICTIM);
        if self.holder == Some(VICTIM) {
            if self.bug_grant_uncommitted {
                // Seeded bug: publish the dead holder's in-progress view as
                // if it had been released.
                let leaked = self.view[VICTIM];
                self.version = leaked;
                self.next_seq += 1;
                self.history.push((self.next_seq, leaked));
            }
            // Break the lease from the last *released* state: drop the
            // in-flight grant, clear the holder, and hand the lease to the
            // next waiter with notices from the committed history only.
            self.grants[VICTIM] = None;
            self.in_cs[VICTIM] = false;
            self.holder = None;
            if let Some((next, wseq)) = self.waiters.pop_front() {
                self.issue(next, wseq);
            }
        }
    }
}

enum WorkState {
    Acquire,
    AwaitGrant,
    Write,
    Release,
    Done,
}

/// A node running lock-protected work units. The victim's units commit to
/// the ledger; the survivor's only bump the home version.
struct NodeProc {
    me: usize,
    state: WorkState,
    /// Victim/adopter: next victim unit to commit. Survivor: units left.
    cursor: usize,
    limit: usize,
    last_seq: u64,
    /// Adopter only: wait for the crash, then read the ledger once.
    adopter: bool,
    adopted: bool,
}

impl NodeProc {
    fn is_victim(&self) -> bool {
        self.me == VICTIM
    }
}

impl Process<LeaseWorld> for NodeProc {
    fn ready(&self, w: &LeaseWorld) -> bool {
        if self.is_victim() && w.crashed {
            return false;
        }
        if self.adopter && !w.crashed {
            return false;
        }
        match self.state {
            WorkState::AwaitGrant => w.grants[self.me].is_some(),
            WorkState::Done => false,
            _ => true,
        }
    }

    fn done(&self, w: &LeaseWorld) -> bool {
        // A crashed victim is finished as far as liveness is concerned:
        // its remaining work is the adopter's problem, not a deadlock.
        if self.is_victim() && w.crashed {
            return true;
        }
        if self.adopter && !w.crashed {
            // If every live process finished without a crash, the adopter
            // has nothing to do.
            return true;
        }
        matches!(self.state, WorkState::Done)
    }

    fn step(&mut self, w: &mut LeaseWorld, ctx: &mut Ctx) {
        let me = self.me;
        if self.adopter && !self.adopted {
            // First step after the crash: recover the cursor from the
            // ledger, exactly like a takeover scanning checkpoints.
            self.cursor = w.ledger;
            self.adopted = true;
            ctx.trace(format!("adopt from ledger cursor={}", self.cursor));
            if self.cursor >= self.limit {
                self.state = WorkState::Done;
            }
            return;
        }
        match self.state {
            WorkState::Acquire => {
                w.handle_acquire(me, self.last_seq);
                ctx.trace("acquire");
                self.state = WorkState::AwaitGrant;
            }
            WorkState::AwaitGrant => {
                let Some(grant) = w.grants[me].take() else {
                    w.violations.push(format!("node {me} woke without a grant"));
                    return;
                };
                self.last_seq = grant.seq;
                if let Some(v) = grant.latest {
                    w.view[me] = v;
                }
                ctx.acquire(&grant.clock);
                w.in_cs[me] = true;
                if w.view[me] != w.version {
                    w.violations.push(format!(
                        "scope consistency violated after lease break: node {me} sees \
                         version {} but home holds {}",
                        w.view[me], w.version
                    ));
                }
                self.state = WorkState::Write;
            }
            WorkState::Write => {
                w.view[me] += 1;
                ctx.trace(format!("write view={}", w.view[me]));
                self.state = WorkState::Release;
            }
            WorkState::Release => {
                w.in_cs[me] = false;
                ctx.release(&mut w.lock_clock);
                let committed = w.view[me];
                w.handle_release(me, committed);
                if self.is_victim() || self.adopter {
                    // Commit this victim unit to the ledger.
                    w.unit_commits[self.cursor] += 1;
                    w.ledger = self.cursor + 1;
                    ctx.trace(format!("commit unit {}", self.cursor));
                } else {
                    ctx.trace(format!("commit {committed}"));
                }
                self.cursor += 1;
                self.state = if self.cursor >= self.limit {
                    WorkState::Done
                } else {
                    WorkState::Acquire
                };
            }
            WorkState::Done => {}
        }
    }
}

/// The reaper: ready until it fires, so the crash point is a free
/// scheduling choice explored like any other interleaving.
struct Reaper {
    fired: bool,
}

impl Process<LeaseWorld> for Reaper {
    fn ready(&self, _w: &LeaseWorld) -> bool {
        !self.fired
    }
    fn done(&self, _w: &LeaseWorld) -> bool {
        self.fired
    }
    fn step(&mut self, w: &mut LeaseWorld, ctx: &mut Ctx) {
        w.handle_obituary();
        ctx.trace("obituary delivered");
        self.fired = true;
    }
}

/// The lease-break model: one victim (crashed at a scheduler-chosen
/// point), one survivor, one reaper, one adopter.
pub struct LeaseModel {
    /// Work units the victim is responsible for (ledger length).
    pub victim_units: usize,
    /// Work units the survivor runs concurrently.
    pub survivor_units: usize,
    /// Seed the grant-uncommitted-state obituary bug.
    pub bug_grant_uncommitted: bool,
}

impl Spec for LeaseModel {
    type S = LeaseWorld;

    fn build(&self) -> (LeaseWorld, Vec<Box<dyn Process<LeaseWorld>>>) {
        let procs: Vec<Box<dyn Process<LeaseWorld>>> = vec![
            Box::new(NodeProc {
                me: VICTIM,
                state: WorkState::Acquire,
                cursor: 0,
                limit: self.victim_units,
                last_seq: 0,
                adopter: false,
                adopted: false,
            }),
            Box::new(NodeProc {
                me: SURVIVOR,
                state: WorkState::Acquire,
                cursor: 0,
                limit: self.survivor_units,
                last_seq: 0,
                adopter: false,
                adopted: false,
            }),
            Box::new(Reaper { fired: false }),
            Box::new(NodeProc {
                me: ADOPTER,
                state: WorkState::Acquire,
                cursor: 0,
                limit: self.victim_units,
                last_seq: 0,
                adopter: true,
                adopted: false,
            }),
        ];
        (
            LeaseWorld::new(procs.len(), self.victim_units, self.bug_grant_uncommitted),
            procs,
        )
    }

    fn invariant(&self, w: &LeaseWorld) -> Result<(), String> {
        if let Some(v) = w.violations.first() {
            return Err(v.clone());
        }
        let inside: Vec<usize> = (0..w.in_cs.len()).filter(|&i| w.in_cs[i]).collect();
        if inside.len() > 1 {
            return Err(format!(
                "mutual exclusion violated: {inside:?} all inside the CS"
            ));
        }
        if let Some(&c) = w.unit_commits.iter().find(|&&c| c > 1) {
            return Err(format!("a victim unit was committed {c} times"));
        }
        Ok(())
    }

    fn terminal(&self, w: &LeaseWorld) -> Result<(), String> {
        if let Some(u) = w.unit_commits.iter().position(|&c| c != 1) {
            return Err(format!(
                "exactly-once violated: unit {u} committed {} times",
                w.unit_commits[u]
            ));
        }
        if w.holder.is_some() || !w.waiters.is_empty() {
            return Err("lease not free at termination".into());
        }
        let want = (self.victim_units + self.survivor_units) as u64;
        if w.version != want {
            return Err(format!(
                "home version {} after {want} committed units",
                w.version
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shuttle::Config;

    #[test]
    fn exhaustive_crash_at_every_point() {
        let report = shuttle::check_exhaustive(
            &LeaseModel {
                victim_units: 2,
                survivor_units: 1,
                bug_grant_uncommitted: false,
            },
            &Config {
                max_schedules: 200_000,
                ..Config::default()
            },
        );
        report.assert_ok();
        assert!(report.schedules > 500, "crash points under-explored");
    }

    #[test]
    fn uncommitted_grant_bug_is_flagged() {
        let report = shuttle::check_exhaustive(
            &LeaseModel {
                victim_units: 2,
                survivor_units: 1,
                bug_grant_uncommitted: true,
            },
            &Config {
                max_schedules: 200_000,
                ..Config::default()
            },
        );
        let f = report
            .failure
            .expect("the seeded obituary bug must be found");
        assert!(
            f.reason.contains("scope consistency") || f.reason.contains("home version"),
            "unexpected failure reason: {}",
            f.reason
        );
    }
}
