//! Model-checked verification of GenomeDSM's concurrency protocols.
//!
//! This crate expresses the protocols that the rest of the workspace
//! implements with real threads as **checkable state machines** for the
//! vendored [`shuttle`] schedule-exploring checker:
//!
//! * [`models::lock`] — the DSM lock acquire/release handoff with write
//!   notices and per-client watermarks (scope consistency, mutual
//!   exclusion, happens-before);
//! * [`models::cv`] — the condition-variable signal banking that makes
//!   `setcv`/`waitcv` immune to lost wakeups;
//! * [`models::lease`] — the lock-lease break-on-death path and the
//!   ledger-driven takeover (last-released state, exactly-once units);
//! * [`models::merge`] — the batch scheduler's windowed strictly in-order
//!   merge (liveness of the window gate, bounded buffering), plus the
//!   rejected permit-counting design that must deadlock;
//! * [`models::inversion`] — the page-lock / lease-table lock-order
//!   discipline, with an AB-BA knob for the seeded regression that the
//!   runtime lock-order graph in `genomedsm-dsm` also catches;
//! * [`models::retransmit`] — the UDP transport's per-link
//!   retransmit/dedup window under reordering and duplication (sender
//!   window, reorder stash, reply cache with evict-on-ack lifetime),
//!   plus the rejected evict-before-ack variant that must
//!   double-execute a request;
//! * [`models::admission`] — the serve admission gate (bounded queue +
//!   weighted fair dispatch): no request lost or double-dispatched,
//!   depth never exceeds capacity, plus the rejected drop-on-reject
//!   design that must lose a request;
//! * [`models::rejoin`] — the elastic-membership join/handback protocol
//!   (announce → deferred boundary admission → page invalidation →
//!   ledger catch-up → role handback): no unit owned by two live ranks,
//!   handback only at workload boundaries, saved columns byte-identical
//!   to a never-crashed run, plus the skipped-invalidation and
//!   mid-round-admission variants that must be caught.
//!
//! [`run_suite`] drives every healthy model through thousands of distinct
//! interleavings (exhaustive where the state space allows, seeded-random
//! elsewhere); the `genomedsm-verify` binary prints the results and
//! additionally proves the seeded bugs are *found* and *replayable from
//! their printed seed*.

#![warn(missing_docs)]

pub mod models {
    //! The checkable protocol models.
    pub mod admission;
    pub mod cv;
    pub mod inversion;
    pub mod lease;
    pub mod lock;
    pub mod merge;
    pub mod rejoin;
    pub mod retransmit;
}

use models::{
    admission::AdmissionModel, cv::CvModel, inversion::InversionModel, lease::LeaseModel,
    lock::LockModel, merge::MergeModel, rejoin::RejoinModel, retransmit::RetransmitModel,
};
use shuttle::{Config, Report};

/// One suite row: a model/strategy pair and its exploration report.
pub struct SuiteEntry {
    /// Human-readable model + strategy name.
    pub name: &'static str,
    /// The checker's report for this entry.
    pub report: Report,
}

fn exhaustive<M: shuttle::Spec>(name: &'static str, spec: M, max_schedules: u64) -> SuiteEntry {
    let report = shuttle::check_exhaustive(
        &spec,
        &Config {
            max_schedules,
            ..Config::default()
        },
    );
    SuiteEntry { name, report }
}

fn random<M: shuttle::Spec>(name: &'static str, spec: M, iterations: u64) -> SuiteEntry {
    let report = shuttle::check_random(
        &spec,
        &Config {
            iterations,
            ..Config::default()
        },
    );
    SuiteEntry { name, report }
}

/// Run the full healthy-protocol suite.
///
/// Every entry is expected to report no failure; collectively the suite
/// explores well over ten thousand distinct schedules (asserted by the
/// `explore` integration test and re-checked by the binary).
pub fn run_suite() -> Vec<SuiteEntry> {
    vec![
        exhaustive(
            "lock/2x2 exhaustive",
            LockModel {
                clients: 2,
                sections: 2,
            },
            50_000,
        ),
        exhaustive(
            "lock/3x1 exhaustive",
            LockModel {
                clients: 3,
                sections: 1,
            },
            50_000,
        ),
        random(
            "lock/3x2 random",
            LockModel {
                clients: 3,
                sections: 2,
            },
            6_000,
        ),
        exhaustive(
            "cv/1p1c x3 exhaustive",
            CvModel {
                producers: 1,
                consumers: 1,
                signals_each: 3,
            },
            50_000,
        ),
        exhaustive(
            "cv/2p2c x1 exhaustive",
            CvModel {
                producers: 2,
                consumers: 2,
                signals_each: 1,
            },
            50_000,
        ),
        random(
            "cv/2p2c x2 random",
            CvModel {
                producers: 2,
                consumers: 2,
                signals_each: 2,
            },
            6_000,
        ),
        exhaustive(
            "lease/2u+1s exhaustive",
            LeaseModel {
                victim_units: 2,
                survivor_units: 1,
                bug_grant_uncommitted: false,
            },
            50_000,
        ),
        random(
            "lease/3u+2s random",
            LeaseModel {
                victim_units: 3,
                survivor_units: 2,
                bug_grant_uncommitted: false,
            },
            6_000,
        ),
        exhaustive(
            "merge/4j2w w1 exhaustive",
            MergeModel {
                jobs: 4,
                workers: 2,
                window: 1,
                permit_bug: false,
            },
            50_000,
        ),
        random(
            "merge/6j3w w2 random",
            MergeModel {
                jobs: 6,
                workers: 3,
                window: 2,
                permit_bug: false,
            },
            6_000,
        ),
        exhaustive(
            "admission/2c2r cap1 exhaustive",
            AdmissionModel {
                clients: 2,
                requests_each: 2,
                capacity: 1,
                workers: 1,
                bug_drop_on_reject: false,
            },
            50_000,
        ),
        random(
            "admission/3c2r cap2 2w random",
            AdmissionModel {
                clients: 3,
                requests_each: 2,
                capacity: 2,
                workers: 2,
                bug_drop_on_reject: false,
            },
            6_000,
        ),
        exhaustive(
            "retransmit/2m w2 d1 s1 exhaustive",
            RetransmitModel {
                msgs: 2,
                window: 2,
                dup_budget: 1,
                swap_budget: 1,
                bug_evict_before_ack: false,
            },
            200_000,
        ),
        random(
            "retransmit/3m w2 d2 s2 random",
            RetransmitModel {
                msgs: 3,
                window: 2,
                dup_budget: 2,
                swap_budget: 2,
                bug_evict_before_ack: false,
            },
            6_000,
        ),
        exhaustive(
            "inversion/consistent exhaustive",
            InversionModel {
                inverted: false,
                rounds: 2,
            },
            50_000,
        ),
        exhaustive(
            "rejoin/2u exhaustive",
            RejoinModel {
                units: 2,
                bug_skip_invalidation: false,
                bug_admit_mid_round: false,
            },
            50_000,
        ),
        random(
            "rejoin/3u random",
            RejoinModel {
                units: 3,
                bug_skip_invalidation: false,
                bug_admit_mid_round: false,
            },
            6_000,
        ),
    ]
}
