//! The Table 2 scenario: GenomeDSM vs BlastN on two "mitochondrial
//! genomes".
//!
//! The paper compares its heuristic output against NCBI BlastN on the
//! 50 kBP mitochondrial genomes of *Allomyces macrogynus* and
//! *Chaetosphaeridium globosum* and finds the best-alignment coordinates
//! "very close but not the same". We reproduce the shape of that
//! comparison with synthetic genomes (123 planted similar regions — the
//! count the paper reports for this pair) and our own seed-and-extend
//! baseline.
//!
//! Run with: `cargo run --release --example mitochondria -- [length]`

use genomedsm::prelude::*;
use genomedsm_blast::BlastN;
use genomedsm_core::LocalRegion;

fn overlap(a: &LocalRegion, b: &LocalRegion) -> bool {
    a.s_begin < b.s_end && b.s_begin < a.s_end && a.t_begin < b.t_end && b.t_begin < a.t_end
}

fn main() {
    let len: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12_000);
    println!("== Table 2 scenario: two {len} bp mitochondrial-like genomes ==\n");

    // The paper's 50 kBP pair shows 123 similar regions; scale the count
    // with the chosen length.
    let plan = HomologyPlan {
        region_count: (123 * len / 50_000).max(3),
        region_len_mean: 253, // the paper's reported average subsequence size
        region_len_jitter: 80,
        profile: genomedsm_seq::MutationProfile::similar(),
    };
    let (s, t, truth) = planted_pair(len, len, &plan, 50_000);
    println!("planted {} homologous regions\n", truth.len());

    // GenomeDSM: blocked heuristic on 4 nodes.
    let scoring = Scoring::paper();
    let params = HeuristicParams::default_for_dna();
    let config = BlockedConfig::new(4, 16, 16);
    let genome_dsm = heuristic_block_align(&s, &t, &scoring, &params, &config);

    // BlastN-like baseline.
    let blast = BlastN::default().search(&s, &t).expect("clean DNA input");

    println!(
        "GenomeDSM found {} regions; BlastN-like found {} HSPs\n",
        genome_dsm.regions.len(),
        blast.len()
    );

    // Table 2: coordinates of the three best alignments, side by side.
    println!("{:<12} {:<26} {:<26}", "", "GenomeDSM", "BlastN");
    let top_dsm: Vec<&LocalRegion> = {
        let mut v: Vec<&LocalRegion> = genome_dsm.regions.iter().collect();
        v.sort_by_key(|r| -r.score);
        v.into_iter().take(3).collect()
    };
    for (rank, dsm_region) in top_dsm.iter().enumerate() {
        // Find the BlastN HSP overlapping this region, if any.
        let near = blast.iter().find(|h| overlap(h, dsm_region));
        let ((sb, tb), (se, te)) = dsm_region.paper_coords();
        let blast_text = match near {
            Some(h) => {
                let ((bsb, btb), (bse, bte)) = h.paper_coords();
                format!("({bsb},{btb})..({bse},{bte})")
            }
            None => "(no overlapping HSP)".to_string(),
        };
        println!(
            "Alignment {:<2} ({sb},{tb})..({se},{te})      {blast_text}",
            rank + 1
        );
    }

    // How well do the two heuristics agree overall?
    let agreed = top_dsm
        .iter()
        .filter(|r| blast.iter().any(|h| overlap(h, r)))
        .count();
    println!(
        "\n{agreed}/{} of GenomeDSM's best alignments have a close BlastN counterpart",
        top_dsm.len()
    );
    println!("(the paper: \"very close but not the same\" — both are heuristics)");
}
