//! Section 6 walkthrough: exact alignments in O(min(n,m) + n'^2) space.
//!
//! Reproduces the paper's worked example (Tables 5-7) on its literal
//! input strings, then runs the same machinery on a larger pair to show
//! the ~30% useful-area bound of Eqs. (2)-(3).
//!
//! Run with: `cargo run --release --example reverse_exact`

use genomedsm_core::matrix::{render, sw_matrix};
use genomedsm_core::reverse::{recover_start, reverse_align_all, theoretical_necessary_fraction};
use genomedsm_core::Scoring;
use genomedsm_seq::{planted_pair, HomologyPlan};

fn main() {
    let scoring = Scoring::paper();
    // The Table 5 strings.
    let s = b"TCTCGACGGATTAGTATATATATA";
    let t = b"ATATGATCGGAATAGCTCT";

    println!("== Section 6 worked example ==");
    println!("s = {}", std::str::from_utf8(s).unwrap());
    println!("t = {}\n", std::str::from_utf8(t).unwrap());

    // Table 5: the forward linear pass detects the score-6 end point.
    let full = sw_matrix(s, t, &scoring);
    let (ei, ej, best) = full.maximum();
    println!("similarity array (rows = s, cols = t):");
    println!("{}", render(&full, s, t));
    println!("best local score {best} ends at s position {ei}, t position {ej} (paper: 14, 15)\n");

    // Tables 6-7: the reverse pass recovers the start with zero
    // elimination.
    let ((i0, j0), stats) = recover_start(s, t, &scoring, ei, ej, best).expect("recoverable");
    println!(
        "reverse pass over s[1..{ei}]rev and t[1..{ej}]rev found the start at ({}, {}) (1-based)",
        i0 + 1,
        j0 + 1
    );
    println!(
        "zero elimination evaluated only {} cells in {} rows (full reverse window: {} cells)\n",
        stats.evaluated_cells,
        stats.rows_touched,
        ei * ej
    );

    // Algorithm 1 end to end: rebuild the alignment.
    let recs = reverse_align_all(s, t, &scoring, best);
    for rec in &recs {
        println!("recovered alignment ({}):", rec.region);
        println!("{}", rec.alignment.pretty(60));
    }

    // Eqs. (2)-(3): measured vs theoretical useful area on a larger pair.
    println!("== useful-area measurement (Eqs. 2-3) ==");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "n'", "evaluated", "measured%", "theory%"
    );
    for region_len in [100usize, 300, 1000, 3000] {
        let plan = HomologyPlan {
            region_count: 1,
            region_len_mean: region_len,
            region_len_jitter: 0,
            profile: genomedsm_seq::MutationProfile::similar(),
        };
        let (bs, bt, _) = planted_pair(region_len * 3, region_len * 3, &plan, region_len as u64);
        if let Some(rec) = genomedsm_core::reverse::reverse_align_best(&bs, &bt, &scoring) {
            let n_prime = rec.region.s_len().max(rec.region.t_len());
            println!(
                "{:>8} {:>12} {:>11.1}% {:>11.1}%",
                n_prime,
                rec.stats.evaluated_cells,
                rec.stats.evaluated_fraction() * 100.0,
                theoretical_necessary_fraction(n_prime) * 100.0
            );
        }
    }
    println!("\n(the paper's bound: necessary space of the n' x n' window is ~30%)");
}
