//! The pre-process strategy (§5): exact scores, hit scoreboard, and
//! column saving.
//!
//! Demonstrates:
//! * the result matrix as a coarse heat map of "interesting regions";
//! * the paper's observation that a result-matrix cell with many hits
//!   "is very likely to contain good alignments";
//! * saving selected columns to disk (immediate mode) and reading them
//!   back;
//! * re-processing a hot block to retrieve the exact alignment with the
//!   Section-6 reverse method.
//!
//! Run with: `cargo run --release --example exact_preprocess`

use genomedsm::prelude::*;
use genomedsm_core::reverse::reverse_align_best;
use genomedsm_strategies::{preprocess::read_saved_columns, BandScheme, ChunkPlan, IoMode};

fn main() {
    let len = 6_000;
    let nprocs = 4;
    println!("== pre-process strategy: {len} bp x {len} bp, {nprocs} nodes ==\n");

    // The 50 kBP mitochondrial pair's density: 123 regions per 50 kBP.
    let plan = HomologyPlan {
        region_count: (123 * len / 50_000).max(2),
        region_len_mean: 253,
        region_len_jitter: 80,
        profile: genomedsm_seq::MutationProfile::similar(),
    };
    let (s, t, truth) = planted_pair(len, len, &plan, 99);
    println!("planted {} similar regions\n", truth.len());

    let dir = std::env::temp_dir().join("genomedsm_preprocess_example");
    std::fs::create_dir_all(&dir).expect("create save dir");

    let mut config = PreprocessConfig::new(nprocs);
    config.band = BandScheme::Balanced(512);
    config.chunk = ChunkPlan::Fixed(512);
    config.threshold = 30;
    config.result_interleave = 512;
    config.save_interleave = 512;
    config.io_mode = IoMode::Immediate;
    config.save_dir = Some(dir.clone());

    let scoring = Scoring::paper();
    let out = preprocess_align(&s, &t, &scoring, &config).unwrap();

    println!(
        "core time {:.2?} (init max {:.2?}, term max {:.2?}), best score {} with {} total hits\n",
        out.core_time(),
        out.init.iter().max().unwrap(),
        out.term.iter().max().unwrap(),
        out.best_score,
        out.total_hits()
    );

    // Result matrix as a heat map: each cell covers band_height x
    // interleave cells of the score matrix.
    println!("result matrix (hits >= threshold per block; '.'=0 '+'<100 '#'>=100):");
    for (b, row) in out.result.iter().enumerate() {
        let (i0, i1) = out.band_bounds[b];
        print!("  band {b:>2} (rows {i0:>5}..{i1:>5}): ");
        for &hits in row {
            print!(
                "{}",
                if hits == 0 {
                    '.'
                } else if hits < 100 {
                    '+'
                } else {
                    '#'
                }
            );
        }
        println!();
    }

    // The hottest block points at a real alignment: re-process it exactly.
    let (hot_band, hot_group, hits) = out
        .result
        .iter()
        .enumerate()
        .flat_map(|(b, row)| row.iter().enumerate().map(move |(g, &h)| (b, g, h)))
        .max_by_key(|&(_, _, h)| h)
        .expect("non-empty result matrix");
    let (i0, i1) = out.band_bounds[hot_band];
    let j0 = hot_group * config.result_interleave;
    let j1 = ((hot_group + 1) * config.result_interleave).min(t.len());
    println!(
        "\nhottest block: band {hot_band}, columns {j0}..{j1} ({hits} hits) — re-processing exactly:"
    );
    // Expand the window a little so the alignment is not clipped.
    let si0 = i0.saturating_sub(400);
    let si1 = (i1 + 400).min(s.len());
    let sj0 = j0.saturating_sub(400);
    let sj1 = (j1 + 400).min(t.len());
    match reverse_align_best(&s.as_bytes()[si0..si1], &t.as_bytes()[sj0..sj1], &scoring) {
        Some(rec) => {
            println!(
                "  exact local alignment: score {} at s[{}..{}] x t[{}..{}]",
                rec.region.score,
                si0 + rec.region.s_begin,
                si0 + rec.region.s_end,
                sj0 + rec.region.t_begin,
                sj0 + rec.region.t_end
            );
            println!(
                "  reverse pass evaluated {} cells ({:.0}% of the n'^2 window)",
                rec.stats.evaluated_cells,
                rec.stats.evaluated_fraction() * 100.0
            );
        }
        None => println!("  no alignment above zero in the hot block"),
    }

    // Saved columns round-trip.
    let mut saved = 0usize;
    for f in &out.files {
        saved += read_saved_columns(f).expect("read back").len();
    }
    println!(
        "\nsaved {saved} column segments across {} node files in {dir:?}",
        out.files.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
