//! The DSM substrate as a standalone library: JIAJIA-style shared-memory
//! programming with virtual-time statistics.
//!
//! Demonstrates the primitives of §3.1 directly — collective allocation,
//! lock-protected updates, condition-variable hand-off, barriers — plus
//! the protocol counters (page fetches, diffs, write notices) and the
//! virtual-clock accounting behind every speed-up figure in this
//! repository.
//!
//! Run with: `cargo run --release --example dsm_playground`

use genomedsm_dsm::{breakdown_many, DsmConfig, DsmSystem, NetworkModel};
use std::time::Duration;

fn main() {
    println!("== 1. lock-protected shared counter (scope consistency) ==");
    let run = DsmSystem::run(DsmConfig::new(4), |node| {
        let counter = node.alloc_vec::<i64>(1);
        node.barrier();
        for _ in 0..100 {
            node.lock(0);
            let v = node.vec_get(&counter, 0);
            node.vec_set(&counter, 0, v + 1);
            node.unlock(0);
        }
        node.barrier();
        node.vec_get(&counter, 0)
    });
    println!(
        "final counter on every node: {:?} (expected 400)\n",
        run.results
    );

    println!("== 2. multiple-writer protocol: disjoint writes to one page ==");
    let run = DsmSystem::run(DsmConfig::new(4), |node| {
        let v = node.alloc_vec::<i32>(64); // 256 bytes: a single page
        let me = node.id();
        for k in 0..16 {
            node.vec_set(&v, me * 16 + k, (me * 100 + k) as i32);
        }
        node.barrier(); // diffs merge at the home node here
        node.vec_read_range(&v, 0..64)
    });
    println!(
        "node 3 sees all four writers' quarters: {:?} ... {:?}\n",
        &run.results[3][..4],
        &run.results[3][60..]
    );

    println!("== 3. producer/consumer over a condition variable ==");
    let run = DsmSystem::run(
        DsmConfig::new(2).network(NetworkModel::paper_cluster()),
        |node| {
            let slot = node.alloc_vec::<i64>(1);
            node.barrier();
            let mut sum = 0;
            for i in 0..50i64 {
                if node.id() == 0 {
                    // Model 2 ms of work producing the value.
                    node.advance(Duration::from_millis(2));
                    node.vec_set(&slot, 0, i * i);
                    node.setcv(0);
                    node.waitcv(1);
                } else {
                    node.waitcv(0);
                    sum += node.vec_get(&slot, 0);
                    node.setcv(1);
                }
            }
            node.barrier();
            sum
        },
    );
    println!(
        "consumer sum: {} (expected {})",
        run.results[1],
        (0..50i64).map(|i| i * i).sum::<i64>()
    );
    let stats = &run.stats[1];
    println!(
        "consumer virtual time {:.1?}: lock+cv wait {:.1?}, communication {:.1?}",
        stats.total, stats.lock_cv, stats.communication
    );
    println!(
        "protocol activity: {} messages, {} page fetches, {} diffs, {} invalidations\n",
        stats.msgs_sent, stats.page_fetches, stats.diffs_sent, stats.invalidations
    );

    println!("== 4. virtual-time speed-up on a single-core host ==");
    // 8 nodes each do 100 ms of modeled work between two barriers; the
    // cluster's virtual time is ~100 ms, not 800 ms, no matter how many
    // host cores exist.
    let run = DsmSystem::run(DsmConfig::new(8).network(NetworkModel::zero()), |node| {
        node.barrier();
        node.advance(Duration::from_millis(100));
        node.barrier();
        node.now()
    });
    let cluster = run.results.iter().max().unwrap();
    println!("8 x 100 ms of work -> cluster virtual time {cluster:.1?} (speed-up 8.0)");
    let b = breakdown_many(&run.stats);
    println!(
        "breakdown: computation {:.0}%, barrier {:.0}%\n",
        b.computation * 100.0,
        b.barrier * 100.0
    );

    println!("== 5. heterogeneous cluster (§7 future work) ==");
    let config = DsmConfig::new(4)
        .network(NetworkModel::zero())
        .speeds(vec![1.0, 1.0, 1.0, 0.25]);
    let run = DsmSystem::run(config, |node| {
        node.advance(Duration::from_millis(50));
        node.barrier();
        node.now()
    });
    println!(
        "three 1.0x nodes + one 0.25x straggler, 50 ms of work each:\n cluster time {:?} (the straggler gates the barrier)",
        run.results[0]
    );
}
