//! Quickstart: the full GenomeDSM pipeline on a small synthetic workload.
//!
//! 1. Generate two DNA sequences with planted homologous regions.
//! 2. Phase 1: find similar regions with the blocked heuristic strategy
//!    on a 4-node simulated DSM cluster (§4.3).
//! 3. Phase 2: globally align each region with the scattered mapping
//!    (§4.4).
//! 4. Print the Fig. 16-style alignments, an ASCII dot plot (Fig. 14),
//!    and the Fig. 10-style execution-time breakdown.
//!
//! Run with: `cargo run --release --example quickstart`

use genomedsm::prelude::*;
use genomedsm_core::nw::render_region_alignment;
use genomedsm_dotplot::{ascii_plot, PlotSpec};

fn main() {
    let len = 4_000;
    let nprocs = 4;
    println!("== GenomeDSM quickstart: {len} bp x {len} bp, {nprocs} simulated nodes ==\n");

    let (s, t, truth) = planted_pair(len, len, &HomologyPlan::paper_density(len * 4), 2024);
    println!(
        "generated sequences with {} planted similar regions (~300 bp each)\n",
        truth.len()
    );

    // Phase 1: blocked heuristic strategy (bands x blocks = 16 x 16).
    let scoring = Scoring::paper();
    let params = HeuristicParams::default_for_dna();
    let config = BlockedConfig::new(nprocs, 16, 16);
    let phase1 = heuristic_block_align(&s, &t, &scoring, &params, &config);
    println!(
        "phase 1 (heuristic_block): {} candidate regions, simulated cluster time {:.2?} (host {:.2?})",
        phase1.regions.len(),
        phase1.wall,
        phase1.host_wall
    );

    // Fig. 10-style execution-time breakdown.
    let agg = phase1.aggregate();
    let b = phase1.breakdown();
    println!(
        "  breakdown: computation {:.1}%  communication {:.1}%  lock+cv {:.1}%  barrier {:.1}%",
        b.computation * 100.0,
        b.communication * 100.0,
        b.lock_cv * 100.0,
        b.barrier * 100.0
    );
    println!(
        "  protocol: {} messages, {} page fetches, {} diffs\n",
        agg.msgs_sent, agg.page_fetches, agg.diffs_sent
    );

    // Phase 2: scattered-mapping global alignment.
    let phase2 = phase2_scattered(&s, &t, &phase1.regions, &scoring, nprocs).unwrap();
    println!(
        "phase 2 (scattered mapping): {} global alignments, simulated cluster time {:.2?}\n",
        phase2.alignments.len(),
        phase2.wall
    );

    // Show the two best alignments in the paper's Fig. 16 format.
    for ra in phase2.alignments.iter().take(2) {
        println!("{}", render_region_alignment(ra));
    }

    // Fig. 14: the dot plot of similar regions.
    println!("dot plot of the similar regions (x = s, y = t):");
    let spec = PlotSpec::new(s.len(), t.len());
    print!("{}", ascii_plot(&phase1.regions, &spec, 64, 24));
}
