//! Hermetic stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the subset of proptest it uses: the [`Strategy`] trait, integer-range
//! and tuple strategies, `collection::vec`, `sample::select`,
//! `bool::ANY`, `prop_map`, and the [`proptest!`] macro family with
//! `prop_assert*`/`prop_assume`. Differences from upstream: cases are
//! generated from a fixed seed derived from the test name (fully
//! deterministic, no `PROPTEST_CASES` env), and failures are reported
//! without shrinking — the failing values are printed instead, which with
//! deterministic seeds is enough to reproduce under a debugger.

#![warn(missing_docs)]

/// Per-test configuration (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's name hash and the case index, so every case
    /// of every property is independently reproducible.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)` (`bound` > 0).
    pub fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % bound
    }
}

/// A value generator (subset of upstream `Strategy`; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { base: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `prop_map` adaptor.
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(width) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(width) as i128) as $ty
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Generates `Vec`s of `elem` values with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Picks uniformly from `options` (must be non-empty).
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy produced by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u128) as usize].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `true`/`false`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// Expands to `continue`, so it must appear at the top level of the
/// property body (which is how this workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn digits() -> impl Strategy<Value = Vec<u8>> {
        crate::collection::vec(crate::sample::select(vec![0u8, 1, 2, 3]), 0..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 5usize..10, y in -3i32..=3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_in_bounds(v in digits()) {
            prop_assert!(v.len() < 10);
            for d in &v {
                prop_assert!(*d < 4);
            }
        }

        #[test]
        fn tuples_and_prop_map(p in (0u32..50, 0u32..50).prop_map(|(a, b)| (a.min(b), a.max(b)))) {
            prop_assert!(p.0 <= p.1, "pair {:?}", p);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn bool_any(b in crate::bool::ANY) {
            prop_assert!(u8::from(b) <= 1);
        }

        #[test]
        fn mut_bindings_work(mut v in digits()) {
            v.push(0);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("x", 3);
        let mut b = crate::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn full_width_int_ranges() {
        let mut rng = crate::TestRng::for_case("full", 0);
        let s = i32::MIN..i32::MAX;
        let _ = Strategy::generate(&s, &mut rng);
        let u = 0u64..u64::MAX;
        let _ = Strategy::generate(&u, &mut rng);
    }
}
