//! Vector clocks for happens-before tracking.
//!
//! Every model process carries a [`VectorClock`]; the checker ticks the
//! stepping process's own component before each step, and synchronization
//! objects in a model carry their own clocks that processes `join` into
//! (release) and from (acquire). Two events are *ordered* when one clock
//! dominates the other, and *concurrent* otherwise — which is exactly the
//! question scope-consistency invariants need answered: "had the waiter
//! observed the signaller's release interval when it woke?"

/// A fixed-width vector clock over `n` process components.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VectorClock {
    t: Vec<u64>,
}

impl VectorClock {
    /// A zero clock for `n` processes.
    pub fn new(n: usize) -> Self {
        Self { t: vec![0; n] }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.t.len()
    }

    /// Whether the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.t.is_empty()
    }

    /// Component `i` (a process's logical time).
    pub fn get(&self, i: usize) -> u64 {
        self.t[i]
    }

    /// Advances component `i` by one local event.
    pub fn tick(&mut self, i: usize) {
        self.t[i] += 1;
    }

    /// Componentwise maximum: `self = max(self, other)`.
    pub fn join(&mut self, other: &VectorClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (a, &b) in self.t.iter_mut().zip(other.t.iter()) {
            *a = (*a).max(b);
        }
    }

    /// `self >= other` componentwise: everything `other` has seen,
    /// `self` has seen too (i.e. `other` happens-before-or-equals `self`).
    pub fn dominates(&self, other: &VectorClock) -> bool {
        (0..self.t.len().max(other.t.len())).all(|i| {
            let a = self.t.get(i).copied().unwrap_or(0);
            let b = other.t.get(i).copied().unwrap_or(0);
            a >= b
        })
    }

    /// Neither clock dominates the other: the events are concurrent.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.dominates(other) && !other.dominates(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_dominance() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent_with(&b));
        b.join(&a);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn zero_clocks_dominate_each_other() {
        let a = VectorClock::new(2);
        let b = VectorClock::new(2);
        assert!(a.dominates(&b) && b.dominates(&a));
        assert!(!a.concurrent_with(&b));
    }
}
