//! The controlled scheduler and the two exploration strategies.
//!
//! A model is a set of guarded processes over one shared state. Each
//! [`Process::step`] is one *atomic* transition (the unit of interleaving,
//! like one instruction window under loom); between steps the checker asks
//! a [`Chooser`] which ready process runs next. Exploring all (bounded)
//! answers to that question visits every schedule the real concurrent
//! system could exhibit at this atomicity:
//!
//! * [`check_exhaustive`] — depth-first search over the schedule tree with
//!   a schedule budget and a per-schedule depth bound; within the budget
//!   it is *exhaustive*: every interleaving is visited exactly once.
//! * [`check_random`] — seeded uniform random walks; each iteration derives
//!   its own sub-seed, and a failing iteration reports that sub-seed so
//!   [`replay_seed`] reproduces the exact schedule deterministically.
//!
//! Deadlocks are detected structurally (no process ready, not all done);
//! safety properties are checked after every step via [`Spec::invariant`];
//! terminal properties via [`Spec::terminal`]. Failures carry the full
//! schedule (the chosen process ids in order) and the per-step trace.

use crate::clock::VectorClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::fmt;

/// One process of a model: a guarded state machine over shared state `S`.
///
/// The checker only calls [`Process::step`] when `!done()` and
/// `ready(shared)` — a process whose guard is closed is *blocked*, and a
/// state where every live process is blocked is a deadlock.
pub trait Process<S> {
    /// Whether the process can take a step in the current shared state.
    fn ready(&self, shared: &S) -> bool;
    /// Whether the process has finished (never scheduled again). Receives
    /// the shared state so liveness can depend on it (e.g. a modeled
    /// process is "done" once a shared crash flag marks it dead).
    fn done(&self, shared: &S) -> bool;
    /// Perform one atomic transition. `ctx` carries the process's vector
    /// clock and a trace hook.
    fn step(&mut self, shared: &mut S, ctx: &mut Ctx);
}

/// Per-step context handed to [`Process::step`].
pub struct Ctx {
    pid: usize,
    clocks: Vec<VectorClock>,
    note: Option<String>,
}

impl Ctx {
    /// The id of the process taking this step.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// The stepping process's own vector clock (already ticked).
    pub fn clock(&self) -> &VectorClock {
        &self.clocks[self.pid]
    }

    /// Release edge: publish this process's history into an object clock
    /// (`obj = max(obj, mine)`).
    pub fn release(&self, obj: &mut VectorClock) {
        obj.join(&self.clocks[self.pid]);
    }

    /// Acquire edge: absorb an object clock into this process's history
    /// (`mine = max(mine, obj)`).
    pub fn acquire(&mut self, obj: &VectorClock) {
        let pid = self.pid;
        self.clocks[pid].join(obj);
    }

    /// Records a one-line description of this step for failure traces.
    pub fn trace(&mut self, msg: impl Into<String>) {
        self.note = Some(msg.into());
    }
}

/// The process set a [`Spec::build`] returns alongside its fresh state.
pub type Procs<S> = Vec<Box<dyn Process<S>>>;

/// A checkable model: how to build a fresh instance, and its properties.
pub trait Spec {
    /// The shared state all processes step against.
    type S;
    /// Builds a fresh copy of the model (shared state + processes).
    fn build(&self) -> (Self::S, Procs<Self::S>);
    /// Safety property, checked after every step.
    fn invariant(&self, _s: &Self::S) -> Result<(), String> {
        Ok(())
    }
    /// Terminal property, checked when every process is done.
    fn terminal(&self, _s: &Self::S) -> Result<(), String> {
        Ok(())
    }
}

/// Exploration bounds.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Per-schedule depth bound; longer runs are pruned (counted, not failed).
    pub max_steps: usize,
    /// DFS schedule budget for [`check_exhaustive`].
    pub max_schedules: u64,
    /// Number of random walks for [`check_random`].
    pub iterations: u64,
    /// Master seed for [`check_random`] (each iteration derives a sub-seed).
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_steps: 10_000,
            max_schedules: 100_000,
            iterations: 1_000,
            seed: 0x5eed_cafe,
        }
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules fully executed (terminal, pruned, or failing).
    pub schedules: u64,
    /// Distinct schedules among them (DFS: all; random: deduplicated).
    pub distinct: u64,
    /// DFS only: the whole bounded tree was visited within the budget.
    pub exhausted: bool,
    /// Deepest schedule seen (steps).
    pub max_depth: usize,
    /// The first failure found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with the failure's full report if one was found.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!("model check failed: {f}");
        }
    }
}

/// A property violation or deadlock, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub reason: String,
    /// The chosen process id at every step, in order.
    pub schedule: Vec<usize>,
    /// For random walks: the iteration's sub-seed ([`replay_seed`] with
    /// this value reproduces the identical schedule).
    pub seed: Option<u64>,
    /// Per-step trace lines recorded via [`Ctx::trace`].
    pub trace: Vec<String>,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.reason)?;
        if let Some(seed) = self.seed {
            writeln!(
                f,
                "  replay: shuttle::replay_seed(&spec, {seed:#018x}, &cfg)"
            )?;
        }
        writeln!(
            f,
            "  schedule ({} steps): {:?}",
            self.schedule.len(),
            self.schedule
        )?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// How a chooser picks the next process.
trait Chooser {
    /// Returns an index **into `ready`** (not a pid).
    fn choose(&mut self, ready: &[usize], depth: usize) -> usize;
}

enum RunEnd {
    /// All processes done, terminal property held.
    Terminal,
    /// Depth bound hit; pruned, not a failure.
    Pruned,
    /// Deadlock or property violation.
    Failed(Failure),
}

fn run_one<M: Spec>(spec: &M, chooser: &mut dyn Chooser, cfg: &Config) -> (RunEnd, Vec<usize>) {
    let (mut shared, mut procs) = spec.build();
    let n = procs.len();
    let mut ctx = Ctx {
        pid: 0,
        clocks: vec![VectorClock::new(n); n],
        note: None,
    };
    let mut schedule = Vec::new();
    let mut trace = Vec::new();
    for depth in 0..cfg.max_steps {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !procs[i].done(&shared) && procs[i].ready(&shared))
            .collect();
        if ready.is_empty() {
            let blocked: Vec<usize> = (0..n).filter(|&i| !procs[i].done(&shared)).collect();
            let end = if blocked.is_empty() {
                match spec.terminal(&shared) {
                    Ok(()) => RunEnd::Terminal,
                    Err(e) => RunEnd::Failed(Failure {
                        reason: format!("terminal property violated: {e}"),
                        schedule: schedule.clone(),
                        seed: None,
                        trace,
                    }),
                }
            } else {
                RunEnd::Failed(Failure {
                    reason: format!(
                        "deadlock: processes {blocked:?} are blocked and will never wake"
                    ),
                    schedule: schedule.clone(),
                    seed: None,
                    trace,
                })
            };
            return (end, schedule);
        }
        let pos = chooser.choose(&ready, depth);
        let pid = ready[pos];
        schedule.push(pid);
        ctx.pid = pid;
        ctx.clocks[pid].tick(pid);
        procs[pid].step(&mut shared, &mut ctx);
        if let Some(note) = ctx.note.take() {
            trace.push(format!("[{depth}] p{pid}: {note}"));
        }
        if let Err(e) = spec.invariant(&shared) {
            return (
                RunEnd::Failed(Failure {
                    reason: format!("invariant violated: {e}"),
                    schedule: schedule.clone(),
                    seed: None,
                    trace,
                }),
                schedule,
            );
        }
    }
    (RunEnd::Pruned, schedule)
}

/// DFS chooser: replays a prefix recorded on previous runs, then takes the
/// first unexplored branch, recording branch widths as it goes.
struct DfsChooser {
    /// `(options, cursor)` per depth.
    stack: Vec<(usize, usize)>,
    depth: usize,
}

impl Chooser for DfsChooser {
    fn choose(&mut self, ready: &[usize], depth: usize) -> usize {
        debug_assert_eq!(depth, self.depth);
        let pos = if depth < self.stack.len() {
            self.stack[depth].1
        } else {
            self.stack.push((ready.len(), 0));
            0
        };
        self.depth += 1;
        pos
    }
}

/// Seeded uniform chooser.
struct RandomChooser {
    rng: StdRng,
}

impl Chooser for RandomChooser {
    fn choose(&mut self, ready: &[usize], _depth: usize) -> usize {
        if ready.len() == 1 {
            0
        } else {
            self.rng.gen_range(0..ready.len())
        }
    }
}

/// Replays a fixed schedule of process ids; diverging (the recorded pid is
/// not ready) fails loudly, which would mean the model is not
/// deterministic under its schedule — itself a bug worth surfacing.
struct ScheduleChooser<'a> {
    schedule: &'a [usize],
}

impl Chooser for ScheduleChooser<'_> {
    fn choose(&mut self, ready: &[usize], depth: usize) -> usize {
        let want = self.schedule[depth];
        ready
            .iter()
            .position(|&p| p == want)
            .unwrap_or_else(|| panic!("replay diverged at step {depth}: p{want} not ready"))
    }
}

/// Bounded-exhaustive DFS over the schedule tree.
pub fn check_exhaustive<M: Spec>(spec: &M, cfg: &Config) -> Report {
    let mut chooser = DfsChooser {
        stack: Vec::new(),
        depth: 0,
    };
    let mut schedules = 0u64;
    let mut max_depth = 0usize;
    loop {
        chooser.depth = 0;
        let (end, schedule) = run_one(spec, &mut chooser, cfg);
        schedules += 1;
        max_depth = max_depth.max(schedule.len());
        if let RunEnd::Failed(f) = end {
            return Report {
                schedules,
                distinct: schedules,
                exhausted: false,
                max_depth,
                failure: Some(f),
            };
        }
        // Drop stale frames past this run's actual depth (a different
        // branch may terminate earlier than the recorded prefix).
        chooser.stack.truncate(schedule.len());
        // Advance to the next unexplored branch, backtracking exhausted
        // depths.
        while let Some(top) = chooser.stack.last_mut() {
            top.1 += 1;
            if top.1 < top.0 {
                break;
            }
            chooser.stack.pop();
        }
        let exhausted = chooser.stack.is_empty();
        if exhausted || schedules >= cfg.max_schedules {
            return Report {
                schedules,
                distinct: schedules,
                exhausted,
                max_depth,
                failure: None,
            };
        }
    }
}

/// Derives the sub-seed of random iteration `i` (SplitMix64 increment).
fn iteration_seed(master: u64, i: u64) -> u64 {
    let mut z = master ^ (i.wrapping_add(1)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv1a(schedule: &[usize]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &p in schedule {
        h ^= p as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seeded random walks; a failure reports the iteration's sub-seed.
pub fn check_random<M: Spec>(spec: &M, cfg: &Config) -> Report {
    let mut seen = HashSet::new();
    let mut max_depth = 0usize;
    for i in 0..cfg.iterations {
        let sub = iteration_seed(cfg.seed, i);
        let mut chooser = RandomChooser {
            rng: StdRng::seed_from_u64(sub),
        };
        let (end, schedule) = run_one(spec, &mut chooser, cfg);
        max_depth = max_depth.max(schedule.len());
        seen.insert(fnv1a(&schedule));
        if let RunEnd::Failed(mut f) = end {
            f.seed = Some(sub);
            return Report {
                schedules: i + 1,
                distinct: seen.len() as u64,
                exhausted: false,
                max_depth,
                failure: Some(f),
            };
        }
    }
    Report {
        schedules: cfg.iterations,
        distinct: seen.len() as u64,
        exhausted: false,
        max_depth,
        failure: None,
    }
}

/// Deterministically re-runs the single random schedule derived from
/// `seed` (the value printed by a [`check_random`] failure).
pub fn replay_seed<M: Spec>(spec: &M, seed: u64, cfg: &Config) -> Report {
    let mut chooser = RandomChooser {
        rng: StdRng::seed_from_u64(seed),
    };
    let (end, schedule) = run_one(spec, &mut chooser, cfg);
    let failure = match end {
        RunEnd::Failed(mut f) => {
            f.seed = Some(seed);
            Some(f)
        }
        _ => None,
    };
    Report {
        schedules: 1,
        distinct: 1,
        exhausted: false,
        max_depth: schedule.len(),
        failure,
    }
}

/// Re-runs one exact schedule (e.g. a recorded [`Failure::schedule`]).
pub fn replay_schedule<M: Spec>(spec: &M, schedule: &[usize], cfg: &Config) -> Report {
    let mut bounded = *cfg;
    // One extra iteration: terminal and deadlock detection happen at the
    // top of the step *after* the last scheduled one (with no choice
    // consumed, so the chooser is never consulted past the schedule).
    bounded.max_steps = schedule.len() + 1;
    let mut chooser = ScheduleChooser { schedule };
    let (end, ran) = run_one(spec, &mut chooser, &bounded);
    let failure = match end {
        RunEnd::Failed(f) => Some(f),
        _ => None,
    };
    Report {
        schedules: 1,
        distinct: 1,
        exhausted: false,
        max_depth: ran.len(),
        failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two processes each do read-increment-write of a shared counter in
    /// two separate steps: the classic lost update. DFS must find the
    /// interleaving where the final count is 1, not 2.
    struct RacyCounter;

    #[derive(Default)]
    struct RacyState {
        count: u64,
        finished: usize,
    }

    struct RacyProc {
        read: Option<u64>,
        done: bool,
    }

    impl Process<RacyState> for RacyProc {
        fn ready(&self, _s: &RacyState) -> bool {
            true
        }
        fn done(&self, _s: &RacyState) -> bool {
            self.done
        }
        fn step(&mut self, s: &mut RacyState, ctx: &mut Ctx) {
            match self.read {
                None => {
                    self.read = Some(s.count);
                    ctx.trace(format!("read {}", s.count));
                }
                Some(v) => {
                    s.count = v + 1;
                    s.finished += 1;
                    self.done = true;
                    ctx.trace(format!("wrote {}", v + 1));
                }
            }
        }
    }

    impl Spec for RacyCounter {
        type S = RacyState;
        fn build(&self) -> (RacyState, Vec<Box<dyn Process<RacyState>>>) {
            (
                RacyState::default(),
                (0..2)
                    .map(|_| {
                        Box::new(RacyProc {
                            read: None,
                            done: false,
                        }) as Box<dyn Process<RacyState>>
                    })
                    .collect(),
            )
        }
        fn terminal(&self, s: &RacyState) -> Result<(), String> {
            if s.count == 2 {
                Ok(())
            } else {
                Err(format!("lost update: count = {}", s.count))
            }
        }
    }

    #[test]
    fn dfs_finds_the_lost_update() {
        let report = check_exhaustive(&RacyCounter, &Config::default());
        let f = report.failure.expect("the race must be found");
        assert!(f.reason.contains("lost update"));
        assert!(!f.trace.is_empty());
    }

    #[test]
    fn random_finds_the_lost_update_and_replays_from_seed() {
        let cfg = Config {
            iterations: 200,
            ..Config::default()
        };
        let report = check_random(&RacyCounter, &cfg);
        let f = report.failure.expect("the race must be found");
        let seed = f.seed.expect("random failures carry a seed");
        // The printed seed reproduces the identical failing schedule.
        let replay = replay_seed(&RacyCounter, seed, &cfg);
        let rf = replay.failure.expect("replay must fail the same way");
        assert_eq!(rf.schedule, f.schedule);
        assert_eq!(rf.reason, f.reason);
        // And the exact schedule replays too.
        let by_schedule = replay_schedule(&RacyCounter, &f.schedule, &cfg);
        assert_eq!(
            by_schedule.failure.expect("schedule replay fails").reason,
            f.reason
        );
    }

    /// AB–BA deadlock: two processes take two "locks" in opposite order,
    /// one atomic acquisition per step.
    struct AbBa;

    #[derive(Default)]
    struct TwoLocks {
        held: [Option<usize>; 2],
    }

    struct Locker {
        order: [usize; 2],
        at: usize,
        me: usize,
    }

    impl Process<TwoLocks> for Locker {
        fn ready(&self, s: &TwoLocks) -> bool {
            self.at < 2 && s.held[self.order[self.at]].is_none()
        }
        fn done(&self, _s: &TwoLocks) -> bool {
            self.at >= 2
        }
        fn step(&mut self, s: &mut TwoLocks, _ctx: &mut Ctx) {
            s.held[self.order[self.at]] = Some(self.me);
            self.at += 1;
        }
    }

    impl Spec for AbBa {
        type S = TwoLocks;
        fn build(&self) -> (TwoLocks, Vec<Box<dyn Process<TwoLocks>>>) {
            (
                TwoLocks::default(),
                vec![
                    Box::new(Locker {
                        order: [0, 1],
                        at: 0,
                        me: 0,
                    }),
                    Box::new(Locker {
                        order: [1, 0],
                        at: 0,
                        me: 1,
                    }),
                ],
            )
        }
    }

    #[test]
    fn dfs_finds_the_ab_ba_deadlock() {
        let report = check_exhaustive(&AbBa, &Config::default());
        let f = report.failure.expect("deadlock must be found");
        assert!(f.reason.contains("deadlock"), "{}", f.reason);
    }

    /// A three-process model with no failure: DFS must terminate having
    /// visited every interleaving (exhausted), all distinct.
    struct Independent;

    impl Spec for Independent {
        type S = ();
        fn build(&self) -> ((), Vec<Box<dyn Process<()>>>) {
            struct Steps(usize);
            impl Process<()> for Steps {
                fn ready(&self, _: &()) -> bool {
                    true
                }
                fn done(&self, _s: &()) -> bool {
                    self.0 == 0
                }
                fn step(&mut self, _: &mut (), _: &mut Ctx) {
                    self.0 -= 1;
                }
            }
            ((), (0..3).map(|_| Box::new(Steps(2)) as _).collect())
        }
    }

    #[test]
    fn exhaustive_visits_the_whole_tree() {
        let report = check_exhaustive(&Independent, &Config::default());
        assert!(report.exhausted);
        assert!(report.failure.is_none());
        // 6 steps total, multinomial 6!/(2!2!2!) = 90 schedules.
        assert_eq!(report.schedules, 90);
        assert_eq!(report.max_depth, 6);
    }

    #[test]
    fn budget_caps_dfs() {
        let cfg = Config {
            max_schedules: 10,
            ..Config::default()
        };
        let report = check_exhaustive(&Independent, &cfg);
        assert_eq!(report.schedules, 10);
        assert!(!report.exhausted);
    }
}
