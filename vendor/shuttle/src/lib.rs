//! Hermetic stand-in for a `shuttle`/`loom`-style concurrency model
//! checker.
//!
//! The build container has no registry access, so the workspace vendors a
//! small schedule-exploring checker with the same *shape* as shuttle and
//! loom — a controlled scheduler that owns every interleaving decision,
//! bounded-exhaustive and seeded-random exploration, deterministic replay
//! of a failing schedule from its printed seed, and vector-clock
//! happens-before tracking — adapted to hermetic constraints: instead of
//! instrumenting real `std::sync` primitives with continuation switching,
//! models are written as explicit **guarded state machines**
//! ([`check::Process`]) whose `step` is the atomic unit of interleaving.
//! That is a better fit for protocol-level models anyway (the DSM daemon
//! services each message atomically, so one message handler = one step
//! reproduces the real system's interleaving granularity exactly).
//!
//! Entry points: [`check_exhaustive`], [`check_random`], [`replay_seed`],
//! [`replay_schedule`]. Properties live on the model's [`Spec`]:
//! `invariant` (checked after every step) and `terminal` (checked when all
//! processes are done). Deadlock — no ready process while some are not
//! done — is detected structurally and reported with the full schedule.

#![warn(missing_docs)]

pub mod check;
pub mod clock;

pub use check::{
    check_exhaustive, check_random, replay_schedule, replay_seed, Config, Ctx, Failure, Process,
    Report, Spec,
};
pub use clock::VectorClock;
