//! Hermetic stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the benchmarking API surface it uses: `criterion_group!`/
//! `criterion_main!`, benchmark groups with `sample_size`/`throughput`,
//! `bench_function`/`bench_with_input`, and `Bencher::iter`. Instead of
//! criterion's statistical machinery this shim times `sample_size`
//! batches, reports the median wall time (plus derived element
//! throughput), and prints one line per benchmark — enough to track the
//! perf trajectory in CI logs without any external dependency.

#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration (e.g. DP cells).
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

/// How much setup output to batch per timing pass (criterion API
/// compatibility; the shim times one input per pass regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Inputs are cheap to hold; batch many per measurement.
    SmallInput,
    /// Inputs are large; batch few per measurement.
    LargeInput,
    /// Regenerate the input for every single iteration.
    PerIteration,
}

/// Runs closures under timing.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `samples` timed calls;
    /// records the median.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }

    /// Times `routine` on fresh values from `setup`, excluding setup time.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut times: Vec<Duration> = (0..self.samples.max(1))
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last_median = times[times.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 1000);
        self
    }

    /// Annotates per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function<R>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(&id.label, bencher.last_median);
        self
    }

    /// Benchmarks `routine` with an input value under `id`.
    pub fn bench_with_input<I, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I) -> R,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: self.sample_size,
            last_median: Duration::ZERO,
        };
        routine(&mut bencher, input);
        self.report(&id.label, bencher.last_median);
        self
    }

    /// Ends the group (criterion API compatibility; drop also works).
    pub fn finish(self) {}

    fn report(&mut self, label: &str, median: Duration) {
        let mut line = format!(
            "{}/{label}: median {:>12.3?} over {} samples",
            self.name, median, self.sample_size
        );
        if let Some(tp) = self.throughput {
            let per_sec = |count: u64| count as f64 / median.as_secs_f64().max(1e-12);
            match tp {
                Throughput::Elements(n) => {
                    let _ = write!(line, "  ({:.3e} elem/s)", per_sec(n));
                }
                Throughput::Bytes(n) => {
                    let _ = write!(line, "  ({:.3e} B/s)", per_sec(n));
                }
            }
        }
        println!("{line}");
        self.criterion.results.push((line, median));
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    results: Vec<(String, Duration)>,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function<R>(
        &mut self,
        id: &str,
        routine: impl FnMut(&mut Bencher) -> R,
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        self
    }
}

/// Declares a group of benchmark functions (criterion-compatible shape).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_test");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    criterion_group!(benches, spin);

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }

    #[test]
    fn bencher_records_nonzero_time() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_function("spin", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(50)));
        });
        drop(g);
        assert!(c
            .results
            .iter()
            .all(|(_, d)| *d >= Duration::from_micros(10)));
    }
}
