//! Hermetic stand-in for the `crossbeam` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the only piece of crossbeam it uses: unbounded MPMC channels with
//! crossbeam's `send`/`recv` signatures. Implemented as a
//! `Mutex<VecDeque>` + `Condvar`; both halves are cloneable and `recv`
//! reports disconnection once every sender is gone, exactly the
//! termination contract the DSM daemons rely on.

#![warn(missing_docs)]

/// Unbounded MPMC channels (subset of `crossbeam::channel`).
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signaled when a bounded queue frees a slot.
        space: Condvar,
        /// `None` = unbounded; `Some(cap)` = block sends at `cap` items.
        capacity: Option<usize>,
        senders: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// Carries the unsent value like crossbeam's.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The channel stayed empty for the whole timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel_with(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` values are
    /// queued (crossbeam's backpressure contract). `cap` must be ≥ 1.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel needs capacity >= 1");
        channel_with(Some(cap))
    }

    fn channel_with<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`. Unbounded channels never block; bounded
        /// channels block while full. Errors only when no receiver can
        /// ever observe the value (all receivers dropped and we hold the
        /// only queue reference) — matching crossbeam, a send into a
        /// channel that still has any live handle succeeds.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.shared.capacity {
                while queue.len() >= cap {
                    // A full channel whose receivers are all gone would
                    // block forever; report disconnection instead. The
                    // only handles left are senders and the queue itself.
                    if Arc::strong_count(&self.shared)
                        <= self.shared.senders.load(Ordering::Acquire)
                    {
                        return Err(SendError(value));
                    }
                    queue = self
                        .shared
                        .space
                        .wait_timeout(queue, std::time::Duration::from_millis(50))
                        .expect("channel poisoned")
                        .0;
                }
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty
        /// and at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Dequeues the next value, blocking at most `timeout` while the
        /// channel is empty and at least one sender is alive.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    self.shared.space.notify_one();
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, left)
                    .expect("channel poisoned");
                queue = guard;
                if res.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Dequeues without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            let value = self
                .shared
                .queue
                .lock()
                .expect("channel poisoned")
                .pop_front();
            if value.is_some() {
                self.shared.space.notify_one();
            }
            value
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(1).unwrap();
            let tx2 = tx.clone();
            drop(tx);
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn cross_thread_ping_pong() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum += v as u64;
            }
            handle.join().unwrap();
            assert_eq!(sum, 999 * 1000 / 2);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let handle = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees
                tx.send(4).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            for i in 1..=4 {
                assert_eq!(rx.recv(), Ok(i));
            }
            handle.join().unwrap();
        }

        #[test]
        fn bounded_send_errors_when_full_and_receiver_gone() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            drop(rx);
            assert_eq!(tx.send(2), Err(SendError(2)));
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(7u8).unwrap();
            assert_eq!(handle.join().unwrap(), Ok(7));
        }
    }
}
