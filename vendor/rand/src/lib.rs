//! Hermetic stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) plus [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++, seeded through
//! SplitMix64 exactly as the real `rand_core` seeds from a `u64`; streams
//! differ from upstream `StdRng` (ChaCha12), which is fine because every
//! caller only relies on determinism per seed, not on a specific stream.

#![warn(missing_docs)]

/// A generator seedable from a small value (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it with
    /// SplitMix64 as `rand_core::SeedableRng::seed_from_u64` does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type (subset of `rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The raw 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, the same construction rand uses for
        // its `Open01`-style float sampling.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                // Width fits in u128 even for full-width integer ranges.
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; different stream, same contract: reproducible per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = rng.gen_range(i32::MIN..i32::MAX);
        let _ = rng.gen_range(0u64..u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
