//! Hermetic stand-in for the `rayon` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the parallel-iterator subset it uses: `par_iter`/`into_par_iter` with
//! `map`/`filter_map`/`collect`, plus `ThreadPoolBuilder`/`ThreadPool::
//! install`. Unlike real rayon there is no work-stealing: `collect`
//! materialises the source, splits it into one contiguous chunk per
//! thread, and runs the composed pipeline on scoped threads, preserving
//! source order in the output. That is semantically identical for the
//! pure per-item pipelines this workspace runs, and keeps the shim small.

#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] for the scope of
    /// its closure; 0 means "use available parallelism".
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn effective_threads() -> usize {
    let installed = INSTALLED_THREADS.with(Cell::get);
    if installed > 0 {
        return installed;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Error type for [`ThreadPoolBuilder::build`]; never produced here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Infallible in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A logical thread pool: it only records the thread count; threads are
/// spawned per `collect` (scoped), which is fine at this workspace's
/// granularity of a handful of pool constructions per run.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed for any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = INSTALLED_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        INSTALLED_THREADS.with(|c| c.set(previous));
        result
    }
}

/// The parallel-iterator traits and adaptors.
pub mod iter {
    use super::effective_threads;

    /// A composable parallel pipeline. `into_parts` exposes the
    /// materialised source plus the composed per-item function so that
    /// every adaptor in a chain runs inside the same parallel pass.
    pub trait ParallelIterator: Sized {
        /// Item type produced by the source.
        type Source: Send;
        /// Item type produced by the full pipeline.
        type Item: Send;

        /// Splits into (source items, composed pipeline function).
        #[allow(clippy::type_complexity)]
        fn into_parts(
            self,
        ) -> (
            Vec<Self::Source>,
            impl Fn(Self::Source) -> Option<Self::Item> + Sync,
        );

        /// Maps each item through `f`.
        fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> Map<Self, F> {
            Map { base: self, f }
        }

        /// Maps each item through `f`, dropping `None`s.
        fn filter_map<R: Send, F: Fn(Self::Item) -> Option<R> + Sync>(
            self,
            f: F,
        ) -> FilterMap<Self, F> {
            FilterMap { base: self, f }
        }

        /// Runs the pipeline across threads, preserving source order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            let (items, pipeline) = self.into_parts();
            run_chunks(items, &pipeline).into_iter().flatten().collect()
        }
    }

    /// Splits `items` into one contiguous chunk per thread and applies
    /// `pipeline` on scoped threads; chunk results come back in order.
    fn run_chunks<S: Send, T: Send>(
        items: Vec<S>,
        pipeline: &(impl Fn(S) -> Option<T> + Sync),
    ) -> Vec<Vec<T>> {
        let threads = effective_threads().max(1);
        if threads == 1 || items.len() <= 1 {
            return vec![items.into_iter().filter_map(pipeline).collect()];
        }
        let chunk = items.len().div_ceil(threads);
        let mut chunks: Vec<Vec<S>> = Vec::new();
        let mut rest = items;
        while rest.len() > chunk {
            let tail = rest.split_off(chunk);
            chunks.push(std::mem::replace(&mut rest, tail));
        }
        chunks.push(rest);
        std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| scope.spawn(move || c.into_iter().filter_map(pipeline).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        })
    }

    /// Source adaptor over an owned `Vec`.
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Source = T;
        type Item = T;
        fn into_parts(self) -> (Vec<T>, impl Fn(T) -> Option<T> + Sync) {
            (self.items, Some)
        }
    }

    /// `map` adaptor.
    pub struct Map<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for Map<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> R + Sync,
    {
        type Source = P::Source;
        type Item = R;
        fn into_parts(self) -> (Vec<Self::Source>, impl Fn(Self::Source) -> Option<R> + Sync) {
            let (items, base) = self.base.into_parts();
            let f = self.f;
            (items, move |s| base(s).map(&f))
        }
    }

    /// `filter_map` adaptor.
    pub struct FilterMap<P, F> {
        base: P,
        f: F,
    }

    impl<P, R, F> ParallelIterator for FilterMap<P, F>
    where
        P: ParallelIterator,
        R: Send,
        F: Fn(P::Item) -> Option<R> + Sync,
    {
        type Source = P::Source;
        type Item = R;
        fn into_parts(self) -> (Vec<Self::Source>, impl Fn(Self::Source) -> Option<R> + Sync) {
            let (items, base) = self.base.into_parts();
            let f = self.f;
            (items, move |s| base(s).and_then(&f))
        }
    }

    /// Conversion into a parallel iterator (subset of rayon's trait).
    pub trait IntoParallelIterator {
        /// Pipeline item type.
        type Item: Send;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    macro_rules! impl_range_into_par_iter {
        ($($ty:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$ty> {
                type Item = $ty;
                type Iter = VecIter<$ty>;
                fn into_par_iter(self) -> VecIter<$ty> {
                    VecIter { items: self.collect() }
                }
            }
            impl IntoParallelIterator for std::ops::RangeInclusive<$ty> {
                type Item = $ty;
                type Iter = VecIter<$ty>;
                fn into_par_iter(self) -> VecIter<$ty> {
                    VecIter { items: self.collect() }
                }
            }
        )*};
    }

    impl_range_into_par_iter!(usize, u32, u64, i32, i64);

    /// By-reference parallel iteration (rayon's `par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Pipeline item type (a reference).
        type Item: Send + 'a;
        /// Concrete iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Iterates `self` by reference.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn par_iter(&'a self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn par_iter(&'a self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter` chains.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn filter_map_drops_nones() {
        let data: Vec<i32> = (0..100).collect();
        let odd: Vec<i32> = data
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x))
            .collect();
        assert_eq!(odd.len(), 50);
        assert!(odd.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pool_install_controls_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let v: Vec<usize> = pool.install(|| (0..10usize).into_par_iter().map(|x| x).collect());
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_source() {
        let v: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
    }

    #[test]
    fn chained_map_runs_in_one_pass() {
        let v: Vec<String> = (1..=5usize)
            .into_par_iter()
            .map(|x| x * x)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(v, ["1", "4", "9", "16", "25"]);
    }
}
